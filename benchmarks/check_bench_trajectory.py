#!/usr/bin/env python
"""CI gate: the per-PR BENCH trajectory must not regress.

Compares a fresh ``BENCH_<sha>.json`` (emitted by ``repro bench`` /
``benchmarks/run_workloads.py``) against the most recent point committed
under ``benchmarks/data/trajectory/``.  Each matrix entry's fresh
wall-clock must stay within ``--tolerance`` (default 1.2, i.e. a >20%
slowdown fails) of the baseline entry, reusing the per-name comparison
logic of :mod:`check_state_hotpath`.  A fresh run with *no* committed
baseline passes — that run becomes the first trajectory point.

A second gate bounds coordinator memory for the streaming pair: the
``replace-results-stream-10x`` entry sweeps 10x the injections of
``replace-results-stream-1x`` into a ``--results`` store, and its peak
RSS must stay within ``--rss-tolerance`` (default 2.0x) of the 1x run.
Residual growth at this scale comes from the symbolic-search layer
(interpreter arenas, the bounded search cache), not from result
retention — the streaming coordinator holds at most one in-flight result
plus a bounded store batch — so the bound is a canary for accidentally
re-retaining the sweep, which would blow well past 2x at 10x volume.

Usage::

    python benchmarks/check_bench_trajectory.py BENCH_abc123.json
    python benchmarks/check_bench_trajectory.py FRESH.json --baseline OLD.json

Exit status 0 when every gate passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from check_state_hotpath import compare_means

TRAJECTORY_DIR = Path(__file__).resolve().parent / "data" / "trajectory"
STREAM_PAIR = ("replace-results-stream-1x", "replace-results-stream-10x")


def load_point(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def latest_committed_point(directory: Optional[Path] = None):
    """The newest ``BENCH_*.json`` under *directory*, or ``None``.

    Points are ordered by their recorded ``created`` timestamp (ISO-8601
    sorts lexicographically), not by filename, so force-pushed or
    re-recorded shas cannot shadow a newer point.
    """
    if directory is None:
        directory = TRAJECTORY_DIR
    candidates = sorted(directory.glob("BENCH_*.json")) \
        if directory.is_dir() else []
    points = [(load_point(str(path)), path) for path in candidates]
    if not points:
        return None
    points.sort(key=lambda pair: str(pair[0].get("created", "")))
    return points[-1]


def entry_means(point: dict) -> dict:
    return {entry["id"]: float(entry["wall_clock_seconds"])
            for entry in point.get("entries", [])}


def check_wall_clock(baseline: dict, fresh: dict, tolerance: float) -> list:
    print(f"bench trajectory gate (tolerance {tolerance:g}x, baseline sha "
          f"{baseline.get('sha', '?')}, fresh sha {fresh.get('sha', '?')}):")
    return compare_means(entry_means(baseline), entry_means(fresh),
                         tolerance, unit_scale=1.0, unit="s")


def check_rss_flat(fresh: dict, rss_tolerance: float) -> list:
    """Bound the streaming pair's RSS growth at 10x injection volume."""
    rss = {entry["id"]: entry.get("max_rss_kb")
           for entry in fresh.get("entries", [])}
    small, large = (rss.get(name) for name in STREAM_PAIR)
    if small is None or large is None:
        print("streaming RSS gate: pair not in this matrix, skipped")
        return []
    if not small or not large:
        print("streaming RSS gate: RSS unavailable on this platform, skipped")
        return []
    ratio = large / small
    verdict = "ok" if ratio <= rss_tolerance else "REGRESSED"
    print(f"streaming RSS gate: {STREAM_PAIR[1]} {large} kB vs "
          f"{STREAM_PAIR[0]} {small} kB ({ratio:.2f}x at 10x injections, "
          f"allowed <= {rss_tolerance:g}x)  {verdict}")
    if ratio > rss_tolerance:
        return [f"coordinator RSS grew {ratio:.2f}x for a 10x streamed "
                f"sweep (allowed <= {rss_tolerance:g}x) — is the "
                f"coordinator retaining results again?"]
    return []


def check(fresh_path: str, baseline_path=None, tolerance: float = 1.2,
          rss_tolerance: float = 2.0) -> int:
    fresh = load_point(fresh_path)
    if baseline_path is None:
        located = latest_committed_point()
        if located is None:
            print("no committed trajectory point yet — this run becomes "
                  "the first one; gate passes")
            return 0
        baseline, baseline_file = located
        print(f"baseline: {baseline_file.name}")
    else:
        baseline = load_point(baseline_path)

    failures = check_wall_clock(baseline, fresh, tolerance)
    failures += check_rss_flat(fresh, rss_tolerance)

    if failures:
        print("\nFAIL: bench trajectory regressed beyond tolerance:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench trajectory within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="BENCH_<sha>.json of this run")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline point (default: newest "
                             "committed file in benchmarks/data/trajectory/)")
    parser.add_argument("--tolerance", type=float, default=1.2,
                        help="allowed wall-clock ratio per entry")
    parser.add_argument("--rss-tolerance", type=float, default=2.0,
                        help="allowed RSS ratio for the 10x streaming entry")
    args = parser.parse_args(argv)
    return check(args.fresh, args.baseline, args.tolerance,
                 args.rss_tolerance)


if __name__ == "__main__":
    sys.exit(main())
