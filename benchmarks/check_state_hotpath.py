#!/usr/bin/env python
"""CI gate: state and interpreter hot-path microbenchmarks must not regress.

Compares a fresh pytest-benchmark JSON (``pytest
benchmarks/test_state_hotpath.py --benchmark-json=FRESH.json``) against the
committed baseline in ``benchmarks/data/state_hotpath_bench.json``.  The
baseline covers both benchmark groups: ``state-hotpath`` (CoW fork and
fingerprint costs) and ``interp-hotpath`` (decoded concrete run, legacy
reference, symbolic stepping) — the decoded/legacy pair keeps the dispatch
speedup itself under the gate, not just its absolute cost.  Each
benchmark's fresh mean must stay within ``tolerance_factor`` of the recorded
baseline mean — generous enough for shared-runner noise, tight enough to
catch the step change a broken CoW fork or fingerprint would cause — and a
benchmark missing from the fresh run is itself a failure (a silently
skipped gate is a regressed gate).

Usage::

    python benchmarks/check_state_hotpath.py FRESH.json [--baseline PATH]

Exit status 0 when every benchmark passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "data" \
    / "state_hotpath_bench.json"


def load_fresh_means(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return {entry["name"]: entry["stats"]["mean"]
            for entry in report.get("benchmarks", [])}


def compare_means(baseline_means: dict, fresh_means: dict, tolerance: float,
                  unit_scale: float = 1e6, unit: str = "us") -> list:
    """Compare per-name fresh means against baseline means.

    Prints one verdict line per baseline entry and returns the list of
    failure strings: a fresh mean beyond ``baseline * tolerance`` fails,
    and a baseline entry missing from the fresh run is itself a failure (a
    silently skipped gate is a regressed gate).  Shared by the state
    hot-path gate and ``check_bench_trajectory.py``.
    """
    failures = []
    width = max(len(name) for name in baseline_means)
    for name, base_mean in sorted(baseline_means.items()):
        base_mean = float(base_mean)
        allowed = base_mean * tolerance
        mean = fresh_means.get(name)
        if mean is None:
            print(f"  {name:<{width}}  MISSING from the fresh run")
            failures.append(f"{name}: not measured")
            continue
        ratio = mean / base_mean
        verdict = "ok" if mean <= allowed else "REGRESSED"
        print(f"  {name:<{width}}  {mean * unit_scale:9.3f}{unit}  "
              f"(baseline {base_mean * unit_scale:.3f}{unit}, "
              f"{ratio:5.2f}x, allowed <= {allowed * unit_scale:.3f}{unit})"
              f"  {verdict}")
        if mean > allowed:
            failures.append(f"{name}: {mean:.3e}s vs allowed {allowed:.3e}s")
    return failures


def check_telemetry_overhead(config: dict, fresh_means: dict) -> list:
    """Gate the telemetry-enabled stepping cost against its disabled twin.

    Unlike the absolute-mean gates above, this compares two benchmarks
    from the *same* fresh run (``benchmark`` vs ``reference``), so host
    speed cancels out and the budget can be tight: an enabled hub must
    cost at most ``budget_factor`` of the plain decoded stepping path.
    """
    if not config:
        return []
    name = config["benchmark"]
    reference = config["reference"]
    budget = float(config["budget_factor"])
    mean = fresh_means.get(name)
    reference_mean = fresh_means.get(reference)
    print(f"telemetry-overhead gate (budget {budget:g}x of {reference}):")
    if mean is None or reference_mean is None:
        missing = name if mean is None else reference
        print(f"  {missing}  MISSING from the fresh run")
        return [f"{missing}: not measured (telemetry-overhead gate)"]
    ratio = mean / reference_mean
    verdict = "ok" if ratio <= budget else "REGRESSED"
    print(f"  {name}  {mean * 1e6:9.3f}us vs {reference_mean * 1e6:.3f}us "
          f"({ratio:5.3f}x, allowed <= {budget:g}x)  {verdict}")
    if ratio > budget:
        return [f"{name}: {ratio:.3f}x of {reference}, "
                f"allowed <= {budget:g}x"]
    return []


def check(fresh_path: str, baseline_path: str) -> int:
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)["microbench_baseline"]
    tolerance = float(baseline["tolerance_factor"])
    fresh = load_fresh_means(fresh_path)

    print(f"state hot-path benchmark gate (tolerance {tolerance:g}x):")
    baseline_means = {name: record["mean_seconds"]
                      for name, record in baseline["benchmarks"].items()}
    failures = compare_means(baseline_means, fresh, tolerance)
    failures += check_telemetry_overhead(baseline.get("telemetry_overhead"),
                                         fresh)

    if failures:
        print("\nFAIL: state hot-path timings regressed beyond tolerance:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all state hot-path benchmarks within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="pytest-benchmark JSON of this run")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline JSON")
    args = parser.parse_args(argv)
    return check(args.fresh, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
