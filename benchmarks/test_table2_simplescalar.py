"""TAB2 — Table 2 / Section 6.3: concrete fault-injection outcomes on tcas.

The paper's SimpleScalar campaign injects three extreme values and three
random values into the source/destination registers of every instruction of
tcas (6253 and later 41082 faults) and reports the outcome distribution:
~54-56% still print the correct advisory 1, ~40-43% crash, a few percent
print 0 or something else, under 1% hang — and *no* injection ever produces
the catastrophic advisory 2.

Running every instruction of our tcas build would take hours in pure Python,
so the bench sweeps an evenly-spaced sample of instructions (the value policy
per injection is identical to the paper's).  The shape assertions are the
ones that matter: outcome 2 never occurs, the correct advisory dominates and
crashes are the second-largest bucket.
"""

import pytest

from repro.concrete import ConcreteCampaign, printed_value_labeler
from repro.programs import tcas_workload


SAMPLE_EVERY = 6   # sweep every 6th instruction of tcas


def run_concrete_tcas_campaign():
    workload = tcas_workload()
    campaign = ConcreteCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        labeler=printed_value_labeler(expected_values=(0, 1, 2)),
        max_steps=10_000)
    pcs = range(0, len(workload.program), SAMPLE_EVERY)
    injections = campaign.enumerate_injections(pcs=pcs)
    result = campaign.run(injections=injections, keep_experiments=False)
    return result


@pytest.mark.benchmark(group="table2")
def test_table2_concrete_fault_injection_distribution(benchmark):
    result = benchmark.pedantic(run_concrete_tcas_campaign, rounds=1, iterations=1)
    distribution = result.distribution

    assert result.total_faults > 500

    # Paper shape: the catastrophic advisory (2) is never produced by
    # value-based injection.
    assert distribution.count("2") == 0
    # The correct advisory (1) is the most common outcome.
    assert distribution.count("1") == max(distribution.counts.values())
    # Crashes are a substantial fraction (paper: ~40%), larger than the
    # "other" and "hang" buckets.
    assert distribution.percentage("crash") > 10.0
    assert distribution.count("crash") >= distribution.count("other")
    assert distribution.count("crash") >= distribution.count("hang")

    print("\n[TAB2] concrete register fault injection on tcas "
          f"(sampled every {SAMPLE_EVERY}th instruction; "
          "paper: 6253 and 41082 faults)")
    print(result.distribution.format_table(
        title="  Program outcome distribution (this reproduction)"))
    print("  paper reference (6253 faults): 0=1.86%  1=53.7%  2=0%  "
          "other=0.5%  crash=43.4%  hang=0.4%")
