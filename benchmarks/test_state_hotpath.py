"""STATE — microbenchmarks for the per-fork hot path of the symbolic search.

The symbolic executor forks one successor per feasible error resolution, and
the bounded model checker fingerprints every successor for deduplication
(paper Sections 5.2/5.4).  Both used to be O(state-size) per fork; the
copy-on-write state makes them O(written-locations) / O(1).  These benches
pin the two costs on a replace-sized state (hundreds of memory words) so a
regression of the structural-sharing layer shows up as a step change.

``data/state_hotpath_bench.json`` records the committed before/after
end-to-end evidence: the same replace campaign fell from ~12s (seed state
layer) to ~4s with byte-identical results.
"""

import json
from pathlib import Path

import pytest

from repro.machine.state import initial_state

BENCH_RECORD = Path(__file__).resolve().parent / "data" / "state_hotpath_bench.json"

#: Memory footprint comparable to the replace benchmark's data segment.
MEMORY_WORDS = 600


def make_replace_sized_state():
    state = initial_state(memory={addr: (addr * 7) % 256
                                  for addr in range(MEMORY_WORDS)})
    for register in range(1, 12):
        state.write_register(register, register * 3)
    for item in range(20):
        state.append_output(item)
    return state


@pytest.mark.benchmark(group="state-hotpath")
def test_fork_copy_cost(benchmark):
    """copy() in fork steady state: a parent with a small dirty overlay."""
    state = make_replace_sized_state().copy()
    state.write_register(5, 1)
    state.write_memory(3, 9)

    clone = benchmark(state.copy)

    assert clone.read_memory(3) == 9
    assert clone.read_register(5) == 1
    # The clone shares the base: forking did not clone the whole memory.
    assert clone.memory._base is state.memory._base


@pytest.mark.benchmark(group="state-hotpath")
def test_fingerprint_dedup_miss_cost(benchmark):
    """fingerprint() + seen-set miss — the per-successor dedup price."""
    state = make_replace_sized_state()
    seen = set()
    counter = iter(range(10_000_000))

    def dedup_new_state():
        # Each round is a genuinely new state, as in a running search.
        state.write_register(4, next(counter))
        fingerprint = state.fingerprint()
        assert fingerprint not in seen
        seen.add(fingerprint)

    benchmark(dedup_new_state)


@pytest.mark.benchmark(group="state-hotpath")
def test_fingerprint_dedup_hit_cost(benchmark):
    """fingerprint() + seen-set hit (structural confirmation on hash match)."""
    state = make_replace_sized_state()
    seen = {state.fingerprint()}

    def dedup_duplicate_state():
        assert state.fingerprint() in seen

    benchmark(dedup_duplicate_state)


def test_recorded_campaign_speedup_is_at_least_2x():
    """The committed before/after record must show the promised >=2x."""
    record = json.loads(BENCH_RECORD.read_text())
    before = min(record["before"]["wall_clock_seconds"])
    after = max(record["after"]["wall_clock_seconds"])
    assert before / after >= 2.0, record
    print("\n[STATE] recorded replace-campaign wall-clock: "
          f"before={record['before']['wall_clock_seconds']}s "
          f"after={record['after']['wall_clock_seconds']}s "
          f"(speedup {before / after:.2f}x, results byte-identical)")
