"""STATE — microbenchmarks for the per-fork hot path of the symbolic search.

The symbolic executor forks one successor per feasible error resolution, and
the bounded model checker fingerprints every successor for deduplication
(paper Sections 5.2/5.4).  Both used to be O(state-size) per fork; the
copy-on-write state makes them O(written-locations) / O(1).  These benches
pin the two costs on a replace-sized state (hundreds of memory words) so a
regression of the structural-sharing layer shows up as a step change.

``data/state_hotpath_bench.json`` records the committed before/after
end-to-end evidence: the same replace campaign fell from ~12s (seed state
layer) to ~4s with byte-identical results.
"""

import json
from pathlib import Path

import pytest

from repro.machine import run_concrete, run_concrete_legacy
from repro.machine.executor import ExecutionConfig, Executor
from repro.machine.state import initial_state
from repro.programs import load_workload

BENCH_RECORD = Path(__file__).resolve().parent / "data" / "state_hotpath_bench.json"

#: Memory footprint comparable to the replace benchmark's data segment.
MEMORY_WORDS = 600


def make_replace_sized_state():
    state = initial_state(memory={addr: (addr * 7) % 256
                                  for addr in range(MEMORY_WORDS)})
    for register in range(1, 12):
        state.write_register(register, register * 3)
    for item in range(20):
        state.append_output(item)
    return state


@pytest.mark.benchmark(group="state-hotpath")
def test_fork_copy_cost(benchmark):
    """copy() in fork steady state: a parent with a small dirty overlay."""
    state = make_replace_sized_state().copy()
    state.write_register(5, 1)
    state.write_memory(3, 9)

    clone = benchmark(state.copy)

    assert clone.read_memory(3) == 9
    assert clone.read_register(5) == 1
    # The clone shares the base: forking did not clone the whole memory.
    assert clone.memory._base is state.memory._base


@pytest.mark.benchmark(group="state-hotpath")
def test_fingerprint_dedup_miss_cost(benchmark):
    """fingerprint() + seen-set miss — the per-successor dedup price."""
    state = make_replace_sized_state()
    seen = set()
    counter = iter(range(10_000_000))

    def dedup_new_state():
        # Each round is a genuinely new state, as in a running search.
        state.write_register(4, next(counter))
        fingerprint = state.fingerprint()
        assert fingerprint not in seen
        seen.add(fingerprint)

    benchmark(dedup_new_state)


@pytest.mark.benchmark(group="state-hotpath")
def test_fingerprint_dedup_hit_cost(benchmark):
    """fingerprint() + seen-set hit (structural confirmation on hash match)."""
    state = make_replace_sized_state()
    seen = {state.fingerprint()}

    def dedup_duplicate_state():
        assert state.fingerprint() in seen

    benchmark(dedup_duplicate_state)


# --------------------------------------------------------------------------
# INTERP — stepping hot path (pre-decoded dispatch, superblocks).
#
# The golden factorial run is short (~36 instructions), so each benchmark
# round times one complete decode-cache-warm execution: per-instruction
# dispatch cost dominates and a regression of the decoded tables or the
# superblock planner shows up as a step change.  The legacy variant is kept
# as the in-run reference point: decoded must stay well under it.

@pytest.fixture(scope="module")
def factorial_workload():
    return load_workload("factorial")


@pytest.mark.benchmark(group="interp-hotpath")
def test_concrete_run_decoded_cost(benchmark, factorial_workload):
    """Superblock-fused ``run_concrete`` over the factorial golden run."""
    workload = factorial_workload

    def golden_run():
        state = workload.initial_state()
        run_concrete(workload.program, state, workload.detectors,
                     workload.recommended_max_steps)
        return state

    state = benchmark(golden_run)
    assert not state.is_running


@pytest.mark.benchmark(group="interp-hotpath")
def test_concrete_run_legacy_cost(benchmark, factorial_workload):
    """The legacy string-dispatch ``run_concrete_legacy`` reference."""
    workload = factorial_workload

    def golden_run():
        state = workload.initial_state()
        run_concrete_legacy(workload.program, state, workload.detectors,
                            workload.recommended_max_steps)
        return state

    state = benchmark(golden_run)
    assert not state.is_running


@pytest.mark.benchmark(group="interp-hotpath")
def test_symbolic_step_decoded_cost(benchmark, factorial_workload):
    """``Executor.step`` through the decoded dispatch table (golden path)."""
    workload = factorial_workload
    executor = Executor(workload.program, workload.detectors,
                        ExecutionConfig(
                            max_steps=workload.recommended_max_steps))

    def golden_run():
        state = workload.initial_state()
        while state.is_running:
            [state] = executor.step(state)
        return state

    state = benchmark(golden_run)
    assert not state.is_running


@pytest.mark.benchmark(group="interp-hotpath")
def test_symbolic_step_telemetry_enabled_cost(benchmark, factorial_workload):
    """``Executor.step`` with an *enabled* telemetry hub wrapping each run.

    Telemetry must be cheap even when on: instrumentation reads step
    counters at search epilogues, never per instruction, so the only
    per-run additions are one span and two counter updates.  The CI gate
    (``telemetry_overhead`` in ``check_state_hotpath.py``) compares this
    mean against ``test_symbolic_step_decoded_cost`` from the *same*
    run — robust to host variance — and allows <= 3% overhead.
    """
    from repro import obs

    class DiscardSink:
        """Bounds the pending-event buffer without I/O in the timed loop."""

        def write(self, event):
            pass

        def close(self):
            pass

    workload = factorial_workload
    executor = Executor(workload.program, workload.detectors,
                        ExecutionConfig(
                            max_steps=workload.recommended_max_steps))
    hub = obs.configure(sink=DiscardSink(), component="bench")

    def golden_run():
        with hub.span("search.solve"):
            steps_before = executor.steps_executed
            state = workload.initial_state()
            while state.is_running:
                [state] = executor.step(state)
            hub.count("search.runs")
            hub.count("executor.steps",
                      executor.steps_executed - steps_before)
        return state

    try:
        state = benchmark(golden_run)
    finally:
        obs.set_hub(obs.NullTelemetry())
    assert not state.is_running
    assert hub.counters["search.runs"] > 0


def test_recorded_campaign_speedup_is_at_least_2x():
    """The committed before/after record must show the promised >=2x."""
    record = json.loads(BENCH_RECORD.read_text())
    before = min(record["before"]["wall_clock_seconds"])
    after = max(record["after"]["wall_clock_seconds"])
    assert before / after >= 2.0, record
    print("\n[STATE] recorded replace-campaign wall-clock: "
          f"before={record['before']['wall_clock_seconds']}s "
          f"after={record['after']['wall_clock_seconds']}s "
          f"(speedup {before / after:.2f}x, results byte-identical)")
