#!/usr/bin/env python
"""Unified workload driver — thin shim over :mod:`repro.results.bench`.

Runs the pinned factorial/tcas/replace campaign matrix and emits a
schema-versioned ``BENCH_<sha>.json`` trajectory point, or checks backend
equivalence with ``--expect-identical``.  Identical to ``repro bench``::

    python benchmarks/run_workloads.py --matrix ci
    python benchmarks/run_workloads.py --expect-identical \
        --backends pool,distributed,results,tcp \
        --workload factorial --query err-output --sample 6 --seed 7
"""

import sys

from repro.results.bench import main

if __name__ == "__main__":
    sys.exit(main())
