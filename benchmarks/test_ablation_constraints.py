"""Ablations of the design choices DESIGN.md calls out.

1. *Constraint solver on/off* — Section 3.2 claims the custom constraint
   solver prunes infeasible paths and limits state-space explosion.  The
   ablation runs the same symbolic injection with pruning enabled and
   disabled and compares explored-state counts and the number of (spurious)
   outcomes.
2. *Injection-point optimisation* — Section 6.2 injects only the registers
   used by each instruction (guaranteeing activation) instead of every
   architectural register; the ablation compares the campaign sizes.
"""

import pytest

from repro.constraints import Location
from repro.core import BoundedModelChecker, halted_normally
from repro.errors import Injection, RegisterFileError, prepare_injected_state
from repro.machine import ExecutionConfig, Executor
from repro.programs import factorial_workload, loop_counter_injection_pc, tcas_workload


def run_pruning_ablation():
    workload = factorial_workload(default_input=7)
    subi_pc = loop_counter_injection_pc(workload)
    injection = Injection(breakpoint_pc=subi_pc + 1, target=Location.register(3))
    results = {}
    for pruning in (True, False):
        executor = Executor(workload.program, workload.detectors,
                            ExecutionConfig(max_steps=400,
                                            prune_unsatisfiable=pruning))
        checker = BoundedModelChecker(executor, max_solutions=10_000,
                                      max_states=200_000)
        injected = prepare_injected_state(workload.program, injection,
                                          workload.initial_state())
        result = checker.search_single(injected, halted_normally())
        outputs = {solution.state.output_values()
                   for solution in result.solutions}
        results[pruning] = (result.statistics.explored_states, outputs)
    return results


def count_injection_points():
    workload = tcas_workload()
    used = len(RegisterFileError(policy="used").enumerate(workload.program))
    every = len(RegisterFileError(policy="all").enumerate(workload.program))
    return used, every, len(workload.program)


@pytest.mark.benchmark(group="ablation")
def test_ablation_constraint_pruning(benchmark):
    results = benchmark.pedantic(run_pruning_ablation, rounds=1, iterations=1)
    pruned_states, pruned_outputs = results[True]
    naive_states, naive_outputs = results[False]

    # Soundness: pruning never loses real outcomes.
    assert pruned_outputs.issubset(naive_outputs) or pruned_outputs == naive_outputs
    # Effectiveness: pruning explores no more states than the naive search,
    # and the naive search reports at least as many (possibly spurious) outcomes.
    assert pruned_states <= naive_states
    assert len(pruned_outputs) <= len(naive_outputs)

    print("\n[ABLATION] constraint solver pruning (factorial, input 7)")
    print(f"  pruning on : {pruned_states:6d} states, {len(pruned_outputs)} distinct outputs")
    print(f"  pruning off: {naive_states:6d} states, {len(naive_outputs)} distinct outputs")


@pytest.mark.benchmark(group="ablation")
def test_ablation_injection_point_optimisation(benchmark):
    used, every, instructions = benchmark.pedantic(count_injection_points,
                                                   rounds=1, iterations=1)
    # The paper's estimate for the unoptimised campaign is #instructions x 32
    # registers; the activation-aware sweep is far smaller.
    assert every == instructions * 31  # register $0 cannot hold an error
    assert used < every / 5

    print("\n[ABLATION] injection-point optimisation on tcas")
    print(f"  instructions                        : {instructions}")
    print(f"  injections, every register          : {every}")
    print(f"  injections, registers used (paper)  : {used}")
    print(f"  reduction factor                    : {every / used:.1f}x")
