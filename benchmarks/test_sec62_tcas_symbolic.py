"""SEC62 — Section 6.2: SymPLFIED finds the catastrophic tcas outcome.

The paper's experiment sweeps single register errors over tcas, decomposed
into cluster search tasks, and finds exactly one kind of catastrophic
scenario: an error corrupting the return-address register inside
``Non_Crossing_Biased_Climb`` redirects control so that the program prints 2
(a downward advisory) while the correct answer is 1 — an outcome that the
concrete injection campaign of Section 6.3 never exposes.

The bench reproduces the experiment on the code region of
``Non_Crossing_Biased_Climb`` (one of the paper's code-section tasks),
reports the task-completion statistics the paper gives, and checks the
symbolic-vs-concrete comparison.
"""

import pytest

from repro.analysis import compare_symbolic_concrete
from repro.concrete import ConcreteCampaign, printed_value_labeler
from repro.constraints import Location
from repro.core import (SymbolicCampaign, TaskRunner, decompose_by_code_section,
                        printed_value_other_than)
from repro.core.campaign import CampaignResult
from repro.errors import RegisterFileError
from repro.machine import ExecutionConfig
from repro.programs import tcas_workload


def run_sec62_experiment():
    workload = tcas_workload()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=3_000,
                                         control_fork_domain="labels",
                                         max_control_forks=2_048,
                                         max_memory_forks=4),
        max_solutions_per_injection=10,
        max_states_per_injection=20_000)

    start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
    # The paper sweeps the registers used by every instruction; to keep the
    # bench under a minute we sweep the call/return machinery of the function
    # (the return-address register $31 and the stack pointer are the paper's
    # culprit locations) — one of the 150 code-section tasks.
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (31, 2)]
    query = printed_value_other_than(1)
    tasks = decompose_by_code_section(injections, num_tasks=5)
    runner = TaskRunner(campaign, max_errors_per_task=10, wall_clock_per_task=120.0)
    report = runner.run(tasks, query)

    flat = CampaignResult(query_description=query.description)
    for task_result in report.task_results:
        flat.results.extend(task_result.results)

    concrete = ConcreteCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        labeler=printed_value_labeler(expected_values=(0, 1, 2)),
        max_steps=10_000)
    concrete_result = concrete.run(
        injections=concrete.enumerate_injections(pcs=range(start, end)))

    return workload, report, flat, concrete_result


@pytest.mark.benchmark(group="sec62")
def test_sec62_symbolic_campaign_finds_advisory_flip(benchmark):
    workload, report, flat, concrete_result = benchmark.pedantic(
        run_sec62_experiment, rounds=1, iterations=1)

    catastrophic = []
    for injection, solution in flat.solutions():
        printed = solution.state.printed_integers()
        if printed and printed[-1] == 2:
            catastrophic.append((injection, solution))

    # Headline result: the 1 -> 2 advisory flip exists and is caused by the
    # corrupted return-address register inside Non_Crossing_Biased_Climb.
    assert catastrophic
    assert all(injection.target == Location.register(31)
               for injection, _solution in catastrophic)

    # Section 6.3 comparison: the concrete campaign over the same code region
    # never produces the 2 advisory.
    comparison = compare_symbolic_concrete(
        flat, concrete_result, target_value=2,
        target_description="tcas prints 2 (downward advisory) instead of 1")
    assert comparison.reproduces_paper_shape

    # Task statistics in the style of Section 6.2.
    assert report.completed_tasks >= 1
    assert report.total_errors_found > 0

    print("\n[SEC62] symbolic register-error campaign on Non_Crossing_Biased_Climb")
    print(report.describe())
    print(f"  catastrophic 1->2 scenarios      : {len(catastrophic)}")
    first = catastrophic[0][0]
    print(f"  example culprit                  : {first.label()}")
    print(f"    at: {workload.program.source_line(first.breakpoint_pc)}")
    print(comparison.describe())
    print("  paper reference: 150 tasks, 85 completed (70 without errors, "
          "15 with errors, <= 4 min each); only SymPLFIED finds the outcome 2")
