"""TAB1 — Table 1: computation-error categories and how they are modelled.

For every row of Table 1 (instruction decoder, address/data bus, functional
unit, instruction fetch) plus the basic register/memory classes, this bench
enumerates the category's injections on small kernels, symbolically explores
a sample of them and confirms the modelled manifestation:

* decode / bus / functional-unit errors surface as ``err`` in the source or
  destination registers and can corrupt the output,
* fetch errors (corrupted PC) either land on an arbitrary valid code location
  or raise an illegal-instruction exception.
"""

import pytest

from repro.core import SymbolicCampaign, crashed, undetected_failure
from repro.errors import STANDARD_ERROR_CLASSES
from repro.machine import ExecutionConfig
from repro.programs import (call_max_workload, memory_walk_workload,
                            sum_input_workload)


CATEGORIES = ("register", "memory", "bus", "functional-unit", "decode",
              "fetch", "control-flow")


def run_category_sweeps():
    workloads = [sum_input_workload(), memory_walk_workload(), call_max_workload()]
    rows = []
    for category in CATEGORIES:
        error_class = STANDARD_ERROR_CLASSES[category]
        injections_total = 0
        failures = 0
        crashes = 0
        for workload in workloads:
            golden = workload.golden_output()
            campaign = SymbolicCampaign(
                workload.program,
                input_values=workload.default_input,
                memory=workload.data_segment,
                error_class=error_class,
                execution_config=ExecutionConfig(
                    max_steps=workload.recommended_max_steps,
                    control_fork_domain="labels"),
                max_solutions_per_injection=5,
                max_states_per_injection=8_000)
            injections = campaign.enumerate_injections()[:20]
            injections_total += len(injections)
            failures += campaign.run(undetected_failure(golden),
                                     injections=injections).total_solutions
            crashes += campaign.run(crashed(),
                                    injections=injections).total_solutions
        rows.append((category, injections_total, failures, crashes))
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_error_category_coverage(benchmark):
    rows = benchmark.pedantic(run_category_sweeps, rounds=1, iterations=1)

    by_category = {row[0]: row for row in rows}
    # Every category of Table 1 is expressible and enumerable.
    assert set(by_category) == set(CATEGORIES)
    # Every category produces at least one injection on the kernels, and each
    # manifests as an undetected failure somewhere (the kernels carry no
    # detectors, so activated errors must surface as failures or be benign).
    for category, injections_total, failures, crashes in rows:
        assert injections_total > 0, category
        assert failures > 0, category
    # Fetch/control-flow errors must include crash manifestations
    # (illegal-instruction exceptions), as modelled in Table 1.
    assert by_category["fetch"][3] > 0
    assert by_category["control-flow"][3] > 0

    print("\n[TAB1] error-category coverage over three kernels "
          "(20 injections per kernel per category)")
    print(f"  {'category':<16} {'injections':>10} {'failure states':>15} "
          f"{'crash states':>13}")
    for category, injections_total, failures, crashes in rows:
        print(f"  {category:<16} {injections_total:>10} {failures:>15} {crashes:>13}")
