"""SEC53 — the model-size statement of Section 6 ("Case Study" preamble).

The paper reports the size of its Maude specification: about 2000 lines in
35 modules, with 54 rewrite rules (non-deterministic behaviour) and 384
equations (deterministic behaviour).  The analogous quantities for this
reproduction are the number of Python modules, the number of instruction
opcodes whose semantics are deterministic equations, and the number of
distinct non-deterministic resolution points in the error model.
"""

import pytest

from repro.analysis import model_inventory


@pytest.mark.benchmark(group="inventory")
def test_model_inventory_counts(benchmark):
    inventory = benchmark.pedantic(model_inventory, rounds=1, iterations=1)

    assert inventory["python_modules"] >= 35
    assert inventory["instruction_opcodes"] >= 40
    assert inventory["nondeterministic_rules"] >= 5

    print("\n[SEC53] model inventory (paper: 35 Maude modules, 54 rewrite rules, "
          "384 equations)")
    print(f"  python modules            : {inventory['python_modules']}")
    print(f"  instruction opcodes       : {inventory['instruction_opcodes']}")
    print(f"  non-deterministic points  : {inventory['nondeterministic_rules']}")
