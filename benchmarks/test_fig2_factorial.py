"""FIG2 — Figure 2 / Section 4.1: symbolic loop-counter error in factorial.

Regenerates the paper's running example: injecting a single symbolic error
into the loop counter yields exactly the partial products {5, 20, 60, 120}
(plus err/timeout outcomes), while exploring at most n+1 forks per injection
at the loop exit — compared with the 2^k concrete values a physical injection
campaign would need to cover the same outcomes.
"""

import pytest

from repro.constraints import Location
from repro.core import BoundedModelChecker, halted_normally
from repro.errors import Injection, prepare_injected_state
from repro.machine import ExecutionConfig, Executor
from repro.programs import factorial_workload, loop_counter_injection_pc


INPUT_VALUE = 5


def explore_all_iterations():
    workload = factorial_workload(default_input=INPUT_VALUE)
    executor = Executor(workload.program, workload.detectors,
                        ExecutionConfig(max_steps=200))
    checker = BoundedModelChecker(executor, max_solutions=200, max_states=100_000)
    subi_pc = loop_counter_injection_pc(workload)
    printed = set()
    total_states = 0
    exit_forks = []
    for occurrence in range(1, INPUT_VALUE + 1):
        injection = Injection(breakpoint_pc=subi_pc + 1,
                              target=Location.register(3),
                              occurrence=occurrence)
        injected = prepare_injected_state(workload.program, injection,
                                          workload.initial_state())
        if injected is None:
            continue
        result = checker.search_single(injected, halted_normally())
        total_states += result.statistics.explored_states
        exit_forks.append(len(result.solutions))
        for solution in result.solutions:
            values = solution.state.printed_integers()
            if values and isinstance(values[-1], int):
                printed.add(values[-1])
    return printed, total_states, exit_forks


@pytest.mark.benchmark(group="fig2")
def test_fig2_factorial_symbolic_outcomes(benchmark):
    printed, total_states, exit_forks = benchmark.pedantic(
        explore_all_iterations, rounds=1, iterations=1)

    # The paper's predicted outcome set: the partial products of 5!.
    expected = {5, 20, 60, 120}
    assert expected.issubset(printed)

    # Complexity claim: at most (n + 1) cases per injection instead of 2^k
    # concrete values (k = integer width).
    assert all(forks <= INPUT_VALUE + 1 for forks in exit_forks)
    concrete_equivalent = 2 ** 32

    print("\n[FIG2] factorial (input 5), symbolic loop-counter error")
    print(f"  reachable printed results : {sorted(printed)}")
    print(f"  halted outcomes per injection (<= n+1): {exit_forks}")
    print(f"  symbolic states explored  : {total_states}")
    print(f"  concrete injections needed for the same coverage: ~2^32 "
          f"({concrete_equivalent})")
