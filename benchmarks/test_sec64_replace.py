"""SEC64 / TAB3 — Section 6.4, Table 3: scaling to the replace program.

replace is the largest Siemens program; the paper decomposes its register
error sweep into 312 search tasks (202 complete, 148 find no errors, 54 find
errors leading to an incorrect outcome) and highlights an example scenario:
a corrupted delimiter parameter inside ``dodash`` produces an erroneous
pattern, so the program emits the line without the substitution.

The bench sweeps the pattern-construction functions of Table 3 (makepat,
getccl, dodash) plus the matching entry point (amatch) with a task
decomposition, and checks that incorrect-output scenarios are found there.
"""

import pytest

from repro.core import (SymbolicCampaign, TaskRunner, decompose_by_code_section,
                        incorrect_output)
from repro.errors import RegisterFileError
from repro.machine import ExecutionConfig
from repro.programs import decode_output, replace_workload


#: The key functions of Table 3 (plus their helpers present in our build).
TABLE3_FUNCTIONS = ("makepat", "getccl", "dodash", "amatch", "locate")

#: Functions whose code regions are swept by the bench (kept small so the
#: bench completes in about a minute; the example scenario lives in dodash).
SWEPT_FUNCTIONS = ("dodash", "getccl")
INJECTIONS_PER_FUNCTION = 25


def run_sec64_experiment():
    workload = replace_workload(pattern="[0-9]", substitution="#",
                                lines=("ab12cd9",))
    golden = workload.golden_output()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=40_000,
                                         control_fork_domain="labels",
                                         max_control_forks=64,
                                         max_memory_forks=2),
        max_solutions_per_injection=2,
        max_states_per_injection=40_000)

    injections = []
    for function in SWEPT_FUNCTIONS:
        start, end = workload.compiled.function_region(function)
        region = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (8, 9, 10)]
        injections.extend(region[:INJECTIONS_PER_FUNCTION])

    query = incorrect_output(golden)
    tasks = decompose_by_code_section(injections, num_tasks=8)
    runner = TaskRunner(campaign, max_errors_per_task=10, wall_clock_per_task=120.0)
    report = runner.run(tasks, query)
    return workload, golden, report


@pytest.mark.benchmark(group="sec64")
def test_sec64_replace_incorrect_output_scenarios(benchmark):
    workload, golden, report = benchmark.pedantic(run_sec64_experiment,
                                                  rounds=1, iterations=1)

    # Table 3: every key function exists in the build, with its own code region.
    for function in TABLE3_FUNCTIONS:
        assert function in workload.compiled.functions

    # Section 6.4 shape: some tasks complete without finding errors, some
    # find errors leading to an incorrect outcome.
    assert report.completed_tasks >= 1
    assert report.tasks_with_errors >= 1
    assert report.total_errors_found > 0

    # Every reported error halted normally with a different output.
    corrupted_outputs = []
    for _injection, solution in report.solutions():
        assert solution.state.status.value == "halted"
        assert solution.state.output_values() != golden
        corrupted_outputs.append(decode_output(solution.state.output_values()))

    print("\n[SEC64] replace: register errors in the pattern-construction functions")
    print(f"  key Table 3 functions present : {', '.join(TABLE3_FUNCTIONS)}")
    print(report.describe())
    print(f"  error-free output             : {decode_output(golden)!r}")
    print(f"  example corrupted outputs     : {corrupted_outputs[:3]!r}")
    print("  paper reference: 312 tasks, 202 completed, 148 without errors, "
          "54 with errors leading to an incorrect outcome")
