"""FIG3 — Figure 3 / Section 4.2: factorial protected by two CHECK detectors.

Regenerates the detector-verification example: for the same loop-counter
error, the search separates executions stopped by a detector from executions
that evade detection, and reports the constraint sets under which the
detectors stay silent (the paper's conclusion: the error evades detection
exactly when the corrupted counter is not larger than the loop bound).
"""

import pytest

from repro.constraints import Location
from repro.core import SymbolicCampaign, detected, output_contains_err
from repro.core.traces import witnesses_from_campaign
from repro.errors import Injection
from repro.machine import ExecutionConfig
from repro.programs import factorial_with_detectors_workload


def run_detector_experiment():
    workload = factorial_with_detectors_workload()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=300),
        max_solutions_per_injection=100,
        max_states_per_injection=50_000)
    subi_pc = next(i for i, ins in enumerate(workload.program.code)
                   if ins.opcode == "subi")
    injection = Injection(breakpoint_pc=subi_pc + 1, target=Location.register(3))
    caught = campaign.run(detected(), injections=[injection])
    missed = campaign.run(output_contains_err(), injections=[injection])
    witnesses = witnesses_from_campaign(workload.program, missed,
                                        golden_output=workload.golden_output())
    return workload, caught, missed, witnesses


@pytest.mark.benchmark(group="fig3")
def test_fig3_detector_verification(benchmark):
    workload, caught, missed, witnesses = benchmark.pedantic(
        run_detector_experiment, rounds=1, iterations=1)

    # Some executions are stopped by the detectors, and some errors still
    # evade them (the paper's point: the evading cases are made explicit).
    assert caught.total_solutions > 0
    assert missed.total_solutions > 0
    assert witnesses

    # Every evading witness carries a constraint set for the corrupted
    # counter, which is the actionable feedback the paper highlights.
    constrained = [w for w in witnesses
                   if "$(3)" in w.state.constraints.describe()]
    assert constrained

    print("\n[FIG3] factorial with detectors, loop-counter error")
    print(f"  detectors defined        : {len(workload.detectors)}")
    print(f"  executions detected      : {caught.total_solutions}")
    print(f"  executions evading both  : {missed.total_solutions}")
    print("  example evading-error constraints:")
    print("   " + constrained[0].state.constraints.describe().replace("\n", "\n   "))
