"""DIST — Section 6.1: campaigns as broker-distributed tasks (PR 3).

The distributed backend must be a drop-in for the serial sweep exactly like
the pool: identical per-injection results, in the same order, on the
programs the paper evaluates.  These benches run the tcas and replace
campaign subsets (the same fixtures the pool equivalence benches use) and
the factorial sweep through real standalone worker processes and a
filesystem broker, and additionally kill-and-resume the factorial campaign
through the checkpoint journal.
"""

import pytest

from repro.distributed import (CheckpointingStrategy, DistributedConfig,
                               run_campaign_distributed)
from repro.core import SerialExecutionStrategy

from test_parallel_campaign import (equivalence_key, replace_campaign,
                                    tcas_campaign)

WORKERS = 2


@pytest.mark.benchmark(group="distributed")
@pytest.mark.parametrize("make_campaign", [tcas_campaign, replace_campaign],
                         ids=["tcas", "replace"])
def test_distributed_matches_serial_on_paper_benchmarks(benchmark,
                                                        make_campaign):
    workload, campaign, injections, spec = make_campaign()
    golden = workload.golden_output()
    query = spec.build()

    serial = campaign.run(query, injections=injections)
    distributed = benchmark.pedantic(
        run_campaign_distributed, rounds=1, iterations=1,
        args=(campaign, spec),
        kwargs=dict(injections=injections,
                    config=DistributedConfig(workers=WORKERS, chunk_size=2,
                                             poll_interval=0.02,
                                             wall_clock_timeout=600.0)))

    assert equivalence_key(distributed, golden) == equivalence_key(serial,
                                                                   golden)
    assert distributed.injections_run == len(injections)
    print(f"\n[DIST] {workload.name}: {len(injections)} injections, "
          f"serial {serial.elapsed_seconds:.2f}s vs {WORKERS} distributed "
          f"workers {distributed.elapsed_seconds:.2f}s; "
          f"{distributed.total_solutions} solutions, identical to serial")


@pytest.mark.benchmark(group="distributed")
@pytest.mark.parametrize("make_campaign", [tcas_campaign, replace_campaign],
                         ids=["tcas", "replace"])
def test_interrupted_checkpoint_resume_is_identical(benchmark, make_campaign,
                                                    tmp_path):
    """A campaign killed mid-sweep resumes to serial-identical results."""
    workload, campaign, injections, spec = make_campaign()
    golden = workload.golden_output()
    query = spec.build()
    journal_path = str(tmp_path / "campaign.ckpt")

    serial = campaign.run(query, injections=injections)
    # The "killed" first attempt: only part of the sweep reaches the journal.
    CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
        campaign, injections[:len(injections) // 2], query)

    def resume():
        strategy = CheckpointingStrategy(SerialExecutionStrategy(),
                                         journal_path, resume=True)
        return campaign.run(query, injections=injections, strategy=strategy)

    resumed = benchmark.pedantic(resume, rounds=1, iterations=1)
    assert equivalence_key(resumed, golden) == equivalence_key(serial, golden)
    print(f"\n[DIST] {workload.name}: resume over "
          f"{len(injections) // 2} journaled injections, identical to serial")
