"""PAR — Section 6.1: parallel campaign execution (cluster tasks on a pool).

The paper distributes its search tasks over a cluster; the parallel runner
reproduces that execution model with a worker pool on one host.  These
benches check the two properties that make the runner usable as a drop-in
replacement for the serial sweep:

* determinism — a parallel campaign returns a ``CampaignResult`` with
  exactly the same per-injection results (solutions, outcome classification,
  ordering) as the serial run, on the tcas and replace programs the paper
  evaluates;
* scaling — sharding the factorial sweep over 4 workers beats the serial
  sweep (asserted only when the host actually has 4 cores; the measurement
  is always printed).
"""

import multiprocessing
import os
import time

import pytest

from repro.core import SymbolicCampaign, classify
from repro.errors import RegisterFileError
from repro.machine import ExecutionConfig
from repro.parallel import ParallelConfig, QuerySpec, run_campaign_parallel
from repro.programs import factorial_workload, replace_workload, tcas_workload


def equivalence_key(campaign_result, golden):
    """Timing-free projection: per-injection solutions + outcome kinds."""
    key = []
    for result in campaign_result.results:
        solutions = [(s.state.output_values(), s.state.status.value,
                      classify(s.state, golden).kind.value)
                     for s in result.solutions]
        key.append((result.injection.label(), result.activated,
                    result.completed, solutions))
    return key


def tcas_campaign():
    workload = tcas_workload()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=3_000,
                                         control_fork_domain="labels",
                                         max_control_forks=2_048,
                                         max_memory_forks=4),
        max_solutions_per_injection=10,
        max_states_per_injection=20_000)
    start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (31, 2)][:10]
    spec = QuerySpec.predefined("wrong-final-value", expected_value=1)
    return workload, campaign, injections, spec


def replace_campaign():
    workload = replace_workload(pattern="[0-9]", substitution="#",
                                lines=("ab12cd9",))
    golden = workload.golden_output()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=40_000,
                                         control_fork_domain="labels",
                                         max_control_forks=64,
                                         max_memory_forks=2),
        max_solutions_per_injection=2,
        max_states_per_injection=40_000)
    start, end = workload.compiled.function_region("dodash")
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (8, 9, 10)][:8]
    spec = QuerySpec.predefined("incorrect-output", golden_output=golden)
    return workload, campaign, injections, spec


@pytest.mark.benchmark(group="parallel")
@pytest.mark.parametrize("make_campaign", [tcas_campaign, replace_campaign],
                         ids=["tcas", "replace"])
def test_parallel_matches_serial_on_paper_benchmarks(benchmark, make_campaign):
    workload, campaign, injections, spec = make_campaign()
    golden = workload.golden_output()
    query = spec.build()

    serial = campaign.run(query, injections=injections)
    parallel = benchmark.pedantic(
        run_campaign_parallel, rounds=1, iterations=1,
        args=(campaign, spec),
        kwargs=dict(injections=injections,
                    config=ParallelConfig(workers=4, chunk_size=2)))

    assert equivalence_key(parallel, golden) == equivalence_key(serial, golden)
    assert parallel.injections_run == len(injections)
    print(f"\n[PAR] {workload.name}: {len(injections)} injections, "
          f"serial {serial.elapsed_seconds:.2f}s vs "
          f"4 workers {parallel.elapsed_seconds:.2f}s; "
          f"{parallel.total_solutions} solutions, identical to serial")


def factorial_sweep():
    """A sweep heavy enough to measure scaling: every register injection of
    the factorial kernel at several loop iterations (dynamic occurrences)."""
    workload = factorial_workload(default_input=40)
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=2_000),
        max_solutions_per_injection=50,
        max_states_per_injection=20_000)
    injections = []
    for occurrence in range(1, 40, 2):
        for base in campaign.enumerate_injections():
            injections.append(type(base)(breakpoint_pc=base.breakpoint_pc,
                                         target=base.target,
                                         occurrence=occurrence,
                                         description=base.description))
    spec = QuerySpec.predefined("err-output")
    return workload, campaign, injections, spec


@pytest.mark.benchmark(group="parallel")
def test_parallel_scaling_on_factorial_sweep(benchmark):
    workload, campaign, injections, spec = factorial_sweep()
    golden = workload.golden_output()
    query = spec.build()

    start = time.perf_counter()
    serial = campaign.run(query, injections=injections)
    serial_seconds = time.perf_counter() - start

    parallel = benchmark.pedantic(
        run_campaign_parallel, rounds=1, iterations=1,
        args=(campaign, spec),
        kwargs=dict(injections=injections, config=ParallelConfig(workers=4)))
    parallel_seconds = parallel.elapsed_seconds

    assert equivalence_key(parallel, golden) == equivalence_key(serial, golden)

    cores = multiprocessing.cpu_count()
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"\n[PAR] factorial sweep: {len(injections)} injections on {cores} cores")
    print(f"  serial     : {serial_seconds:.2f}s")
    print(f"  4 workers  : {parallel_seconds:.2f}s  (speedup {speedup:.2f}x)")
    # REPRO_SKIP_SCALING_ASSERT opts out of the timing assertion (not the
    # equivalence check above) on hosts where wall-clock measurements are
    # unreliable — e.g. heavily oversubscribed shared runners.
    if cores < 4:
        print(f"  (speedup assertion skipped: only {cores} core(s) available)")
    elif os.environ.get("REPRO_SKIP_SCALING_ASSERT"):
        print("  (speedup assertion skipped: REPRO_SKIP_SCALING_ASSERT set)")
    else:
        assert speedup > 1.5, (
            f"expected >1.5x speedup at 4 workers on {cores} cores, "
            f"got {speedup:.2f}x")
