"""Tests for the symbolic executor and the lean concrete interpreter."""

import pytest

from repro.detectors import DetectorSet
from repro.isa.parser import assemble
from repro.isa.values import ERR, is_err
from repro.machine import (DIVIDE_BY_ZERO, ExecutionConfig, Executor,
                           ILLEGAL_ADDRESS, ILLEGAL_INSTRUCTION,
                           INPUT_EXHAUSTED, MachineModelError, Status,
                           TIMED_OUT, concrete_step, initial_state,
                           run_concrete, run_concrete_until)
from repro.machine.executor import SymbolicValueEncountered


def run_symbolic(source, state=None, detectors=DetectorSet(), max_steps=500,
                 **config_kwargs):
    program = assemble(source)
    executor = Executor(program, detectors,
                        ExecutionConfig(max_steps=max_steps, **config_kwargs))
    state = state or initial_state()
    return executor.run(state)


class TestArithmeticSemantics:
    def test_add_and_immediate_forms(self):
        finals = run_symbolic("li $1 4\naddi $2 $1 3\nadd $3 $2 $1\nprint $3\nhalt\n")
        assert len(finals) == 1
        assert finals[0].output_values() == (11,)

    def test_divide_by_zero_crashes(self):
        finals = run_symbolic("li $1 3\nli $2 0\ndiv $3 $1 $2\nhalt\n")
        assert finals[0].crashed
        assert finals[0].exception == DIVIDE_BY_ZERO

    def test_division_by_symbolic_value_forks(self):
        program = assemble("div $3 $1 $2\nprint $3\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, 10)
        state.write_register(2, ERR)
        finals = executor.run(state)
        statuses = {(s.status, s.exception) for s in finals}
        assert (Status.EXCEPTION, DIVIDE_BY_ZERO) in statuses
        assert any(s.status is Status.HALTED and is_err(s.output_values()[0])
                   for s in finals)

    def test_mult_err_by_zero_register_masks(self):
        program = assemble("mult $3 $1 $2\nprint $3\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, ERR)
        state.write_register(2, 0)
        finals = executor.run(state)
        assert [s.output_values() for s in finals] == [(0,)]


class TestCompareAndBranchSemantics:
    def test_concrete_branch(self):
        finals = run_symbolic("""
            li $1 3
            beq $1 3 yes
            print $0
            halt
        yes: li $2 99
            print $2
            halt
        """)
        assert finals[0].output_values() == (99,)

    def test_symbolic_branch_forks_into_both_paths(self):
        program = assemble("""
            beq $1 0 zero
            prints "nonzero"
            halt
        zero: prints "zero"
            halt
        """)
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        outputs = {s.output_values()[0] for s in finals}
        assert outputs == {"zero", "nonzero"}

    def test_symbolic_compare_sets_zero_or_one(self):
        program = assemble("setgt $2 $1 $0\nprint $2\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        assert {s.output_values()[0] for s in finals} == {0, 1}

    def test_consistent_forks_no_contradictory_path(self):
        # Once the first branch decides $1 == 0, the second branch must agree.
        program = assemble("""
            beq $1 0 first_zero
            beq $1 0 impossible
            prints "nonzero twice"
            halt
        impossible: prints "contradiction"
            halt
        first_zero: prints "zero"
            halt
        """)
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        outputs = {s.output_values()[0] for s in finals}
        assert "contradiction" not in outputs
        assert outputs == {"zero", "nonzero twice"}


class TestMemorySemantics:
    def test_store_then_load(self):
        finals = run_symbolic("""
            li $1 500
            li $2 77
            sti $2 $1 0
            ldi $3 $1 0
            print $3
            halt
        """)
        assert finals[0].output_values() == (77,)

    def test_load_from_undefined_address_crashes(self):
        finals = run_symbolic("li $1 123\nldi $2 $1 0\nhalt\n")
        assert finals[0].crashed
        assert finals[0].exception == ILLEGAL_ADDRESS

    def test_load_through_err_pointer_forks(self):
        program = assemble("ldi $2 $1 0\nprint $2\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state(memory={100: 7, 200: 9})
        state.write_register(1, ERR)
        finals = executor.run(state)
        outcomes = {s.exception if s.crashed else s.output_values()[0] for s in finals}
        assert ILLEGAL_ADDRESS in outcomes
        assert 7 in outcomes and 9 in outcomes

    def test_store_through_err_pointer_forks(self):
        program = assemble("sti $2 $1 0\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state(memory={100: 7})
        state.write_register(1, ERR)
        state.write_register(2, 55)
        finals = executor.run(state)
        assert all(s.status is Status.HALTED for s in finals)
        # one fork overwrites the existing word, one creates a new word
        overwrote = any(s.memory.get(100) == 55 for s in finals)
        created = any(s.memory.get(101) == 55 for s in finals)
        assert overwrote and created


class TestControlSemantics:
    def test_jal_and_jr(self):
        finals = run_symbolic("""
            jal callee
            print $2
            halt
        callee: li $2 5
            jr $31
        """)
        assert finals[0].output_values() == (5,)

    def test_jr_to_invalid_address_crashes(self):
        finals = run_symbolic("li $1 999\njr $1\nhalt\n")
        assert finals[0].crashed
        assert finals[0].exception == ILLEGAL_INSTRUCTION

    def test_jr_with_err_target_forks_to_labels_and_crash(self):
        program = assemble("""
            jr $1
        a:  prints "a"
            halt
        b:  prints "b"
            halt
        """)
        executor = Executor(program, config=ExecutionConfig(
            max_steps=50, control_fork_domain="labels"))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        outcomes = {s.exception if s.crashed else s.output_values()[0] for s in finals}
        assert outcomes == {ILLEGAL_INSTRUCTION, "a", "b"}

    def test_corrupted_pc_at_fetch_forks(self):
        program = assemble("x: prints \"x\"\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        state = initial_state()
        state.pc = ERR
        finals = executor.run(state)
        outcomes = {s.exception if s.crashed else s.output_values()[0] for s in finals}
        assert ILLEGAL_INSTRUCTION in outcomes and "x" in outcomes

    def test_exception_only_domain_suppresses_landing_forks(self):
        program = assemble("jr $1\na: halt\n")
        executor = Executor(program, config=ExecutionConfig(
            max_steps=50, control_fork_domain="exception_only"))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        assert len(finals) == 1 and finals[0].crashed


class TestIOAndSpecial:
    def test_read_print_prints(self):
        program = assemble("read $1\nprints \"value: \"\nprint $1\nhalt\n")
        executor = Executor(program, config=ExecutionConfig(max_steps=50))
        finals = executor.run(initial_state(input_values=[42]))
        assert finals[0].output_values() == ("value: ", 42)

    def test_read_with_exhausted_input_crashes(self):
        finals = run_symbolic("read $1\nhalt\n")
        assert finals[0].crashed
        assert finals[0].exception == INPUT_EXHAUSTED

    def test_throw_crashes_with_message(self):
        finals = run_symbolic('throw "custom failure"\nhalt\n')
        assert finals[0].crashed
        assert finals[0].exception == "custom failure"

    def test_fall_off_end_is_illegal_instruction(self):
        finals = run_symbolic("nop\n")
        assert finals[0].crashed
        assert finals[0].exception == ILLEGAL_INSTRUCTION

    def test_watchdog_timeout(self):
        finals = run_symbolic("loop: beq $0 0 loop\nhalt\n", max_steps=25)
        assert finals[0].hung
        assert finals[0].exception == TIMED_OUT

    def test_stepping_terminated_state_is_an_error(self):
        program = assemble("halt\n")
        executor = Executor(program)
        state = initial_state()
        final = executor.run(state)[0]
        with pytest.raises(MachineModelError):
            executor.step(final)


class TestConcreteInterpreter:
    def test_agrees_with_symbolic_on_concrete_program(self):
        source = """
            li $1 10
            li $2 0
            li $3 0
        loop: setge $4 $3 $1
            bne $4 0 done
            add $2 $2 $3
            addi $3 $3 1
            beq $0 0 loop
        done: print $2
            halt
        """
        program = assemble(source)
        symbolic_final = Executor(program, config=ExecutionConfig(max_steps=500)) \
            .run(initial_state())[0]
        concrete_final = run_concrete(program, initial_state())
        assert symbolic_final.output_values() == concrete_final.output_values() == (45,)
        assert concrete_final.steps == symbolic_final.steps

    def test_concrete_step_rejects_symbolic_state(self):
        program = assemble("print $1\nhalt\n")
        state = initial_state()
        state.write_register(1, ERR)
        with pytest.raises(SymbolicValueEncountered):
            concrete_step(program, state)

    def test_run_concrete_until_positions_at_breakpoint(self):
        program = assemble("li $1 1\nli $2 2\nli $3 3\nhalt\n")
        state = initial_state()
        run_concrete_until(program, state, stop_pc=2)
        assert state.pc == 2
        assert state.read_register(2) == 2
        assert state.read_register(3) == 0

    def test_run_concrete_until_occurrence(self):
        source = """
            li $1 0
        loop: addi $1 $1 1
            setgei $2 $1 3
            beq $2 0 loop
            halt
        """
        program = assemble(source)
        state = initial_state()
        run_concrete_until(program, state, stop_pc=1, occurrence=2)
        assert state.pc == 1
        assert state.read_register(1) == 1

    def test_run_concrete_timeout(self):
        program = assemble("loop: beq $0 0 loop\n")
        state = initial_state()
        run_concrete(program, state, max_steps=10)
        assert state.hung
