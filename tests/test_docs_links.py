"""The docs link checker (tools/check_doc_links.py) and the repo's docs.

Two halves: unit tests for the checker's link extraction/resolution on a
fabricated tree, and the live gate — the repo's own tracked markdown must
contain no dead relative links (the same check CI runs).
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"

sys.path.insert(0, str(CHECKER.parent))
from check_doc_links import dead_links  # noqa: E402


class TestDeadLinkDetection:
    def test_live_relative_links_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("# other\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "deep.md").write_text("# deep\n")
        doc = tmp_path / "doc.md"
        doc.write_text("[a](other.md) [b](sub/deep.md) "
                       "[c](other.md#section) [d](./other.md)\n")
        assert dead_links(doc, tmp_path) == []

    def test_dead_relative_link_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](nope/gone.md) for details\n")
        assert dead_links(doc, tmp_path) == [(doc, "nope/gone.md")]

    def test_external_and_anchor_links_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[w](https://example.com/x.md) "
                       "[m](mailto:a@b.c) [s](#local-heading)\n")
        assert dead_links(doc, tmp_path) == []

    def test_links_inside_fenced_code_blocks_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```\n[example](not/a/real/file.md)\n```\n")
        assert dead_links(doc, tmp_path) == []

    def test_link_escaping_the_repo_is_dead(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[out](../../etc/passwd)\n")
        assert dead_links(doc, tmp_path) == [(doc, "../../etc/passwd")]


class TestRepoDocs:
    def test_tracked_markdown_has_no_dead_relative_links(self):
        """The CI docs gate, run in-process: every relative link in the
        repo's own markdown must resolve."""
        proc = subprocess.run([sys.executable, str(CHECKER)],
                              cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_checker_exits_nonzero_on_a_dead_link(self, tmp_path):
        doc = tmp_path / "broken.md"
        doc.write_text("[dead](missing.md)\n")
        proc = subprocess.run([sys.executable, str(CHECKER), str(doc)],
                              capture_output=True, text=True)
        assert proc.returncode == 1
        assert "missing.md" in proc.stderr
