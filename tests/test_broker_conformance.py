"""Broker-conformance suite: the executable form of the Broker contract.

One parametrized suite, run against every backend — currently
:class:`~repro.distributed.broker.FilesystemBroker` (shared directory) and
:class:`~repro.net.SocketBroker` (TCP server).  A future backend (redis, …)
is conformant exactly when it passes this file unchanged: claim ordering
and exclusivity, lease expiry/renewal/requeue, double-complete idempotence,
graceful release, stale-result validation, truncated-payload quarantine,
and queue lifecycle accounting.
"""

import os
import pickle
import time

import pytest

from repro.distributed import CampaignManifest, FilesystemBroker
from repro.net import BrokerServer, SocketBroker
from repro.parallel import QuerySpec


class FilesystemHarness:
    """Backend-specific glue: build clients over one queue, corrupt tasks."""

    name = "filesystem"

    def __init__(self, tmp_path):
        self.root = str(tmp_path / "queue")

    def make(self, lease_seconds=60.0):
        return FilesystemBroker(self.root, lease_seconds=lease_seconds)

    def corrupt_pending(self, index):
        """Truncate a pending task's payload, as external damage would."""
        path = os.path.join(self.root, "tasks", "pending",
                            f"task-{index:08d}.pkl")
        with open(path, "rb") as handle:
            intact = handle.read()
        with open(path, "wb") as handle:
            handle.write(intact[:max(1, len(intact) - 4)])

    def close(self):
        pass


class SocketHarness:
    name = "socket"

    def __init__(self, tmp_path):
        self.server = BrokerServer().start()
        self.clients = []

    def make(self, lease_seconds=60.0):
        client = SocketBroker(self.server.url, lease_seconds=lease_seconds)
        self.clients.append(client)
        return client

    def corrupt_pending(self, index):
        """Publish a torn pickle blob for the index (the server stores
        payload bytes opaquely, so a truncated blob is representable)."""
        client = self.clients[0]
        blob = pickle.dumps(("payload", index), protocol=4)
        client._call({"op": "put_task", "index": index}, [blob[:-4]])

    def close(self):
        for client in self.clients:
            client.close()
        self.server.stop()


@pytest.fixture(params=["filesystem", "socket"])
def harness(request, tmp_path):
    built = (FilesystemHarness if request.param == "filesystem"
             else SocketHarness)(tmp_path)
    try:
        yield built
    finally:
        built.close()


@pytest.fixture
def broker(harness):
    return harness.make()


def manifest(campaign_id="test"):
    return CampaignManifest(campaign_spec=None,
                            query_spec=QuerySpec.predefined("crash"),
                            campaign_id=campaign_id)


class TestClaimSemantics:
    def test_rejects_bad_lease(self, harness):
        with pytest.raises(ValueError, match="lease_seconds"):
            harness.make(lease_seconds=0)

    def test_claim_is_exclusive_and_index_ordered(self, broker):
        broker.put_task(1, "payload-1")
        broker.put_task(0, "payload-0")
        first = broker.claim_next()
        second = broker.claim_next()
        assert (first.index, first.payload) == (0, "payload-0")
        assert (second.index, second.payload) == (1, "payload-1")
        assert broker.claim_next() is None
        assert broker.pending_count() == 0
        assert broker.claimed_count() == 2

    def test_two_clients_never_claim_the_same_task(self, harness):
        one, two = harness.make(), harness.make()
        for index in range(4):
            one.put_task(index, f"payload-{index}")
        claims = [client.claim_next() for client in (one, two, one, two)]
        assert sorted(claim.index for claim in claims) == [0, 1, 2, 3]
        assert one.claim_next() is None and two.claim_next() is None

    def test_claim_skips_tasks_that_already_have_results(self, broker):
        broker.put_task(0, "work")
        broker.complete(broker.claim_next(), "result")
        broker.put_task(0, "work")  # requeue-race leftover
        assert broker.claim_next() is None
        assert broker.pending_count() == 0  # the stale entry was dropped

    def test_validator_decides_whether_a_result_settles_its_task(self, broker):
        broker.put_task(0, "work")
        broker.complete(broker.claim_next(), ("old-campaign", "body"))
        broker.put_task(0, "work")  # the new campaign's task, same index
        # A validator that rejects the stale result keeps the task live…
        claim = broker.claim_next(
            result_valid=lambda payload: payload[0] == "new-campaign")
        assert claim is not None and claim.index == 0
        broker.release(claim)
        # …and one that accepts it settles the task away.
        assert broker.claim_next(
            result_valid=lambda payload: payload[0] == "old-campaign") is None
        assert broker.pending_count() == 0

    def test_truncated_task_payload_is_quarantined(self, harness):
        """A torn payload must not wedge the claim loop: the corrupt task
        is dropped and claiming proceeds to the next intact one."""
        broker = harness.make()
        broker.put_task(0, "doomed")
        broker.put_task(1, "good")
        harness.corrupt_pending(0)
        claim = broker.claim_next()
        assert claim is not None and claim.index == 1
        assert claim.payload == "good"
        assert broker.claim_next() is None


class TestLeases:
    def test_expired_lease_requeues_and_double_complete_is_idempotent(
            self, harness):
        broker = harness.make(lease_seconds=0.05)
        broker.put_task(0, "work")
        stale = broker.claim_next()
        assert broker.requeue_expired() == []  # lease still fresh
        time.sleep(0.1)
        assert broker.requeue_expired() == [0]
        fresh = broker.claim_next()
        assert fresh is not None and fresh.index == 0
        # Both twins complete; re-execution writes byte-identical payloads.
        broker.complete(stale, "result")
        broker.complete(fresh, "result")
        assert broker.results_count() == 1
        assert broker.claimed_count() == 0
        assert broker.fetch_new_results(seen=set()) == [(0, "result")]

    def test_renew_keeps_the_lease_alive(self, harness):
        broker = harness.make(lease_seconds=0.2)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        for _ in range(3):
            time.sleep(0.1)
            broker.renew_lease(claim)
        assert broker.requeue_expired() == []

    def test_renew_after_expiry_is_a_harmless_noop(self, harness):
        broker = harness.make(lease_seconds=0.05)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        time.sleep(0.1)
        assert broker.requeue_expired() == [0]
        broker.renew_lease(claim)  # must not resurrect the lost claim
        reclaimed = broker.claim_next()
        assert reclaimed is not None and reclaimed.index == 0

    def test_release_returns_the_task_immediately(self, broker):
        broker.put_task(0, "work")
        claim = broker.claim_next()
        assert broker.pending_count() == 0
        broker.release(claim)
        assert broker.pending_count() == 1
        assert broker.claimed_count() == 0
        reclaimed = broker.claim_next()
        assert (reclaimed.index, reclaimed.payload) == (0, "work")

    def test_release_after_completion_is_a_noop(self, broker):
        broker.put_task(0, "work")
        claim = broker.claim_next()
        broker.complete(claim, "result")
        broker.release(claim)
        assert broker.pending_count() == 0
        assert broker.results_count() == 1


class TestQueueLifecycle:
    def test_close_total_and_drain_accounting(self, broker):
        assert broker.total_tasks() is None
        broker.put_task(0, "a")
        broker.close_queue(1)
        assert broker.total_tasks() == 1
        assert not broker.is_drained()
        broker.complete(broker.claim_next(), "r")
        assert broker.is_drained()

    def test_fetch_results_is_incremental_and_discard_forgets(self, broker):
        broker.put_task(0, "a")
        broker.put_task(1, "b")
        broker.complete(broker.claim_next(), "r0")
        assert broker.fetch_new_results(seen=set()) == [(0, "r0")]
        broker.complete(broker.claim_next(), "r1")
        assert broker.fetch_new_results(seen={0}) == [(1, "r1")]
        broker.discard_result(0)
        assert broker.fetch_new_results(seen=set()) == [(1, "r1")]

    def test_manifest_roundtrip(self, broker):
        broker.publish_manifest(manifest("campaign-42"))
        loaded = broker.load_manifest(timeout=5.0, poll_interval=0.01)
        assert loaded.campaign_id == "campaign-42"
        assert loaded.task_spec.max_errors_per_task == 10

    def test_manifest_wait_times_out(self, broker):
        with pytest.raises(TimeoutError):
            broker.load_manifest(timeout=0.1, poll_interval=0.02)

    def test_reset_purges_a_previous_campaign(self, broker):
        broker.publish_manifest(manifest())
        broker.put_task(0, "stale-task")
        claim = broker.claim_next()
        broker.put_task(1, "stale-pending")
        broker.complete(claim, "stale-result")
        broker.close_queue(2)
        broker.reset()
        assert broker.pending_count() == 0
        assert broker.claimed_count() == 0
        assert broker.results_count() == 0
        assert broker.total_tasks() is None
        with pytest.raises(TimeoutError):
            broker.load_manifest(timeout=0)
