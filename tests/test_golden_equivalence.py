"""End-to-end equivalence of campaigns against pre-refactor golden results.

``tests/golden/campaign_equivalence.json`` was produced by the seed code
(before the copy-on-write state refactor) on the tcas and replace
subsets the parallel benchmarks exercise.  The refactor promises a
byte-identical ``CampaignResult`` — same injections, activation flags,
completion flags, and per-solution outputs/statuses/depths/outcomes in the
same order — for the serial sweep AND the 2-worker parallel sweep.
"""

import json
from pathlib import Path

import pytest

from repro.core import SymbolicCampaign, classify
from repro.errors import RegisterFileError
from repro.isa.values import is_err
from repro.machine import ExecutionConfig
from repro.parallel import ParallelConfig, QuerySpec, run_campaign_parallel
from repro.programs import replace_workload, tcas_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "campaign_equivalence.json"


def _render_value(value):
    return "err" if is_err(value) else value


def equivalence_key(campaign_result, golden):
    """The JSON-comparable projection stored in the golden file."""
    key = []
    for result in campaign_result.results:
        solutions = [{"output": [_render_value(v) for v in s.state.output_values()],
                      "status": s.state.status.value,
                      "depth": s.depth,
                      "outcome": classify(s.state, golden).kind.value}
                     for s in result.solutions]
        key.append({"injection": result.injection.label(),
                    "activated": result.activated,
                    "completed": result.completed,
                    "solutions": solutions})
    return key


def tcas_campaign():
    workload = tcas_workload()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=3_000,
                                         control_fork_domain="labels",
                                         max_control_forks=2_048,
                                         max_memory_forks=4),
        max_solutions_per_injection=10,
        max_states_per_injection=20_000)
    start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (31, 2)][:10]
    spec = QuerySpec.predefined("wrong-final-value", expected_value=1)
    return workload, campaign, injections, spec


def replace_campaign():
    workload = replace_workload(pattern="[0-9]", substitution="#",
                                lines=("ab12cd9",))
    golden = workload.golden_output()
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=40_000,
                                         control_fork_domain="labels",
                                         max_control_forks=64,
                                         max_memory_forks=2),
        max_solutions_per_injection=2,
        max_states_per_injection=40_000)
    start, end = workload.compiled.function_region("dodash")
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target.index in (8, 9, 10)][:8]
    spec = QuerySpec.predefined("incorrect-output", golden_output=golden)
    return workload, campaign, injections, spec


@pytest.fixture(scope="module")
def golden_data():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("name,make_campaign",
                         [("tcas", tcas_campaign), ("replace", replace_campaign)])
def test_serial_campaign_matches_pre_refactor_golden(name, make_campaign,
                                                     golden_data):
    workload, campaign, injections, spec = make_campaign()
    golden = workload.golden_output()
    assert [_render_value(v) for v in golden] == golden_data[name]["golden_output"]
    assert len(injections) == golden_data[name]["injections"]
    result = campaign.run(spec.build(), injections=injections)
    assert equivalence_key(result, golden) == golden_data[name]["results"]


@pytest.mark.parametrize("name,make_campaign",
                         [("tcas", tcas_campaign), ("replace", replace_campaign)])
def test_two_worker_campaign_matches_pre_refactor_golden(name, make_campaign,
                                                         golden_data):
    workload, campaign, injections, spec = make_campaign()
    golden = workload.golden_output()
    result = run_campaign_parallel(
        campaign, spec, injections=injections,
        config=ParallelConfig(workers=2, chunk_size=2))
    assert equivalence_key(result, golden) == golden_data[name]["results"]
