"""Tests for the copy-on-write state representation and the incremental
fingerprint (the structural-sharing substrate under the symbolic stack).

The load-bearing property is checked with Hypothesis: after ANY interleaving
of register writes, memory writes, output appends, copies and forced
flattens, the incrementally-maintained location hash, output hash and err
census must equal a from-scratch recomputation, and the state's fingerprint
must equal the fingerprint of a state rebuilt from the flattened content.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import NUM_REGISTERS
from repro.isa.values import ERR
from repro.machine.state import (Fingerprint, MachineState,
                                 recompute_incremental_state, initial_state,
                                 state_contains_err)

# ---------------------------------------------------------------------------
# Hypothesis: incremental bookkeeping == from-scratch recomputation
# ---------------------------------------------------------------------------

_values = st.one_of(st.integers(min_value=-7, max_value=7), st.just(ERR))
_outputs = st.one_of(st.integers(min_value=-7, max_value=7),
                     st.sampled_from(["a", "bc"]), st.just(ERR))

_operations = st.one_of(
    st.tuples(st.just("reg"), st.integers(0, NUM_REGISTERS - 1), _values),
    st.tuples(st.just("mem"), st.integers(0, 12), _values),
    st.tuples(st.just("out"), _outputs, st.none()),
    st.tuples(st.just("copy"), st.none(), st.none()),
    st.tuples(st.just("flatten"), st.none(), st.none()),
)


def _rebuild_flat(state: MachineState) -> MachineState:
    """An independent state holding the same logical content, built flat."""
    rebuilt = MachineState(pc=state.pc,
                           registers=list(state.registers.as_tuple()),
                           memory=state.memory.to_dict(),
                           input_values=state.input,
                           output=list(state.output),
                           constraints=state.constraints)
    rebuilt.input_pos = state.input_pos
    rebuilt.status = state.status
    rebuilt.exception = state.exception
    return rebuilt


def _check_consistent(state: MachineState) -> None:
    loc_hash, out_hash, err_count = recompute_incremental_state(state)
    assert state._loc_hash == loc_hash
    assert state._out_hash == out_hash
    assert state._err_count == err_count
    assert state_contains_err(state) == (err_count > 0)
    rebuilt = _rebuild_flat(state)
    assert state.fingerprint() == rebuilt.fingerprint()
    assert hash(state.fingerprint()) == hash(rebuilt.fingerprint())


@settings(max_examples=120, deadline=None)
@given(st.lists(_operations, max_size=50))
def test_incremental_fingerprint_matches_recomputation(operations):
    state = MachineState(input_values=[1, 2], memory={100: 5, 101: ERR})
    lineage = [state]
    for kind, a, b in operations:
        if kind == "reg":
            state.write_register(a, b)
        elif kind == "mem":
            state.write_memory(a, b)
        elif kind == "out":
            state.append_output(a)
        elif kind == "copy":
            state = state.copy()
            lineage.append(state)
        else:  # forced flatten, independent of the size thresholds
            state.registers._flatten()
            state.memory._flatten()
    for survivor in lineage:
        _check_consistent(survivor)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), _values), min_size=1, max_size=30))
def test_forked_states_do_not_alias(writes):
    parent = MachineState(memory={addr: 0 for addr in range(10)})
    child = parent.copy()
    for address, value in writes:
        child.write_memory(address, value)
        child.write_register(address + 1, value)
    # The parent still sees the original content through the shared base.
    for address in range(10):
        assert parent.read_memory(address) == 0
    assert parent.registers.as_tuple() == (0,) * NUM_REGISTERS
    _check_consistent(parent)
    _check_consistent(child)


# ---------------------------------------------------------------------------
# Fingerprint semantics
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_equal_content_means_equal_fingerprint(self):
        a = MachineState(input_values=[3])
        b = MachineState(input_values=[3])
        a.write_register(4, 9)
        b.write_register(4, 9)
        assert a.fingerprint() == b.fingerprint()
        assert hash(a.fingerprint()) == hash(b.fingerprint())

    def test_collision_falls_back_to_structural_comparison(self):
        """Two different states forced onto the same hash must NOT dedup."""
        a = MachineState()
        b = MachineState()
        b.write_register(4, 1)
        colliding_a = Fingerprint(12345, a)
        colliding_b = Fingerprint(12345, b)
        assert hash(colliding_a) == hash(colliding_b)
        assert colliding_a != colliding_b
        assert colliding_a == Fingerprint(12345, a.copy())

    def test_fingerprint_stable_under_later_state_mutation(self):
        """Fingerprints stored in a seen-set must not change when the state
        is later finished in place by the concretize handoff."""
        state = MachineState()
        state.write_register(3, 5)
        before = state.fingerprint()
        reference = state.copy().fingerprint()
        state.write_register(3, 6)      # in-place mutation afterwards
        state.write_memory(7, 8)
        state.append_output(1)
        state.halt()
        assert before == reference
        assert hash(before) == hash(reference)
        assert state.fingerprint() != reference

    def test_fingerprint_distinguishes_output_order(self):
        a = MachineState()
        b = MachineState()
        a.append_output(1)
        a.append_output(2)
        b.append_output(2)
        b.append_output(1)
        assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# Pickling: CoW states flatten into self-contained payloads
# ---------------------------------------------------------------------------

class TestPickling:
    def test_roundtrip_preserves_content_and_bookkeeping(self):
        state = initial_state(input_values=[1, 2], memory={5: 6})
        state.write_register(4, ERR)
        state.write_memory(9, 11)
        state.append_output("x")
        state.next_input()
        state.steps = 17
        clone = pickle.loads(pickle.dumps(state))
        assert clone.registers.as_tuple() == state.registers.as_tuple()
        assert clone.memory.to_dict() == state.memory.to_dict()
        assert clone.output_values() == state.output_values()
        assert clone.input_pos == state.input_pos
        assert clone.steps == state.steps
        assert clone.fingerprint() == state.fingerprint()
        _check_consistent(clone)

    def test_pickled_fork_is_flattened_and_independent(self):
        parent = initial_state(memory={1: 2, 3: 4})
        child = parent.copy()
        child.write_memory(1, 99)
        revived = pickle.loads(pickle.dumps(child))
        # Content round-trips; the revived state shares nothing with parent.
        assert revived.read_memory(1) == 99
        revived.write_memory(3, 77)
        assert parent.read_memory(3) == 4
        assert child.read_memory(3) == 4
