"""Tests for the SimpleScalar-substitute concrete simulator and its campaign."""

import pytest

from repro.concrete import (ConcreteCampaign, ConcreteSimulator, INT32_MAX, INT32_MIN,
                            OutcomeDistribution, ValuePolicy, printed_value_labeler,
                            tcas_outcome_labels)
from repro.constraints import Location
from repro.errors import Injection
from repro.machine import Status
from repro.programs import factorial_workload, sum_input_workload, tcas_workload


class TestConcreteSimulator:
    def test_fault_free_run(self):
        workload = factorial_workload()
        simulator = ConcreteSimulator(workload.program)
        run = simulator.run(workload.default_input)
        assert run.state.status is Status.HALTED
        assert run.output == ("Factorial = ", 120)
        assert simulator.golden_output(workload.default_input) == run.output

    def test_golden_output_raises_on_crash(self):
        workload = factorial_workload()
        simulator = ConcreteSimulator(workload.program)
        with pytest.raises(RuntimeError):
            simulator.golden_output(())  # no input -> read crashes

    def test_injection_changes_output(self):
        workload = factorial_workload()
        simulator = ConcreteSimulator(workload.program)
        # corrupt the loop counter ($3) right before the first multiplication
        mult_pc = next(i for i, ins in enumerate(workload.program.code)
                       if ins.opcode == "mult")
        injection = Injection(breakpoint_pc=mult_pc, target=Location.register(3))
        run = simulator.run_with_injection(injection, 2, workload.default_input)
        assert run.activated
        assert run.state.status is Status.HALTED
        assert run.output == ("Factorial = ", 2)

    def test_injection_can_cause_hang(self):
        workload = factorial_workload()
        simulator = ConcreteSimulator(workload.program, max_steps=300)
        subi_pc = next(i for i, ins in enumerate(workload.program.code)
                       if ins.opcode == "subi")
        # making the counter huge turns the loop into (effectively) a hang
        injection = Injection(breakpoint_pc=subi_pc, target=Location.register(3))
        run = simulator.run_with_injection(injection, INT32_MAX, workload.default_input)
        assert run.state.status is Status.TIMEOUT

    def test_unactivated_injection_reported(self):
        workload = factorial_workload()
        simulator = ConcreteSimulator(workload.program)
        injection = Injection(breakpoint_pc=5, target=Location.register(1),
                              occurrence=100)
        run = simulator.run_with_injection(injection, 1, workload.default_input)
        assert not run.activated


class TestValuePolicy:
    def test_default_values_include_extremes(self):
        policy = ValuePolicy()
        injection = Injection(breakpoint_pc=3, target=Location.register(2))
        values = policy.values_for(injection)
        assert values[:3] == [0, INT32_MAX, INT32_MIN]
        assert len(values) == 6

    def test_values_are_deterministic_per_injection(self):
        policy = ValuePolicy()
        injection = Injection(breakpoint_pc=3, target=Location.register(2))
        assert policy.values_for(injection) == policy.values_for(injection)

    def test_different_injections_get_different_random_values(self):
        policy = ValuePolicy()
        a = policy.values_for(Injection(breakpoint_pc=3, target=Location.register(2)))
        b = policy.values_for(Injection(breakpoint_pc=4, target=Location.register(2)))
        assert a[3:] != b[3:]


class TestOutcomeDistribution:
    def test_record_and_percentages(self):
        distribution = OutcomeDistribution(labels=tcas_outcome_labels())
        for label in ["1", "1", "crash", "0"]:
            distribution.record(label)
        assert distribution.total == 4
        assert distribution.count("1") == 2
        assert distribution.percentage("1") == 50.0
        assert distribution.percentage("2") == 0.0
        table = distribution.format_table()
        assert "crash" in table and "50.00%" in table

    def test_merge(self):
        a = OutcomeDistribution(labels=("x", "y"))
        b = OutcomeDistribution(labels=("x", "y"))
        a.record("x")
        b.record("y")
        merged = a.merge(b)
        assert merged.total == 2
        assert merged.count("x") == 1 and merged.count("y") == 1

    def test_labeler(self):
        from repro.machine import MachineState
        labeler = printed_value_labeler(expected_values=(0, 1, 2))

        state = MachineState()
        state.append_output(1)
        state.halt()
        assert labeler(state) == "1"

        crash = MachineState()
        crash.throw("illegal address")
        assert labeler(crash) == "crash"

        hang = MachineState()
        hang.time_out("timed out")
        assert labeler(hang) == "hang"

        weird = MachineState()
        weird.append_output(77)
        weird.halt()
        assert labeler(weird) == "other"

        empty = MachineState()
        empty.halt()
        assert labeler(empty) == "other"


class TestConcreteCampaign:
    def test_small_campaign_distribution(self):
        workload = sum_input_workload(count=2, values=(3, 4))
        golden = workload.golden_output()
        campaign = ConcreteCampaign(
            workload.program,
            input_values=workload.default_input,
            labeler=printed_value_labeler(expected_values=(golden[-1],)),
            outcome_labels=(str(golden[-1]), "other", "crash", "hang", "detected"),
            max_steps=2_000)
        result = campaign.run()
        assert result.total_faults > 0
        assert result.total_faults + result.skipped == campaign.planned_experiments()
        # the correct answer still shows up for some (benign) injections
        assert result.distribution.count(str(golden[-1])) > 0
        assert "total faults" in result.describe()

    def test_max_experiments_cap(self):
        workload = sum_input_workload(count=2, values=(3, 4))
        campaign = ConcreteCampaign(workload.program,
                                    input_values=workload.default_input,
                                    max_steps=2_000)
        result = campaign.run(max_experiments=5)
        assert result.total_faults + result.skipped <= 5

    def test_tcas_campaign_subset_matches_table2_shape(self):
        """A small slice of the Table 2 campaign: outcome `2` (the wrong
        advisory) must never be produced by concrete injections, while crashes
        and correct outputs both occur."""
        workload = tcas_workload()
        campaign = ConcreteCampaign(
            workload.program,
            input_values=workload.default_input,
            memory=workload.data_segment,
            labeler=printed_value_labeler(expected_values=(0, 1, 2)),
            max_steps=5_000)
        injections = campaign.enumerate_injections()[:40]
        result = campaign.run(injections=injections)
        assert result.distribution.count("2") == 0
        assert result.distribution.count("1") > 0
        assert result.total_faults > 100
