"""Tests for the repro.obs telemetry fabric (hub, sinks, rendering)."""

import json
import pickle

import pytest

from repro import obs
from repro.obs import (Histogram, JsonlEventSink, NullTelemetry, Telemetry,
                       TraceContext, read_events, render_broker,
                       render_metrics)
from repro.obs.report import format_telemetry_report
from repro.obs.top import format_broker_status


@pytest.fixture(autouse=True)
def restore_hub():
    """Every test leaves the process-global hub disabled again."""
    yield
    obs.set_hub(NullTelemetry())


class ListSink:
    """An in-memory sink capturing every record."""

    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, event):
        self.records.append(event)

    def close(self):
        self.closed = True


class TestNullHub:
    def test_default_hub_is_disabled(self):
        hub = obs.get()
        assert isinstance(hub, NullTelemetry)
        assert hub.enabled is False

    def test_all_operations_are_noops(self):
        hub = NullTelemetry()
        with hub.span("anything", key=1):
            pass
        hub.count("c")
        hub.gauge("g", 3)
        hub.observe("h", 0.1)
        hub.event("e", detail="x")
        hub.timed_event("t", 0.5)
        hub.adopt_trace("abc")
        assert hub.context() is None
        assert hub.snapshot() is None
        hub.absorb(None)

    def test_span_is_a_shared_singleton(self):
        hub = NullTelemetry()
        assert hub.span("a") is hub.span("b")


class TestTelemetryMetrics:
    def test_counters_accumulate(self):
        hub = Telemetry()
        hub.count("requests")
        hub.count("requests", 4)
        assert hub.counters["requests"] == 5

    def test_gauges_keep_the_last_value(self):
        hub = Telemetry()
        hub.gauge("depth", 3)
        hub.gauge("depth", 1)
        assert hub.gauges["depth"] == 1

    def test_observe_builds_a_histogram(self):
        hub = Telemetry()
        hub.observe("latency", 0.002)
        hub.observe("latency", 0.2)
        hist = hub.histograms["latency"]
        assert hist.count == 2
        assert hist.total == pytest.approx(0.202)
        assert hist.mean == pytest.approx(0.101)
        assert hist.minimum == pytest.approx(0.002)
        assert hist.maximum == pytest.approx(0.2)


class TestSpans:
    def test_span_records_event_and_duration(self):
        sink = ListSink()
        hub = Telemetry(trace_id="t1", component="test", sink=sink)
        with hub.span("work", item=7):
            pass
        [event] = sink.records
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["trace"] == "t1"
        assert event["component"] == "test"
        assert event["item"] == 7
        assert event["duration"] >= 0
        assert hub.histograms["work"].count == 1

    def test_nested_spans_parent_correctly(self):
        sink = ListSink()
        hub = Telemetry(sink=sink)
        with hub.span("outer") as outer:
            with hub.span("inner") as inner:
                pass
        inner_event, outer_event = sink.records
        assert inner_event["name"] == "inner"
        assert inner_event["parent"] == outer.span_id
        assert outer_event["parent"] is None
        assert inner.span_id != outer.span_id

    def test_cross_process_parent_seeds_the_root_span(self):
        sink = ListSink()
        hub = Telemetry(trace_id="t", parent_span_id="1234.9", sink=sink)
        with hub.span("child"):
            pass
        assert sink.records[0]["parent"] == "1234.9"

    def test_exception_marks_the_span(self):
        sink = ListSink()
        hub = Telemetry(sink=sink)
        with pytest.raises(ValueError):
            with hub.span("failing"):
                raise ValueError("boom")
        assert sink.records[0]["error"] == "ValueError"

    def test_timed_event_is_span_shaped(self):
        sink = ListSink()
        hub = Telemetry(sink=sink)
        hub.timed_event("wait", 0.25, index=3)
        [event] = sink.records
        assert event["type"] == "span"
        assert event["duration"] == 0.25
        assert event["index"] == 3
        assert hub.histograms["wait"].count == 1

    def test_context_carries_the_current_span(self):
        hub = Telemetry(trace_id="tr")
        with hub.span("running") as span:
            context = hub.context()
        assert context.trace_id == "tr"
        assert context.parent_span_id == span.span_id


class TestSnapshotAbsorb:
    def test_absorb_merges_worker_counters(self):
        coordinator = Telemetry(component="coordinator")
        coordinator.count("search.runs", 2)
        worker = Telemetry(component="w1")
        worker.count("search.runs", 3)
        worker.observe("search.seconds", 0.1)
        coordinator.absorb(worker.snapshot())
        assert coordinator.merged_counters()["search.runs"] == 5
        assert coordinator.merged_histograms()["search.seconds"].count == 1

    def test_snapshots_are_cumulative_latest_seq_wins(self):
        coordinator = Telemetry()
        worker = Telemetry(component="w1")
        worker.count("steps", 2)
        first = worker.snapshot()
        worker.count("steps", 3)
        second = worker.snapshot()
        coordinator.absorb(first)
        coordinator.absorb(second)
        assert coordinator.merged_counters()["steps"] == 5
        # Replaying out of order must not regress to the older snapshot.
        coordinator.absorb(first)
        assert coordinator.merged_counters()["steps"] == 5

    def test_absorb_order_independent_across_components(self):
        def merged(order):
            coordinator = Telemetry(component="c")
            for snap in order:
                coordinator.absorb(snap)
            return coordinator.merged_counters()

        w1 = Telemetry(component="w1")
        w1.count("steps", 1)
        w2 = Telemetry(component="w2")
        w2.count("steps", 10)
        a, b = w1.snapshot(), w2.snapshot()
        assert merged([a, b]) == merged([b, a]) == {"steps": 11}

    def test_events_ship_exactly_once(self):
        worker = Telemetry(component="w1")  # sink-less: events buffer
        worker.event("worker.crash", index=4)
        first = worker.snapshot()
        assert [e["name"] for e in first.events] == ["worker.crash"]
        assert worker.snapshot().events == []

        sink = ListSink()
        coordinator = Telemetry(component="coordinator", sink=sink)
        coordinator.absorb(first)
        [event] = sink.records
        assert event["name"] == "worker.crash"
        assert event["component"] == "w1"  # original identity preserved

    def test_pending_events_are_capped_not_unbounded(self):
        from repro.obs import telemetry as telemetry_module

        worker = Telemetry(component="w1")
        for i in range(telemetry_module._MAX_PENDING_EVENTS + 5):
            worker.event("e", i=i)
        snap = worker.snapshot()
        assert len(snap.events) == telemetry_module._MAX_PENDING_EVENTS
        assert snap.dropped_events == 5

    def test_metrics_event_reports_per_worker_counters(self):
        coordinator = Telemetry(component="coordinator")
        worker = Telemetry(component="w1")
        worker.count("search.runs", 4)
        coordinator.absorb(worker.snapshot())
        record = coordinator.metrics_event()
        assert record["type"] == "metrics"
        assert record["counters"]["search.runs"] == 4
        assert record["workers"]["w1"]["search.runs"] == 4


class TestHistogramSerialization:
    def test_round_trip(self):
        hist = Histogram()
        hist.observe(0.0003)
        hist.observe(2.0)
        copy = Histogram.from_dict(hist.to_dict())
        assert copy.counts == hist.counts
        assert copy.total == hist.total
        assert copy.count == hist.count
        assert copy.minimum == hist.minimum
        assert copy.maximum == hist.maximum

    def test_extra_buckets_fold_into_overflow(self):
        payload = Histogram().to_dict()
        payload["counts"] = payload["counts"] + [7]
        hist = Histogram.from_dict(payload)
        assert hist.counts[-1] == 7

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(1.5)
        a.merge(b)
        assert a.count == 2
        assert a.minimum == pytest.approx(0.01)
        assert a.maximum == pytest.approx(1.5)


class TestTraceContext:
    def test_pickle_round_trip(self):
        context = TraceContext(trace_id="abc", parent_span_id="1f.2")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_frozen(self):
        with pytest.raises(Exception):
            TraceContext(trace_id="abc").trace_id = "other"


class TestJsonlSink:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlEventSink(path)
        sink.write({"type": "event", "name": "a", "n": 1})
        sink.write({"type": "event", "name": "b"})
        sink.close()
        events = read_events(path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlEventSink(path)
        sink.write({"name": "intact"})
        sink.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "torn')  # no newline: a killed writer
        assert [e["name"] for e in read_events(path)] == ["intact"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"name": "later"}\n')
        with pytest.raises(ValueError):
            read_events(path)

    def test_values_are_json_safe_via_default_str(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlEventSink(path)
        sink.write({"name": "odd", "value": object()})
        sink.close()
        [event] = read_events(path)
        assert isinstance(event["value"], str)


class TestPrometheusRendering:
    def test_counters_gauges_histograms(self):
        hist = Histogram()
        hist.observe(0.0002)
        hist.observe(10.0)
        text = render_metrics({"search.runs": 3}, {"queue.depth": 2},
                              {"search.solve": hist})
        assert "# TYPE repro_search_runs_total counter" in text
        assert "repro_search_runs_total 3" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_search_solve_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_search_solve_seconds_count 2" in text

    def test_bucket_counts_are_cumulative(self):
        hist = Histogram()
        hist.observe(0.0002)
        hist.observe(0.0007)
        text = render_metrics({}, {}, {"s": hist})
        assert 'repro_s_seconds_bucket{le="0.0005"} 1' in text
        assert 'repro_s_seconds_bucket{le="0.001"} 2' in text

    def test_render_broker_omits_none_total(self):
        status = {"pending": 1, "claimed": 0, "results": 0, "total": None,
                  "uptime_seconds": 3.5, "ops": {"claim": 2}}
        text = render_broker(status)
        assert "repro_broker_total" not in text
        assert "repro_broker_pending 1" in text
        assert 'repro_broker_ops_total{op="claim"} 2' in text


class TestConfigureFinalize:
    def test_configure_installs_enabled_hub(self):
        hub = obs.configure(component="test")
        assert obs.get() is hub
        assert hub.enabled

    def test_finalize_writes_metrics_and_disables(self):
        sink = ListSink()
        hub = obs.configure(sink=sink, component="test")
        hub.count("c", 2)
        obs.finalize()
        assert sink.records[-1]["type"] == "metrics"
        assert sink.records[-1]["counters"]["c"] == 2
        assert sink.closed
        assert isinstance(obs.get(), NullTelemetry)

    def test_activate_worker_without_context_disables(self):
        obs.configure(component="coordinator")
        obs.activate_worker(None)
        assert isinstance(obs.get(), NullTelemetry)

    def test_activate_worker_adopts_the_trace(self):
        hub = obs.activate_worker(TraceContext("tr9", "a.1"),
                                  component="w")
        assert hub.trace_id == "tr9"
        assert hub.parent_span_id == "a.1"

    def test_attach_sink_survives_reactivation(self):
        sink = ListSink()
        obs.configure(sink=sink, component="worker-cli")
        obs.activate_worker(TraceContext("tr"))  # hub replaced, sink-less
        obs.attach_sink(sink)
        obs.get().event("after")
        assert [r.get("name") for r in sink.records] == ["after"]


class TestReportFormatting:
    def test_telemetry_report_sections(self):
        sink_events = [
            {"type": "span", "name": "search.solve", "duration": 0.01,
             "component": "w1", "trace": "t", "span": "1.1", "parent": None,
             "ts": 0.0},
            {"type": "span", "name": "search.solve", "duration": 0.03,
             "component": "w1", "trace": "t", "span": "1.2", "parent": None,
             "ts": 0.0},
            {"type": "metrics", "trace": "t", "component": "coordinator",
             "ts": 0.0, "counters": {"search.runs": 2,
                                     "broker.lease_renewals": 1},
             "gauges": {}, "histograms": {},
             "workers": {"w1": {"search.runs": 2, "executor.steps": 10}},
             "dropped_events": 0},
        ]
        text = format_telemetry_report(sink_events)
        assert "search.solve" in text
        assert "search.runs" in text
        assert "w1" in text

    def test_broker_status_frame(self):
        status = {"pending": 2, "claimed": 1, "results": 3, "total": 6,
                  "manifest": True, "uptime_seconds": 12.0,
                  "ops": {"claim": 4, "complete": 3},
                  "leases": [{"index": 0, "expires_in": 42.0}]}
        frame = format_broker_status(status)
        assert "3/6" in frame
        assert "task     0" in frame

    def test_broker_status_without_manifest(self):
        frame = format_broker_status({"pending": 0, "claimed": 0,
                                      "results": 0, "total": None,
                                      "manifest": False,
                                      "uptime_seconds": 0.0, "ops": {},
                                      "leases": []})
        assert "no manifest" in frame
        assert "0/?" in frame
