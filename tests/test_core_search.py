"""Tests for outcomes, queries and the bounded model checker."""

import pytest

from repro.constraints import Location
from repro.core import (BoundedModelChecker, OutcomeKind, SearchResultCache,
                        classify, crashed, detected, golden_run_output,
                        halted_normally, hung, incorrect_output,
                        output_contains_err, output_differs, output_equals,
                        printed_value, printed_value_other_than,
                        undetected_failure)
from repro.errors import Injection, prepare_injected_state
from repro.isa.values import ERR
from repro.machine import ExecutionConfig, Executor, MachineState, Status
from repro.programs import factorial_workload, loop_counter_injection_pc


def terminal_state(status, output=(), exception=None, detector_id=None):
    state = MachineState()
    for item in output:
        state.append_output(item)
    if status is Status.HALTED:
        state.halt()
    elif status is Status.EXCEPTION:
        state.throw(exception or "boom")
    elif status is Status.TIMEOUT:
        state.time_out("timed out")
    elif status is Status.DETECTED:
        state.detect(detector_id or 1, "detector fired")
    return state


class TestOutcomeClassification:
    def test_correct(self):
        state = terminal_state(Status.HALTED, output=[1])
        assert classify(state, golden_output=(1,)).kind is OutcomeKind.CORRECT

    def test_incorrect_output(self):
        state = terminal_state(Status.HALTED, output=[2])
        outcome = classify(state, golden_output=(1,))
        assert outcome.kind is OutcomeKind.INCORRECT_OUTPUT
        assert outcome.kind.is_failure()

    def test_err_output(self):
        state = terminal_state(Status.HALTED, output=[ERR])
        assert classify(state, golden_output=(1,)).kind is OutcomeKind.ERR_OUTPUT

    def test_crash_hang_detected(self):
        assert classify(terminal_state(Status.EXCEPTION)).kind is OutcomeKind.CRASH
        assert classify(terminal_state(Status.TIMEOUT)).kind is OutcomeKind.HANG
        outcome = classify(terminal_state(Status.DETECTED, detector_id=7))
        assert outcome.kind is OutcomeKind.DETECTED
        assert not outcome.kind.is_failure()

    def test_running_state_rejected(self):
        with pytest.raises(ValueError):
            classify(MachineState())

    def test_describe_mentions_output(self):
        outcome = classify(terminal_state(Status.HALTED, output=[5]), golden_output=(1,))
        assert "5" in outcome.describe()

    def test_golden_run_output(self):
        workload = factorial_workload()
        assert golden_run_output(workload.program, workload.default_input) == \
            ("Factorial = ", 120)


class TestQueries:
    def test_primitive_queries(self):
        halted = terminal_state(Status.HALTED, output=[3])
        crashed_state = terminal_state(Status.EXCEPTION)
        err_state = terminal_state(Status.HALTED, output=[ERR])

        assert halted_normally()(halted)
        assert not halted_normally()(crashed_state)
        assert crashed()(crashed_state)
        assert hung()(terminal_state(Status.TIMEOUT))
        assert detected()(terminal_state(Status.DETECTED))
        assert output_contains_err()(err_state)
        assert printed_value(3)(halted)
        assert output_equals([3])(halted)
        assert output_differs([4])(halted)

    def test_combinators(self):
        state = terminal_state(Status.HALTED, output=[2])
        query = halted_normally() & output_differs([1])
        assert query(state)
        assert not (~query)(state)
        assert (crashed() | halted_normally())(state)
        assert "and" in query.description

    def test_incorrect_output_query(self):
        query = incorrect_output([1])
        assert query(terminal_state(Status.HALTED, output=[2]))
        assert not query(terminal_state(Status.HALTED, output=[1]))
        assert not query(terminal_state(Status.EXCEPTION, output=[2]))

    def test_undetected_failure_query(self):
        query = undetected_failure([1])
        assert query(terminal_state(Status.EXCEPTION))
        assert query(terminal_state(Status.HALTED, output=[9]))
        assert not query(terminal_state(Status.DETECTED))
        assert not query(terminal_state(Status.HALTED, output=[1]))

    def test_printed_value_other_than(self):
        query = printed_value_other_than(1)
        assert query(terminal_state(Status.HALTED, output=[2]))
        assert query(terminal_state(Status.HALTED, output=[ERR]))
        assert not query(terminal_state(Status.HALTED, output=[1]))
        assert not query(terminal_state(Status.EXCEPTION, output=[2]))
        allowed = printed_value_other_than(1, allowed=(0,))
        assert not allowed(terminal_state(Status.HALTED, output=[0]))


class TestBoundedModelChecker:
    def make_factorial_search(self, **checker_kwargs):
        workload = factorial_workload()
        executor = Executor(workload.program, workload.detectors,
                            ExecutionConfig(max_steps=200))
        checker = BoundedModelChecker(executor, **checker_kwargs)
        subi_pc = loop_counter_injection_pc(workload)
        injection = Injection(breakpoint_pc=subi_pc + 1,
                              target=Location.register(3))
        injected = prepare_injected_state(workload.program, injection,
                                          workload.initial_state())
        return checker, injected

    def test_search_finds_err_outputs(self):
        checker, injected = self.make_factorial_search(max_solutions=50,
                                                       max_states=50_000)
        result = checker.search_single(injected, output_contains_err())
        assert result.found
        assert all(sol.state.output_contains_err() for sol in result.solutions)
        assert result.statistics.explored_states > 0
        assert "solutions" in result.describe()

    def test_exhaustive_search_completes(self):
        checker, injected = self.make_factorial_search(max_solutions=1000,
                                                       max_states=100_000)
        result = checker.search_single(injected, output_contains_err())
        assert result.completed
        assert result.stop_reason == "exhausted"

    def test_solution_cap_stops_early(self):
        checker, injected = self.make_factorial_search(max_solutions=1,
                                                       max_states=100_000)
        result = checker.search_single(injected, printed_value_other_than(120))
        assert len(result.solutions) == 1
        assert not result.completed
        assert result.stop_reason == "solution cap reached"

    def test_state_budget_stops_early(self):
        checker, injected = self.make_factorial_search(max_solutions=1000,
                                                       max_states=3)
        result = checker.search_single(injected, output_contains_err())
        assert not result.completed
        assert result.stop_reason == "state budget exhausted"

    def test_no_error_no_solutions_is_a_proof(self):
        workload = factorial_workload()
        executor = Executor(workload.program, workload.detectors,
                            ExecutionConfig(max_steps=200))
        checker = BoundedModelChecker(executor, max_solutions=10,
                                      max_states=10_000)
        result = checker.search_single(workload.initial_state(), crashed())
        assert result.completed and not result.found

    def test_factorial_outcomes_match_paper_fig2(self):
        """Injecting err into the loop counter after the k-th decrement must
        yield exactly the partial products the paper lists (Section 4.1)."""
        workload = factorial_workload()
        executor = Executor(workload.program, workload.detectors,
                            ExecutionConfig(max_steps=150))
        checker = BoundedModelChecker(executor, max_solutions=500,
                                      max_states=100_000)
        subi_pc = loop_counter_injection_pc(workload)
        printed = set()
        for occurrence in range(1, 6):
            injection = Injection(breakpoint_pc=subi_pc + 1,
                                  target=Location.register(3),
                                  occurrence=occurrence)
            injected = prepare_injected_state(workload.program, injection,
                                              workload.initial_state())
            if injected is None:
                continue
            result = checker.search_single(injected, halted_normally())
            for solution in result.solutions:
                values = solution.state.printed_integers()
                if values and not values[-1] is ERR:
                    printed.add(values[-1])
        assert {5, 20, 60, 120}.issubset(printed)

    def test_wall_clock_budget_uses_monotonic_clock(self, monkeypatch):
        """The search budget must be immune to wall-clock adjustments.

        A backwards `time.time` jump (NTP correction, DST, manual reset) must
        neither prematurely kill nor unbound a search, so the implementation
        has to read `time.monotonic`.  Sabotage `time.time` and check a
        tightly-budgeted search still terminates with the correct verdict.
        """
        import time as time_module

        def broken_time():
            raise AssertionError("search must not consult time.time()")

        monkeypatch.setattr(time_module, "time", broken_time)
        checker, injected = self.make_factorial_search(
            max_solutions=1000, max_states=100_000, wall_clock_seconds=60.0)
        result = checker.search_single(injected, output_contains_err())
        assert result.completed
        assert result.stop_reason == "exhausted"
        assert result.statistics.elapsed_seconds < 60.0

    def test_result_cache_hit_returns_identical_result(self):
        cache = SearchResultCache()
        checker, injected = self.make_factorial_search(
            max_solutions=50, max_states=50_000, result_cache=cache)
        first = checker.search_single(injected.copy(), output_contains_err())
        second = checker.search_single(injected.copy(), output_contains_err())
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.stores == 1
        assert second is first  # the memoised object itself
        assert len(cache) == 1

    def test_result_cache_distinguishes_queries_and_caps(self):
        cache = SearchResultCache()
        checker, injected = self.make_factorial_search(
            max_solutions=50, max_states=50_000, result_cache=cache)
        checker.search_single(injected.copy(), output_contains_err())
        checker.search_single(injected.copy(), halted_normally())
        checker.max_states = 40_000
        checker.search_single(injected.copy(), output_contains_err())
        assert cache.statistics.hits == 0
        assert len(cache) == 3

    def test_result_cache_distinguishes_executors(self):
        """Identical states under different executors must not cross-talk
        (the executor carries the program, detectors and config)."""
        cache = SearchResultCache()
        checker_a, injected_a = self.make_factorial_search(
            max_solutions=50, max_states=50_000, result_cache=cache)
        checker_b, injected_b = self.make_factorial_search(
            max_solutions=50, max_states=50_000, result_cache=cache)
        checker_a.search_single(injected_a.copy(), output_contains_err())
        checker_b.search_single(injected_b.copy(), output_contains_err())
        assert cache.statistics.hits == 0
        assert len(cache) == 2

    def test_result_cache_eviction_bound(self):
        cache = SearchResultCache(max_entries=1)
        checker, injected = self.make_factorial_search(
            max_solutions=50, max_states=50_000, result_cache=cache)
        checker.search_single(injected.copy(), output_contains_err())
        checker.search_single(injected.copy(), halted_normally())
        assert len(cache) == 1
        assert cache.statistics.evictions == 1

    def test_result_cache_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            SearchResultCache(max_entries=0)

    def test_result_cache_is_lru_not_fifo(self):
        """A hit must refresh recency: the hot key survives, the cold one
        is evicted (pure FIFO would evict the hot key instead)."""
        cache = SearchResultCache(max_entries=2)
        cache.store("hot", "result-hot")
        cache.store("cold", "result-cold")
        assert cache.get("hot") == "result-hot"   # refresh "hot"
        cache.store("new", "result-new")          # evicts "cold", not "hot"
        assert cache.get("hot") == "result-hot"
        assert cache.get("cold") is None
        assert cache.get("new") == "result-new"
        assert cache.statistics.evictions == 1

    def test_cache_statistics_describe_and_accumulate(self):
        from repro.core import CacheStatistics
        a = CacheStatistics(hits=3, misses=1, stores=1, evictions=0)
        b = CacheStatistics(hits=1, misses=1, stores=1, evictions=1)
        a.accumulate(b)
        assert (a.hits, a.misses, a.stores, a.evictions) == (4, 2, 2, 1)
        text = a.describe()
        assert "hits=4" in text and "hit_rate=66.7%" in text

    def test_concretize_option_gives_same_outcomes(self):
        workload = factorial_workload()
        executor = Executor(workload.program, workload.detectors,
                            ExecutionConfig(max_steps=150))
        subi_pc = loop_counter_injection_pc(workload)
        injection = Injection(breakpoint_pc=subi_pc + 1, target=Location.register(3))

        outputs = {}
        for concretize in (True, False):
            checker = BoundedModelChecker(executor, max_solutions=1000,
                                          max_states=100_000,
                                          concretize=concretize)
            injected = prepare_injected_state(workload.program, injection,
                                              workload.initial_state())
            result = checker.search_single(injected, halted_normally())
            outputs[concretize] = {sol.state.output_values()
                                   for sol in result.solutions}
        assert outputs[True] == outputs[False]


class TestSearchResultCacheLru:
    """Eviction-order and statistics-aggregation edge cases (PR 3)."""

    def test_eviction_follows_lru_order(self):
        cache = SearchResultCache(max_entries=3)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)
        assert cache.get("a") == 1          # refresh: order is now b, c, a
        cache.store("d", 4)                 # evicts b (least recently used)
        assert cache.get("b") is None
        cache.store("e", 5)                 # evicts c, the next-coldest
        assert cache.get("c") is None
        assert [cache.get(key) for key in ("a", "d", "e")] == [1, 4, 5]
        assert cache.statistics.evictions == 2

    def test_max_entries_one_keeps_only_the_latest(self):
        cache = SearchResultCache(max_entries=1)
        cache.store("first", 1)
        cache.store("first", 10)            # overwrite, not an eviction
        assert cache.statistics.evictions == 0
        assert cache.get("first") == 10
        cache.store("second", 2)            # capacity 1: first must go
        assert len(cache) == 1
        assert cache.get("first") is None
        assert cache.get("second") == 2
        assert cache.statistics.evictions == 1

    def test_accumulate_aggregates_across_worker_snapshots(self):
        from repro.core import CacheStatistics
        snapshots = [
            ("worker-0", CacheStatistics(hits=5, misses=3, stores=3,
                                         evictions=1)),
            ("worker-1", CacheStatistics(hits=0, misses=4, stores=4,
                                         evictions=0)),
            ("worker-2", CacheStatistics(hits=7, misses=1, stores=1,
                                         evictions=2)),
        ]
        total = CacheStatistics()
        for _, stats in snapshots:
            total.accumulate(stats)
        assert (total.hits, total.misses) == (12, 8)
        assert (total.stores, total.evictions) == (8, 3)
        assert total.lookups == 20
        assert total.hit_rate == pytest.approx(0.6)
