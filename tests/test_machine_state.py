"""Tests for the machine state abstraction."""

import pytest

from repro.constraints import ComparisonOp, Constraint, Location
from repro.isa.values import ERR
from repro.machine.state import MachineState, Status, initial_state, state_contains_err


class TestRegisters:
    def test_register_zero_is_hardwired(self):
        state = MachineState()
        state.write_register(0, 42)
        assert state.read_register(0) == 0

    def test_register_read_write(self):
        state = MachineState()
        state.write_register(5, -3)
        assert state.read_register(5) == -3

    def test_wrong_register_file_size_rejected(self):
        with pytest.raises(ValueError):
            MachineState(registers=[0] * 3)

    def test_writing_concrete_clears_constraints(self):
        state = MachineState()
        loc = Location.register(5)
        state.write_register(5, ERR)
        state.constraints = state.constraints.with_constraint(
            loc, Constraint(ComparisonOp.GT, 0))
        state.write_register(5, 7)
        assert loc not in state.constraints

    def test_writing_err_with_transfer_copies_constraints(self):
        state = MachineState()
        src, dst = Location.register(4), Location.register(5)
        state.write_register(4, ERR)
        state.constraints = state.constraints.with_constraint(
            src, Constraint(ComparisonOp.EQ, 9))
        state.write_register(5, ERR, transfer_from=src)
        assert state.constraints.constraints_for(dst).admits(9)
        assert not state.constraints.constraints_for(dst).admits(1)


class TestMemoryAndIO:
    def test_memory_definedness(self):
        state = MachineState(memory={10: 5})
        assert state.is_defined_address(10)
        assert not state.is_defined_address(11)
        state.write_memory(11, 6)
        assert state.read_memory(11) == 6

    def test_input_stream(self):
        state = MachineState(input_values=[1, 2])
        assert state.has_input()
        assert state.next_input() == 1
        assert state.next_input() == 2
        assert not state.has_input()

    def test_output_helpers(self):
        state = MachineState()
        state.append_output("banner")
        state.append_output(5)
        state.append_output(ERR)
        assert state.output_values() == ("banner", 5, ERR)
        assert state.printed_integers() == (5, ERR)
        assert state.output_contains_err()


class TestLifecycle:
    def test_status_transitions(self):
        state = MachineState()
        assert state.is_running
        state.halt()
        assert state.status is Status.HALTED
        assert not state.is_running

    def test_throw_and_detect(self):
        state = MachineState()
        state.throw("illegal address")
        assert state.crashed
        assert state.exception == "illegal address"

        other = MachineState()
        other.detect(3, "detector 3 failed")
        assert other.detected
        assert other.detector_id == 3

    def test_timeout(self):
        state = MachineState()
        state.time_out("timed out")
        assert state.hung


class TestCopyAndFingerprint:
    def test_copy_is_independent(self):
        state = MachineState(input_values=[1])
        state.write_register(4, 7)
        state.write_memory(100, 8)
        clone = state.copy()
        clone.write_register(4, 9)
        clone.write_memory(100, 10)
        clone.append_output(1)
        assert state.read_register(4) == 7
        assert state.read_memory(100) == 8
        assert state.output_values() == ()

    def test_fingerprint_equal_for_equal_states(self):
        a = MachineState(input_values=[3])
        b = MachineState(input_values=[3])
        assert a.fingerprint() == b.fingerprint()
        a.write_register(4, 1)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_includes_constraints(self):
        a = MachineState()
        b = MachineState()
        a.write_register(4, ERR)
        b.write_register(4, ERR)
        a.constraints = a.constraints.with_constraint(
            Location.register(4), Constraint(ComparisonOp.GT, 0))
        assert a.fingerprint() != b.fingerprint()


class TestStateContainsErr:
    def test_clean_state(self):
        assert not state_contains_err(MachineState())

    def test_err_in_register(self):
        state = MachineState()
        state.write_register(3, ERR)
        assert state_contains_err(state)

    def test_err_in_memory(self):
        state = MachineState()
        state.write_memory(1000, ERR)
        assert state_contains_err(state)

    def test_err_in_pc(self):
        state = MachineState()
        state.pc = ERR
        assert state_contains_err(state)


class TestDescribe:
    def test_describe_contains_key_facts(self):
        state = initial_state(input_values=[1], memory={5: 6})
        state.write_register(3, ERR)
        state.append_output(9)
        text = state.describe()
        assert "pc" in text and "err" in text and "output" in text
        assert repr(state).startswith("<MachineState")
