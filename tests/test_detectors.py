"""Tests for the detector model: expressions, specifications and execution."""

import pytest

from repro.constraints import ComparisonOp, Constraint, Location
from repro.detectors import (DetectorError, DetectorSet, execute_detector,
                             parse_detector, parse_expression,
                             read_location, single_location)
from repro.detectors.expression import (BinaryOp, Constant, ExpressionError,
                                        MemoryRef, RegisterRef)
from repro.isa.parser import assemble
from repro.isa.values import ERR
from repro.machine import (ExecutionConfig, Executor, MachineModelError, Status,
                           initial_state)


class TestExpressionParsing:
    def test_paper_example(self):
        expression = parse_expression("($3) + *(1000)")
        assert isinstance(expression, BinaryOp)
        assert expression.operator == "+"
        assert expression.left == RegisterRef(3)
        assert expression.right == MemoryRef(1000)

    def test_precedence(self):
        expression = parse_expression("$(6) + $(1) * (2)")
        assert expression.operator == "+"
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.operator == "*"

    def test_parentheses_override_precedence(self):
        expression = parse_expression("( $(6) + $(1) ) * (2)")
        assert expression.operator == "*"

    def test_constants_and_negative_numbers(self):
        assert parse_expression("(5)") == Constant(5)
        assert parse_expression("-3") == Constant(-3)

    def test_malformed_expressions_rejected(self):
        for text in ("", "$(3) +", "abc", "((1)", "$(3) $ 4"):
            with pytest.raises(ExpressionError):
                parse_expression(text)

    def test_locations_collected(self):
        expression = parse_expression("$(6) * $(1) + *(1000)")
        assert expression.locations() == {Location.register(6),
                                          Location.register(1),
                                          Location.memory(1000)}

    def test_single_location(self):
        assert single_location(parse_expression("$(4)")) == Location.register(4)
        assert single_location(parse_expression("*(8)")) == Location.memory(8)
        assert single_location(parse_expression("$(4) + (1)")) is None

    def test_render_round_trip(self):
        expression = parse_expression("$(6) * $(1) + (7)")
        assert parse_expression(expression.render()) == expression


class TestExpressionEvaluation:
    def make_state(self):
        state = initial_state(memory={1000: 20})
        state.write_register(3, 5)
        state.write_register(6, 7)
        return state

    def test_arithmetic_evaluation(self):
        from repro.detectors import MachineStateReader
        reader = MachineStateReader(self.make_state())
        assert parse_expression("$(3) + *(1000)").evaluate(reader) == 25
        assert parse_expression("$(6) * $(3) - (5)").evaluate(reader) == 30
        assert parse_expression("*(1000) / $(3)").evaluate(reader) == 4

    def test_err_propagates_through_expression(self):
        from repro.detectors import MachineStateReader
        state = self.make_state()
        state.write_register(3, ERR)
        reader = MachineStateReader(state)
        assert parse_expression("$(3) + (1)").evaluate(reader) is ERR
        assert parse_expression("$(3) * (0)").evaluate(reader) == 0

    def test_undefined_memory_reads_zero(self):
        from repro.detectors import MachineStateReader
        reader = MachineStateReader(initial_state())
        assert parse_expression("*(555) + (3)").evaluate(reader) == 3


class TestDetectorParsing:
    def test_paper_format(self):
        detector = parse_detector("det(4, $(5), ==, ($3) + *(1000))")
        assert detector.identifier == 4
        assert detector.target == Location.register(5)
        assert detector.op is ComparisonOp.EQ

    def test_memory_target(self):
        detector = parse_detector("det(1, *(200), >=, (0))")
        assert detector.target == Location.memory(200)

    def test_all_comparison_operators(self):
        for symbol in ("==", "=/=", "!=", ">", "<", ">=", "<="):
            parse_detector(f"det(1, $(1), {symbol}, (0))")

    def test_malformed_rejected(self):
        for text in ("det()", "det(1, $(1), ~~, (0))", "check(1)", "det(x, $(1), ==, (0))"):
            with pytest.raises(DetectorError):
                parse_detector(text)

    def test_render_round_trip(self):
        detector = parse_detector("det(2, $(2), >=, $(6) * $(1))")
        assert parse_detector(detector.render()) == detector


class TestDetectorSet:
    def test_parse_multiple_with_comments(self):
        detectors = DetectorSet.parse("""
            det(1, $(3), >, $(4))   -- loop bound check
            det(2, $(2), >=, $(6) * $(1))
        """)
        assert len(detectors) == 2
        assert detectors.identifiers() == (1, 2)
        assert 1 in detectors and 3 not in detectors

    def test_duplicate_identifier_rejected(self):
        with pytest.raises(DetectorError):
            DetectorSet.parse("det(1, $(1), ==, (0))\ndet(1, $(2), ==, (0))")

    def test_render(self):
        detectors = DetectorSet.parse("det(1, $(3), >, $(4))")
        assert "det(1" in detectors.render()


class TestDetectorExecution:
    def test_concrete_pass_and_fail(self):
        detector = parse_detector("det(1, $(5), ==, $(3) + *(1000))")
        state = initial_state(memory={1000: 20})
        state.write_register(3, 5)
        state.write_register(5, 25)
        outcomes = execute_detector(detector, state)
        assert [o.detected for o in outcomes] == [False]

        state.write_register(5, 26)
        outcomes = execute_detector(detector, state)
        assert [o.detected for o in outcomes] == [True]

    def test_symbolic_target_forks_and_constrains(self):
        detector = parse_detector("det(1, $(3), >, (4))")
        state = initial_state()
        state.write_register(3, ERR)
        outcomes = execute_detector(detector, state)
        assert {o.detected for o in outcomes} == {True, False}
        passing = next(o for o in outcomes if not o.detected)
        assert passing.constraints.constraints_for(Location.register(3)).admits(5)
        failing = next(o for o in outcomes if o.detected)
        assert failing.constraints.constraints_for(Location.register(3)).admits(4)

    def test_detector_respects_existing_constraints(self):
        detector = parse_detector("det(1, $(3), >, (4))")
        state = initial_state()
        state.write_register(3, ERR)
        state.constraints = state.constraints.with_constraint(
            Location.register(3), Constraint(ComparisonOp.GT, 100))
        outcomes = execute_detector(detector, state)
        assert [o.detected for o in outcomes] == [False]

    def test_read_location_helpers(self):
        state = initial_state(memory={7: 9})
        state.write_register(2, 3)
        assert read_location(state, Location.register(2)) == 3
        assert read_location(state, Location.memory(7)) == 9
        assert read_location(state, Location.memory(8)) == 0


class TestCheckInstruction:
    def test_check_passes_and_program_continues(self):
        program = assemble("li $1 5\ncheck 1\nprints \"ok\"\nhalt\n")
        detectors = DetectorSet.parse("det(1, $(1), ==, (5))")
        executor = Executor(program, detectors, ExecutionConfig(max_steps=50))
        finals = executor.run(initial_state())
        assert finals[0].status is Status.HALTED
        assert finals[0].output_values() == ("ok",)

    def test_check_fires_and_stops_program(self):
        program = assemble("li $1 4\ncheck 1\nprints \"ok\"\nhalt\n")
        detectors = DetectorSet.parse("det(1, $(1), ==, (5))")
        executor = Executor(program, detectors, ExecutionConfig(max_steps=50))
        finals = executor.run(initial_state())
        assert finals[0].status is Status.DETECTED
        assert finals[0].detector_id == 1
        assert finals[0].output_values() == ()

    def test_check_with_unknown_detector_is_a_model_error(self):
        program = assemble("check 9\nhalt\n")
        executor = Executor(program, DetectorSet(), ExecutionConfig(max_steps=50))
        with pytest.raises(MachineModelError):
            executor.run(initial_state())

    def test_symbolic_check_forks_into_detected_and_missed(self):
        program = assemble("check 1\nprint $1\nhalt\n")
        detectors = DetectorSet.parse("det(1, $(1), >, (0))")
        executor = Executor(program, detectors, ExecutionConfig(max_steps=50))
        state = initial_state()
        state.write_register(1, ERR)
        finals = executor.run(state)
        statuses = {s.status for s in finals}
        assert statuses == {Status.DETECTED, Status.HALTED}
