"""Analysis-layer tests plus end-to-end integration tests on tcas and replace.

The integration tests reproduce (in miniature) the paper's Section 6
experiments: the tcas catastrophic advisory flip found by symbolic injection
into the return-address register, its absence from a comparable concrete
campaign, and an incorrect-output scenario for replace.
"""

import pytest

from repro.analysis import (campaign_outcome_summary, compare_symbolic_concrete,
                            format_task_report, format_witnesses, model_inventory,
                            solutions_with_final_value)
from repro.concrete import ConcreteCampaign, printed_value_labeler
from repro.constraints import Location
from repro.core import (SymbolicCampaign, TaskRunner, decompose_by_code_section,
                        incorrect_output, output_contains_err,
                        printed_value_other_than, witnesses_from_campaign)
from repro.errors import Injection, RegisterFileError
from repro.machine import ExecutionConfig
from repro.programs import factorial_workload, replace_workload, tcas_workload


def tcas_symbolic_campaign(workload, **overrides):
    defaults = dict(
        error_class=RegisterFileError(),
        execution_config=ExecutionConfig(max_steps=3_000,
                                         control_fork_domain="labels",
                                         max_control_forks=2_048,
                                         max_memory_forks=4),
        max_solutions_per_injection=30,
        max_states_per_injection=20_000,
    )
    defaults.update(overrides)
    return SymbolicCampaign(workload.program,
                            input_values=workload.default_input,
                            memory=workload.data_segment,
                            detectors=workload.detectors,
                            **defaults)


class TestAnalysisHelpers:
    def test_outcome_summary_and_witness_formatting(self):
        workload = factorial_workload()
        campaign = SymbolicCampaign(
            workload.program, input_values=workload.default_input,
            execution_config=ExecutionConfig(max_steps=200),
            max_solutions_per_injection=10, max_states_per_injection=10_000)
        subi_pc = next(i for i, ins in enumerate(workload.program.code)
                       if ins.opcode == "subi")
        injections = [Injection(breakpoint_pc=subi_pc + 1,
                                target=Location.register(3))]
        result = campaign.run(output_contains_err(), injections=injections)
        summary = campaign_outcome_summary(result, workload.golden_output())
        assert summary["err-output"] >= 1
        witnesses = witnesses_from_campaign(workload.program, result,
                                            workload.golden_output())
        text = format_witnesses(witnesses, limit=1)
        assert "injection" in text
        assert format_witnesses([]) == "(no witnesses)"

    def test_model_inventory_reports_counts(self):
        inventory = model_inventory()
        assert inventory["python_modules"] > 30
        assert inventory["instruction_opcodes"] > 30
        assert inventory["nondeterministic_rules"] >= 5


@pytest.fixture(scope="module")
def tcas_sec62_results():
    """Run the miniature Section 6.2 experiment once for several tests."""
    workload = tcas_workload()
    campaign = tcas_symbolic_campaign(workload)
    start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
    injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                  if i.target == Location.register(31)]
    query = printed_value_other_than(1)
    result = campaign.run(query, injections=injections)
    return workload, campaign, result


class TestTcasCatastrophicScenario:
    def test_symbolic_injection_finds_wrong_downward_advisory(self, tcas_sec62_results):
        """Section 6.2: a transient error in the return-address register $31
        inside Non_Crossing_Biased_Climb makes tcas print 2 instead of 1."""
        workload, _campaign, result = tcas_sec62_results
        catastrophic = solutions_with_final_value(result, 2)
        assert catastrophic, "the output-2 scenario must be found"
        # every witness corrupts the return-address register
        assert all(injection.target == Location.register(31)
                   for injection, _solution in catastrophic)

    def test_catastrophic_states_halt_normally(self, tcas_sec62_results):
        _workload, _campaign, result = tcas_sec62_results
        for _injection, solution in solutions_with_final_value(result, 2):
            assert solution.state.status.value == "halted"
            assert solution.state.printed_integers()[-1] == 2

    def test_concrete_campaign_of_comparable_effort_misses_it(self, tcas_sec62_results):
        """Section 6.3 / Table 2: the concrete campaign over the same code
        region (extreme + random values) never produces the 2 advisory."""
        workload, _campaign, symbolic_result = tcas_sec62_results
        start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
        concrete = ConcreteCampaign(
            workload.program,
            input_values=workload.default_input,
            memory=workload.data_segment,
            labeler=printed_value_labeler(expected_values=(0, 1, 2)),
            max_steps=5_000)
        concrete_result = concrete.run(
            injections=concrete.enumerate_injections(pcs=range(start, end)))
        comparison = compare_symbolic_concrete(symbolic_result, concrete_result,
                                               target_value=2)
        assert comparison.reproduces_paper_shape
        assert "symbolic campaign" in comparison.describe()

    def test_task_decomposition_reports_completion(self, tcas_sec62_results):
        workload, campaign, _result = tcas_sec62_results
        start, end = workload.compiled.function_region("Non_Crossing_Biased_Climb")
        injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                      if i.target == Location.register(31)]
        tasks = decompose_by_code_section(injections, num_tasks=3)
        runner = TaskRunner(campaign, max_errors_per_task=10)
        report = runner.run(tasks, printed_value_other_than(1))
        assert report.total_tasks == 3
        assert report.completed_tasks >= 1
        assert report.total_errors_found > 0
        assert "tasks completed" in format_task_report(report, title="tcas")


class TestReplaceIncorrectOutput:
    def test_symbolic_error_in_dodash_parameter_breaks_substitution(self):
        """Section 6.4: corrupting a register used by dodash while the pattern
        is being constructed leads to an incorrect program output (for
        example the original line is emitted without the substitution)."""
        workload = replace_workload(pattern="[0-9]", substitution="#",
                                    lines=("a1b",))
        golden = workload.golden_output()
        compiled = workload.compiled
        start, end = compiled.function_region("dodash")
        campaign = SymbolicCampaign(
            workload.program,
            input_values=workload.default_input,
            memory=workload.data_segment,
            error_class=RegisterFileError(),
            execution_config=ExecutionConfig(max_steps=30_000,
                                             control_fork_domain="labels",
                                             max_control_forks=64,
                                             max_memory_forks=2),
            max_solutions_per_injection=2,
            max_states_per_injection=40_000)
        # Sweep the scratch registers used while dodash builds the character
        # class (these hold the delimiter / class characters being compared).
        injections = [i for i in campaign.enumerate_injections(pcs=range(start, end))
                      if i.target.index in (8, 9, 10)][:40]
        result = campaign.run(incorrect_output(golden), injections=injections)
        assert result.injections_with_solutions > 0
        # every solution halted normally yet produced a different output
        assert result.solutions()
        for _injection, solution in result.solutions():
            assert solution.state.status.value == "halted"
            assert solution.state.output_values() != golden
