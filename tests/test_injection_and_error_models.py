"""Tests for the error-injection sub-model and the Table 1 error classes."""

import pytest

from repro.constraints import Location
from repro.errors import (BusError, ControlFlowError, DecodeError, FetchError,
                          FunctionalUnitError, Injection, MemoryError,
                          RegisterFileError, STANDARD_ERROR_CLASSES,
                          apply_corruption, error_class, prepare_injected_state,
                          register_injection_points, registers_used_at)
from repro.isa.parser import assemble
from repro.isa.values import ERR, is_err
from repro.machine import initial_state
from repro.programs import factorial_workload, call_max_workload


PROGRAM = assemble("""
        read $1
        li $2 500
        sti $1 $2 0
        ldi $3 $2 0
        add $4 $3 $1
        beq $4 0 skip
        print $4
skip:   halt
""")


class TestApplyCorruption:
    def test_register_corruption(self):
        state = initial_state()
        apply_corruption(state, Location.register(5), ERR)
        assert is_err(state.read_register(5))

    def test_zero_register_cannot_be_corrupted(self):
        state = initial_state()
        apply_corruption(state, Location.register(0), ERR)
        assert state.read_register(0) == 0

    def test_memory_corruption(self):
        state = initial_state(memory={100: 3})
        apply_corruption(state, Location.memory(100), ERR)
        assert is_err(state.read_memory(100))

    def test_pc_corruption(self):
        state = initial_state()
        apply_corruption(state, Location.pc(), ERR)
        assert is_err(state.pc)

    def test_concrete_value_corruption(self):
        state = initial_state()
        apply_corruption(state, Location.register(5), 12345)
        assert state.read_register(5) == 12345


class TestRegistersUsedAt:
    def test_reads_writes_used(self):
        # add $4 $3 $1 at address 4
        assert registers_used_at(PROGRAM, 4, "reads") == (3, 1)
        assert registers_used_at(PROGRAM, 4, "writes") == (4,)
        assert registers_used_at(PROGRAM, 4, "used") == (3, 1, 4)

    def test_zero_register_excluded(self):
        # beq $4 0 skip reads $4 only; add uses no $0 here, but check halt
        assert registers_used_at(PROGRAM, 7, "used") == ()

    def test_all_policy_covers_every_register(self):
        assert len(registers_used_at(PROGRAM, 0, "all")) == 31  # excludes $0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            registers_used_at(PROGRAM, 0, "everything")

    def test_out_of_range_pc(self):
        assert registers_used_at(PROGRAM, 999) == ()


# Legacy-path regression tests: the public helper now warns (steering
# callers to repro.faults) but must keep planning the identical sweep.
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestInjectionPoints:
    def test_register_injection_points_follow_usage(self):
        injections = register_injection_points(PROGRAM)
        by_pc = {}
        for injection in injections:
            by_pc.setdefault(injection.breakpoint_pc, []).append(injection.target.index)
        assert by_pc[4] == [3, 1, 4]
        assert 7 not in by_pc          # halt uses no registers

    def test_restricted_sweep(self):
        injections = register_injection_points(PROGRAM, pcs=[4])
        assert {i.breakpoint_pc for i in injections} == {4}

    def test_injection_label_is_informative(self):
        injection = Injection(breakpoint_pc=4, target=Location.register(3),
                              description="example")
        assert "pc=4" in injection.label() and "example" in injection.label()


class TestPrepareInjectedState:
    def test_injects_at_breakpoint(self):
        workload = factorial_workload()
        injection = Injection(breakpoint_pc=4, target=Location.register(3))
        state = prepare_injected_state(workload.program, injection,
                                       workload.initial_state())
        assert state is not None
        assert state.pc == 4
        assert is_err(state.read_register(3))

    def test_unreachable_breakpoint_returns_none(self):
        program = assemble("halt\nnop\n")
        injection = Injection(breakpoint_pc=1, target=Location.register(1))
        assert prepare_injected_state(program, injection, initial_state()) is None

    def test_occurrence_selects_later_iteration(self):
        workload = factorial_workload()
        subi_pc = next(i for i, ins in enumerate(workload.program.code)
                       if ins.opcode == "subi")
        first = prepare_injected_state(
            workload.program,
            Injection(breakpoint_pc=subi_pc, target=Location.register(3)),
            workload.initial_state())
        third = prepare_injected_state(
            workload.program,
            Injection(breakpoint_pc=subi_pc, target=Location.register(3), occurrence=3),
            workload.initial_state())
        assert first.steps < third.steps


class TestErrorClasses:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_register_class_matches_helper(self):
        injections = RegisterFileError().enumerate(PROGRAM)
        helper = register_injection_points(PROGRAM)
        assert [(i.breakpoint_pc, i.target) for i in injections] == \
            [(i.breakpoint_pc, i.target) for i in helper]

    def test_bus_error_targets_sources_only(self):
        injections = BusError().enumerate(PROGRAM, pcs=[4])
        assert {i.target.index for i in injections} == {3, 1}

    def test_functional_unit_targets_destination_after_instruction(self):
        injections = FunctionalUnitError().enumerate(PROGRAM, pcs=[4])
        assert all(i.breakpoint_pc == 5 for i in injections)
        assert {i.target.index for i in injections} == {4}

    def test_decode_error_covers_instructions_without_destinations(self):
        injections = DecodeError().enumerate(PROGRAM, pcs=[2])  # sti has no dest
        assert {i.target.index for i in injections} == {1, 2}

    def test_fetch_error_targets_pc_everywhere(self):
        injections = FetchError().enumerate(PROGRAM)
        assert len(injections) == len(PROGRAM)
        assert all(i.target.kind == Location.PC for i in injections)

    def test_control_flow_error_only_at_transfers(self):
        injections = ControlFlowError().enumerate(PROGRAM)
        assert {i.breakpoint_pc for i in injections} == {5}

    def test_memory_error_follows_loads(self):
        injections = MemoryError().enumerate(PROGRAM)
        assert len(injections) == 1
        assert injections[0].breakpoint_pc == 4  # right after the ldi

    def test_memory_error_with_explicit_addresses(self):
        injections = MemoryError(addresses=[500]).enumerate(PROGRAM, pcs=[3])
        assert injections[0].target == Location.memory(500)

    def test_registry(self):
        assert set(STANDARD_ERROR_CLASSES) == {
            "register", "memory", "bus", "functional-unit", "decode", "fetch",
            "control-flow"}
        assert isinstance(error_class("register"), RegisterFileError)
        with pytest.raises(ValueError):
            error_class("cosmic-ray")

    def test_classes_enumerate_against_real_workload(self):
        workload = call_max_workload()
        for name, cls in STANDARD_ERROR_CLASSES.items():
            injections = cls.enumerate(workload.program)
            assert isinstance(injections, list)
            for injection in injections:
                assert 0 <= injection.breakpoint_pc <= len(workload.program)


class TestInjectorDeprecation:
    def test_register_injection_points_warns(self):
        with pytest.deprecated_call():
            register_injection_points(PROGRAM)

    def test_deprecated_helper_matches_fault_registry_plan(self):
        from repro.faults import FAULT_MODELS
        with pytest.deprecated_call():
            legacy = register_injection_points(PROGRAM)
        planned = FAULT_MODELS["register"].enumerate(PROGRAM)
        assert ([(i.breakpoint_pc, i.target) for i in legacy]
                == [(i.breakpoint_pc, i.target) for i in planned])
