"""Tests for the distributed campaign backend (repro.distributed)."""

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.core import SerialExecutionStrategy, SymbolicCampaign
from repro.distributed import (CampaignManifest, CheckpointingStrategy,
                               CheckpointJournal, DistributedConfig,
                               DistributedExecutionStrategy, FilesystemBroker,
                               RecordJournal, WorkerConfig, injection_key,
                               run_campaign_distributed, run_worker)
from repro.distributed.broker import enqueue_campaign
from repro.machine import ExecutionConfig
from repro.parallel import CampaignSpec, QuerySpec
from repro.programs import factorial_workload

WORKERS = 2


def make_campaign(workload, **kwargs):
    defaults = dict(max_solutions_per_injection=10,
                    max_states_per_injection=10_000)
    defaults.update(kwargs)
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=workload.recommended_max_steps),
        **defaults)


def result_keys(results):
    """The order-sensitive, timing-free projection used for equivalence."""
    return [(r.injection.label(), r.activated, r.completed,
             [s.state.output_values() for s in r.solutions],
             [s.state.status.value for s in r.solutions])
            for r in results]


def factorial_fixture(max_injections=8):
    workload = factorial_workload()
    campaign = make_campaign(workload)
    injections = campaign.enumerate_injections()[:max_injections]
    query_spec = QuerySpec.predefined("err-output",
                                      golden_output=workload.golden_output())
    return campaign, injections, query_spec


class TestRecordJournal:
    def test_roundtrip(self, tmp_path):
        journal = RecordJournal(str(tmp_path / "j.pkl"))
        with journal:
            journal.append({"a": 1})
            journal.append(("b", [2, 3]))
        assert journal.load() == [{"a": 1}, ("b", [2, 3])]

    def test_missing_file_loads_empty(self, tmp_path):
        journal = RecordJournal(str(tmp_path / "absent.pkl"))
        assert not journal.exists()
        assert journal.load() == []

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.pkl")
        journal = RecordJournal(path)
        with journal:
            journal.append("first")
            journal.append("second")
        # Simulate a kill mid-append: chop the last record in half.
        intact_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(pickle.dumps("third")[:-3])
        assert os.path.getsize(path) > intact_size
        assert RecordJournal(path).load() == ["first", "second"]

    def test_garbage_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.pkl")
        with RecordJournal(path) as journal:
            journal.append("only")
        with open(path, "ab") as handle:
            handle.write(b"\x00garbage-not-pickle")
        assert RecordJournal(path).load() == ["only"]

    def test_append_after_corrupt_tail_truncates_first(self, tmp_path):
        """Records appended by a resumed run must land before (not after) a
        kill's garbage tail, or a second resume would never see them."""
        path = str(tmp_path / "j.pkl")
        with RecordJournal(path) as journal:
            journal.append("first")
        with open(path, "ab") as handle:
            handle.write(pickle.dumps("half-written")[:-4])
        with RecordJournal(path) as journal:
            journal.append("after-resume")
        assert RecordJournal(path).load() == ["first", "after-resume"]

    def test_delete(self, tmp_path):
        journal = RecordJournal(str(tmp_path / "j.pkl"))
        journal.append(1)
        journal.delete()
        assert not journal.exists()
        journal.delete()  # idempotent


class TestFilesystemBroker:
    def make_broker(self, tmp_path, lease_seconds=60.0):
        return FilesystemBroker(str(tmp_path / "queue"),
                                lease_seconds=lease_seconds)

    def test_rejects_bad_lease(self, tmp_path):
        with pytest.raises(ValueError, match="lease_seconds"):
            self.make_broker(tmp_path, lease_seconds=0)

    def test_claim_is_exclusive_and_ordered(self, tmp_path):
        broker = self.make_broker(tmp_path)
        broker.put_task(1, "payload-1")
        broker.put_task(0, "payload-0")
        first = broker.claim_next()
        second = broker.claim_next()
        assert (first.index, first.payload) == (0, "payload-0")
        assert (second.index, second.payload) == (1, "payload-1")
        assert broker.claim_next() is None
        assert broker.pending_count() == 0
        assert broker.claimed_count() == 2

    def test_complete_publishes_result_and_releases_claim(self, tmp_path):
        broker = self.make_broker(tmp_path)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        broker.complete(claim, {"answer": 42})
        assert broker.claimed_count() == 0
        assert broker.fetch_new_results(seen=set()) == [(0, {"answer": 42})]
        assert broker.fetch_new_results(seen={0}) == []

    def test_expired_lease_is_requeued_and_reclaimable(self, tmp_path):
        broker = self.make_broker(tmp_path, lease_seconds=0.05)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        assert broker.requeue_expired() == []  # lease still fresh
        time.sleep(0.1)
        assert broker.requeue_expired() == [0]
        reclaimed = broker.claim_next()
        assert reclaimed.index == 0
        # Completing through the *stale* claim is still safe (same payload).
        broker.complete(claim, "result")
        broker.complete(reclaimed, "result")
        assert broker.results_count() == 1

    def test_renew_lease_prevents_requeue(self, tmp_path):
        broker = self.make_broker(tmp_path, lease_seconds=0.2)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        for _ in range(3):
            time.sleep(0.1)
            broker.renew_lease(claim)
        assert broker.requeue_expired() == []

    def test_claim_skips_tasks_that_already_have_results(self, tmp_path):
        broker = self.make_broker(tmp_path)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        broker.complete(claim, "result")
        broker.put_task(0, "work")  # requeue race leftover
        assert broker.claim_next() is None
        assert broker.pending_count() == 0  # the stale entry was dropped

    def test_queue_close_and_drain_accounting(self, tmp_path):
        broker = self.make_broker(tmp_path)
        assert broker.total_tasks() is None
        broker.put_task(0, "a")
        broker.close_queue(1)
        assert broker.total_tasks() == 1
        assert not broker.is_drained()
        claim = broker.claim_next()
        broker.complete(claim, "r")
        assert broker.is_drained()

    def test_manifest_wait_times_out(self, tmp_path):
        broker = self.make_broker(tmp_path)
        with pytest.raises(TimeoutError):
            broker.load_manifest(timeout=0.1, poll_interval=0.02)

    def test_lease_clock_starts_at_claim_not_enqueue(self, tmp_path):
        """A task that queued longer than the lease must not be considered
        expired the instant it is claimed (the rename preserves mtime)."""
        broker = self.make_broker(tmp_path, lease_seconds=0.05)
        broker.put_task(0, "work")
        time.sleep(0.1)  # the task outlives the lease while still pending
        claim = broker.claim_next()
        assert claim is not None
        assert broker.requeue_expired() == []  # lease is fresh, not stale

    def test_claim_ignores_results_the_validator_rejects(self, tmp_path):
        """A stale result from a previous campaign must not swallow a live
        task when a validator (the worker's campaign-id check) rejects it."""
        broker = self.make_broker(tmp_path)
        broker.put_task(0, "work")
        claim = broker.claim_next()
        broker.complete(claim, ("old-campaign", 0, [], None))
        broker.put_task(0, "work")  # the new campaign's task, same index
        assert broker.claim_next(
            result_valid=lambda payload: payload[0] == "new-campaign"
        ) is not None
        broker.reset()
        assert broker.pending_count() == broker.results_count() == 0

    def test_reset_purges_a_previous_campaign(self, tmp_path):
        broker = self.make_broker(tmp_path)
        broker.put_task(0, "stale-task")
        claim = broker.claim_next()
        broker.put_task(1, "stale-pending")
        broker.complete(claim, "stale-result")
        broker.close_queue(2)
        broker.reset()
        assert broker.pending_count() == 0
        assert broker.claimed_count() == 0
        assert broker.results_count() == 0
        assert broker.total_tasks() is None


class TestWorkerLoop:
    def test_worker_drains_queue_to_serial_equivalent_results(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture()
        queue_dir = str(tmp_path / "queue")
        broker = FilesystemBroker(queue_dir)
        chunks = [tuple(injections[i:i + 2])
                  for i in range(0, len(injections), 2)]
        enqueue_campaign(
            broker,
            CampaignManifest(
                campaign_spec=CampaignSpec.from_campaign(campaign),
                query_spec=query_spec),
            list(enumerate(chunks)))
        executed = run_worker(WorkerConfig(queue_dir=queue_dir,
                                           poll_interval=0.01,
                                           max_idle_seconds=5.0))
        assert executed == len(chunks)
        assert broker.is_drained()
        payloads = dict(broker.fetch_new_results(seen=set()))
        # Result payloads are (campaign_id, index, results, cache snapshot).
        distributed = [result for index in sorted(payloads)
                       for result in payloads[index][2]]
        serial = SerialExecutionStrategy().run(campaign, injections,
                                               query_spec.build())
        assert result_keys(distributed) == result_keys(serial)


class TestWorkerManifestSwitch:
    def test_surviving_worker_picks_up_a_new_campaign(self, tmp_path):
        """A worker that outlives its campaign (killed coordinator) must
        rebuild its context when a new campaign takes over the queue,
        instead of executing the new tasks under the stale manifest."""
        import threading

        campaign, injections, query_spec = factorial_fixture(max_injections=6)
        queue_dir = str(tmp_path / "queue")
        broker = FilesystemBroker(queue_dir)
        spec = CampaignSpec.from_campaign(campaign)
        # Campaign A: published but never closed (its coordinator "died").
        broker.publish_manifest(CampaignManifest(
            campaign_spec=spec, query_spec=query_spec, campaign_id="A"))
        broker.put_task(0, tuple(injections[:2]))

        worker = threading.Thread(
            target=run_worker,
            args=(WorkerConfig(queue_dir=queue_dir, poll_interval=0.01,
                               max_idle_seconds=30.0),),
            daemon=True)
        worker.start()
        deadline = time.monotonic() + 60
        while broker.results_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert broker.results_count() == 1

        # Campaign B takes over the same queue directory.
        broker.reset()
        broker.publish_manifest(CampaignManifest(
            campaign_spec=spec, query_spec=query_spec, campaign_id="B"))
        broker.put_task(0, tuple(injections[2:4]))
        broker.close_queue(1)
        worker.join(timeout=60)
        assert not worker.is_alive()
        [(_, payload)] = broker.fetch_new_results(seen=set())
        campaign_id, _, results, _ = payload
        assert campaign_id == "B"
        serial = SerialExecutionStrategy().run(campaign, injections[2:4],
                                               query_spec.build())
        assert result_keys(results) == result_keys(serial)


class TestDistributedStrategy:
    def test_invalid_configs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            DistributedConfig(workers=-1)
        with pytest.raises(ValueError, match="chunk_size"):
            DistributedConfig(chunk_size=0)
        with pytest.raises(ValueError, match="queue_dir"):
            DistributedConfig(workers=0)  # external mode needs a queue
        with pytest.raises(ValueError, match="lease_seconds"):
            DistributedConfig(lease_seconds=0)

    def test_empty_sweep(self):
        campaign, _, query_spec = factorial_fixture()
        strategy = DistributedExecutionStrategy(query_spec)
        results = strategy.run(campaign, [], query_spec.build())
        assert results == []
        assert strategy.cache_statistics is not None

    def test_mismatched_query_is_rejected(self):
        campaign, injections, query_spec = factorial_fixture()
        strategy = DistributedExecutionStrategy(query_spec)
        other = QuerySpec.predefined("crash").build()
        with pytest.raises(ValueError, match="predicate"):
            strategy.run(campaign, injections, other)

    def test_distributed_matches_serial(self):
        campaign, injections, query_spec = factorial_fixture()
        query = query_spec.build()
        serial = campaign.run(query, injections=injections)
        distributed = run_campaign_distributed(
            campaign, query_spec, injections=injections,
            config=DistributedConfig(workers=WORKERS, chunk_size=2,
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0))
        assert result_keys(distributed.results) == result_keys(serial.results)
        assert (distributed.injections_run, distributed.total_solutions) \
            == (serial.injections_run, serial.total_solutions)

    def test_snapshot_merge_keeps_the_latest_per_worker(self):
        """Index-ordered result fetches can deliver a worker's newest
        cumulative snapshot before an older one; the merge must keep the
        largest counters, not the last written."""
        from repro.core import CacheStatistics
        from repro.distributed.strategy import note_worker_snapshot
        stats = {}
        newest = CacheStatistics(hits=5, misses=7, stores=7)
        older = CacheStatistics(hits=2, misses=3, stores=3)
        note_worker_snapshot(stats, "w0", newest)  # requeued chunk 0, newest
        note_worker_snapshot(stats, "w0", older)   # higher index, older
        assert stats["w0"] is newest
        note_worker_snapshot(stats, "w1", older)
        assert stats["w1"] is older

    def test_progress_and_cache_statistics_reported(self):
        campaign, injections, query_spec = factorial_fixture(max_injections=6)
        seen = []

        def progress(done, total, last):
            seen.append((done, total))

        strategy = DistributedExecutionStrategy(
            query_spec, DistributedConfig(workers=WORKERS, chunk_size=2,
                                          poll_interval=0.01,
                                          wall_clock_timeout=300.0))
        results = campaign.run(query_spec.build(), injections=injections,
                               progress=progress, strategy=strategy)
        assert results.injections_run == len(injections)
        assert seen and seen[-1][0] == len(injections)
        assert all(total == len(injections) for _, total in seen)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)
        stats = strategy.cache_statistics
        assert stats is not None and stats.lookups == len(injections)

    def test_reusing_a_queue_directory_does_not_leak_stale_results(
            self, tmp_path):
        """Back-to-back campaigns over the same --queue DIR must each get
        their own results (regression: stale result files used to be merged
        into the next campaign's CampaignResult)."""
        queue_dir = str(tmp_path / "queue")
        campaign, injections, query_spec = factorial_fixture(max_injections=6)
        config = DistributedConfig(workers=1, chunk_size=2, queue_dir=queue_dir,
                                   poll_interval=0.01,
                                   wall_clock_timeout=300.0)
        first = run_campaign_distributed(campaign, query_spec,
                                         injections=injections, config=config)
        # Second campaign: different sweep over the same queue directory.
        second = run_campaign_distributed(campaign, query_spec,
                                          injections=injections[2:],
                                          config=config)
        serial = campaign.run(query_spec.build(), injections=injections[2:])
        assert result_keys(second.results) == result_keys(serial.results)
        assert first.injections_run == 6 and second.injections_run == 4

    def test_external_worker_attaches_to_explicit_queue(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=4)
        queue_dir = str(tmp_path / "queue")
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--queue", queue_dir,
             "--poll-interval", "0.02", "--max-idle", "60",
             "--manifest-timeout", "120"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            distributed = run_campaign_distributed(
                campaign, query_spec, injections=injections,
                config=DistributedConfig(workers=0, queue_dir=queue_dir,
                                         chunk_size=2, poll_interval=0.02,
                                         wall_clock_timeout=300.0))
            serial = campaign.run(query_spec.build(), injections=injections)
            assert result_keys(distributed.results) \
                == result_keys(serial.results)
            output, _ = worker.communicate(timeout=120)
            assert b"worker drained" in output
            assert worker.returncode == 0
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()


class TestCheckpointResume:
    def test_fresh_run_journals_every_result(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=6)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")
        strategy = CheckpointingStrategy(SerialExecutionStrategy(),
                                         journal_path)
        results = strategy.run(campaign, injections, query)
        assert result_keys(results) == result_keys(
            SerialExecutionStrategy().run(campaign, injections, query))
        completed = CheckpointJournal(journal_path).load_completed()
        assert set(completed) == {injection_key(i) for i in injections}

    def test_resume_skips_completed_and_merges_in_order(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=8)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")
        # A partial sweep (as if the campaign was killed after 3 injections).
        CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
            campaign, injections[:3], query)
        executed = []
        inner = SerialExecutionStrategy()
        inner.result_sink = lambda injection, result: \
            executed.append(injection_key(injection))
        resumed = CheckpointingStrategy(inner, journal_path, resume=True)
        results = resumed.run(campaign, injections, query)
        assert resumed.skipped == 3
        assert executed == [injection_key(i) for i in injections[3:]]
        assert result_keys(results) == result_keys(
            SerialExecutionStrategy().run(campaign, injections, query))

    def test_kill_mid_sweep_then_resume_is_identical(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=8)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")

        class Killed(RuntimeError):
            pass

        class ExplodingStrategy(SerialExecutionStrategy):
            """Dies after 3 results, like a mid-sweep SIGKILL would."""

            def run(self, campaign, injections, query, progress=None):
                results = []
                for injection in injections:
                    if len(results) >= 3:
                        raise Killed
                    result = campaign.run_injection(injection, query)
                    results.append(result)
                    self.emit_result(injection, result)
                return results

        with pytest.raises(Killed):
            CheckpointingStrategy(ExplodingStrategy(), journal_path).run(
                campaign, injections, query)
        assert len(CheckpointJournal(journal_path).load_completed()) == 3
        results = CheckpointingStrategy(
            SerialExecutionStrategy(), journal_path, resume=True).run(
                campaign, injections, query)
        assert result_keys(results) == result_keys(
            SerialExecutionStrategy().run(campaign, injections, query))

    def test_resume_rejects_foreign_journal(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=3)
        journal_path = str(tmp_path / "ckpt.pkl")
        CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
            campaign, injections, query_spec.build())
        other_query = QuerySpec.predefined("crash").build()
        with pytest.raises(ValueError, match="different campaign"):
            CheckpointingStrategy(SerialExecutionStrategy(), journal_path,
                                  resume=True).run(campaign, injections,
                                                   other_query)

    def test_resume_rejects_different_detectors(self, tmp_path):
        """Detector configuration is part of the campaign identity: results
        searched under different detector sets must never merge."""
        from repro.detectors import DetectorSet
        workload = factorial_workload()
        journal_path = str(tmp_path / "ckpt.pkl")
        query_spec = QuerySpec.predefined(
            "err-output", golden_output=workload.golden_output())
        query = query_spec.build()
        campaign_a = make_campaign(workload)
        injections = campaign_a.enumerate_injections()[:4]
        CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
            campaign_a, injections[:2], query)
        campaign_b = make_campaign(workload)
        campaign_b.detectors = DetectorSet.parse("det(1, $(2), >=, (0))")
        with pytest.raises(ValueError, match="different campaign"):
            CheckpointingStrategy(SerialExecutionStrategy(), journal_path,
                                  resume=True).run(campaign_b, injections,
                                                   query)

    def test_corrupt_header_resume_reestablishes_the_identity_guard(
            self, tmp_path):
        """A kill during the very first (header) append must not disable
        the campaign-identity check for the journal's whole life."""
        campaign, injections, query_spec = factorial_fixture(max_injections=4)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")
        with open(journal_path, "wb") as handle:
            handle.write(b"\x80\x04half-written-header")  # garbage only
        results = CheckpointingStrategy(
            SerialExecutionStrategy(), journal_path, resume=True).run(
                campaign, injections[:2], query)
        assert len(results) == 2
        # The rewritten header must now guard against a different campaign.
        campaign.max_states_per_injection = 123
        with pytest.raises(ValueError, match="different campaign"):
            CheckpointingStrategy(SerialExecutionStrategy(), journal_path,
                                  resume=True).run(campaign, injections,
                                                   query)

    def test_resume_rejects_different_search_caps(self, tmp_path):
        """Results journaled under one --max-states must not merge with
        fresh results searched under another."""
        campaign, injections, query_spec = factorial_fixture(max_injections=4)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")
        CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
            campaign, injections[:2], query)
        campaign.max_states_per_injection = 123
        with pytest.raises(ValueError, match="different campaign"):
            CheckpointingStrategy(SerialExecutionStrategy(), journal_path,
                                  resume=True).run(campaign, injections,
                                                   query)

    def test_fresh_run_truncates_a_stale_journal(self, tmp_path):
        campaign, injections, query_spec = factorial_fixture(max_injections=4)
        query = query_spec.build()
        journal_path = str(tmp_path / "ckpt.pkl")
        CheckpointingStrategy(SerialExecutionStrategy(), journal_path).run(
            campaign, injections, query)
        strategy = CheckpointingStrategy(SerialExecutionStrategy(),
                                         journal_path)  # no resume
        strategy.run(campaign, injections[:2], query)
        assert strategy.skipped == 0
        completed = CheckpointJournal(journal_path).load_completed()
        assert set(completed) == {injection_key(i) for i in injections[:2]}


class TestCliKillAndResume:
    def run_cli(self, *arguments, **popen_kwargs):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "analyze", "--workload",
             "factorial", "--query", "err-output", "--max-injections", "12",
             *arguments],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, **popen_kwargs)

    @staticmethod
    def normalize(output):
        return [line for line in output.decode().splitlines()
                if not line.startswith(("elapsed seconds", "workers",
                                        "backend"))
                and "elapsed seconds" not in line]

    def test_sigkill_mid_campaign_then_resume_matches_clean_run(self, tmp_path):
        journal_path = str(tmp_path / "ckpt.pkl")
        victim = self.run_cli("--checkpoint", journal_path)
        try:
            # Let it journal at least one result, then kill it hard.
            deadline = time.monotonic() + 120
            journal = CheckpointJournal(journal_path)
            while time.monotonic() < deadline:
                if victim.poll() is not None:
                    break  # finished before the kill: resume still must work
                if len(journal.load_completed()) >= 1:
                    break
                time.sleep(0.02)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup guard
                victim.kill()
                victim.wait()

        resumed = self.run_cli("--checkpoint", journal_path, "--resume")
        resumed_output, _ = resumed.communicate(timeout=600)
        assert resumed.returncode == 0
        clean = self.run_cli()
        clean_output, _ = clean.communicate(timeout=600)
        assert clean.returncode == 0
        assert self.normalize(resumed_output) == self.normalize(clean_output)
