"""Tests for the minic language: lexer, parser, code generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import (CompileError, LexerError, ParseError, compile_source,
                        parse_source, tokenize)
from repro.lang.nodes import Binary, If, While
from repro.machine import Status, run_concrete, initial_state


def run_minic(source, input_values=(), max_steps=100_000):
    compiled = compile_source(source)
    state = initial_state(input_values=input_values,
                          memory=compiled.initial_memory())
    run_concrete(compiled.program, state, max_steps=max_steps)
    return state


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("int x = 10; // comment\nif (x >= 'a') {}")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("keyword", "int") in kinds
        assert ("number", "10") in kinds
        assert ("symbol", ">=") in kinds
        assert ("number", str(ord("a"))) in kinds
        assert kinds[-1][0] == "eof"

    def test_block_comments_and_lines(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]
        assert tokens[1].line == 2

    def test_string_and_char_escapes(self):
        tokens = tokenize(r'"hi\n" ' + r"'\n'")
        assert tokens[0].text == "hi\n"
        assert tokens[1].text == str(ord("\n"))

    def test_errors(self):
        with pytest.raises(LexerError):
            tokenize('"unterminated')
        with pytest.raises(LexerError):
            tokenize("int € = 3;")
        with pytest.raises(LexerError):
            tokenize("/* unterminated")


class TestParser:
    def test_structure(self):
        unit = parse_source("""
            const K = 3;
            int g;
            int table[4] = {1, 2, 3, 4};
            int helper(int a) { return a + K; }
            int main() { int x; x = helper(2); while (x > 0) { x = x - 1; } return x; }
        """)
        assert [c.name for c in unit.constants] == ["K"]
        assert [g.name for g in unit.globals] == ["g", "table"]
        assert unit.globals[1].initializer == (1, 2, 3, 4)
        assert [f.name for f in unit.functions] == ["helper", "main"]
        main = unit.function("main")
        assert any(isinstance(s, While) for s in main.body)

    def test_operator_precedence(self):
        unit = parse_source("int main() { int x; x = 1 + 2 * 3; return x; }")
        assign = unit.function("main").body[1]
        assert isinstance(assign.value, Binary) and assign.value.operator == "+"
        assert assign.value.right.operator == "*"

    def test_dangling_else_binds_to_nearest_if(self):
        unit = parse_source("""
            int main() { if (1) if (0) return 1; else return 2; return 3; }
        """)
        outer = unit.function("main").body[0]
        assert isinstance(outer, If)
        assert outer.else_body == ()
        inner = outer.then_body[0]
        assert isinstance(inner, If) and inner.else_body

    def test_parse_errors(self):
        for source in ("int main() { x = ; }",
                       "int main() { if 1 { } }",
                       "int main() { 3 = x; }",
                       "int main() { return 1 }",
                       "banana"):
            with pytest.raises(ParseError):
                parse_source(source)


class TestCompileErrors:
    def test_undefined_identifier(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return missing; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError):
            compile_source("int main() { return nothere(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError):
            compile_source("int f(int a) { return a; } int main() { return f(); }")

    def test_duplicate_local(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int a; int a; return 0; }")

    def test_missing_main(self):
        with pytest.raises(CompileError):
            compile_source("int helper() { return 1; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_source("int main() { break; return 0; }")

    def test_assign_to_constant(self):
        with pytest.raises(CompileError):
            compile_source("const K = 1; int main() { K = 2; return 0; }")


class TestGeneratedCodeSemantics:
    def test_arithmetic_and_precedence(self):
        state = run_minic("""
            int main() {
                print(2 + 3 * 4);
                print((2 + 3) * 4);
                print(7 / 2);
                print(7 % 2);
                print(-5 + 1);
                return 0;
            }
        """)
        assert state.output_values() == (14, 20, 3, 1, -4)

    def test_comparisons_and_logic(self):
        state = run_minic("""
            int main() {
                print(3 < 4);
                print(3 > 4);
                print(4 <= 4);
                print(5 != 5);
                print(!0);
                print(1 && 0);
                print(1 || 0);
                return 0;
            }
        """)
        assert state.output_values() == (1, 0, 1, 0, 1, 0, 1)

    def test_short_circuit_avoids_side_effects(self):
        # The right operand would divide by zero; short-circuit must skip it.
        state = run_minic("""
            int boom() { return 1 / 0; }
            int main() {
                if (0 && boom()) { print(1); } else { print(2); }
                if (1 || boom()) { print(3); }
                return 0;
            }
        """)
        assert state.status is Status.HALTED
        assert state.output_values() == (2, 3)

    def test_while_break_continue(self):
        state = run_minic("""
            int main() {
                int i;
                int total;
                i = 0;
                total = 0;
                while (i < 10) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    total = total + i;
                }
                print(total);
                print(i);
                return 0;
            }
        """)
        # 1+2+4+5+6 = 18, loop exits at i == 7
        assert state.output_values() == (18, 7)

    def test_globals_arrays_and_constants(self):
        state = run_minic("""
            const BASE = 10;
            int table[5] = {1, 2, 3};
            int total;
            int main() {
                int i;
                i = 0;
                while (i < 5) {
                    table[i] = table[i] + BASE;
                    total = total + table[i];
                    i = i + 1;
                }
                print(total);
                print(table[4]);
                return 0;
            }
        """)
        assert state.output_values() == (11 + 12 + 13 + 10 + 10, 10)

    def test_recursion(self):
        state = run_minic("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { print(fib(10)); return 0; }
        """)
        assert state.output_values() == (55,)

    def test_loop_based_parity(self):
        state = run_minic("""
            int dec(int n) { return n - 1; }
            int even(int n) {
                int k;
                k = n;
                while (k >= 2) { k = k - 2; }
                return k == 0;
            }
            int main() { print(even(10)); print(even(7)); return 0; }
        """)
        assert state.output_values() == (1, 0)

    def test_read_and_array_parameters(self):
        state = run_minic("""
            int buffer[8];
            int fill(int dest, int n) {
                int i;
                i = 0;
                while (i < n) { read(dest[i]); i = i + 1; }
                return n;
            }
            int total(int src, int n) {
                int i;
                int sum;
                i = 0;
                sum = 0;
                while (i < n) { sum = sum + src[i]; i = i + 1; }
                return sum;
            }
            int main() {
                int n;
                n = fill(buffer, 4);
                print(total(buffer, n));
                return 0;
            }
        """, input_values=(5, 6, 7, 8))
        assert state.output_values() == (26,)

    def test_uninitialized_locals_are_zero(self):
        state = run_minic("int main() { int x; print(x); return 0; }")
        assert state.output_values() == (0,)

    def test_prints_and_check(self):
        compiled = compile_source("""
            int main() { prints("hello"); check(1); print(1); return 0; }
        """)
        from repro.detectors import DetectorSet
        detectors = DetectorSet.parse("det(1, $(0), ==, (0))")
        state = initial_state(memory=compiled.initial_memory())
        run_concrete(compiled.program, state, detectors)
        assert state.output_values() == ("hello", 1)

    def test_division_by_zero_crashes_program(self):
        state = run_minic("int main() { print(1 / 0); return 0; }")
        assert state.status is Status.EXCEPTION

    def test_function_region_metadata(self):
        compiled = compile_source("""
            int helper(int a) { return a * 2; }
            int main() { print(helper(3)); return 0; }
        """)
        start, end = compiled.function_region("helper")
        assert 0 < start < end <= len(compiled.program)
        assert compiled.function_pcs("helper") == list(range(start, end))
        assert compiled.global_address is not None

    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=-50, max_value=50),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_compiled_arithmetic_matches_python(self, a, b, c):
        """Differential property test: the compiled program computes the same
        values as Python for a small arithmetic kernel."""
        state = run_minic(f"""
            int main() {{
                int a; int b; int c;
                a = {a}; b = {b}; c = {c};
                print(a + b * c);
                print((a - b) * (a + c));
                print(a < b);
                print((a + b) % c);
                return 0;
            }}
        """)
        expected_mod = (a + b) - int((a + b) / c) * c  # C-style remainder
        assert state.output_values() == (a + b * c, (a - b) * (a + c),
                                         int(a < b), expected_mod)
