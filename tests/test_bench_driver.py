"""Unit tests for the unified workload driver and the trajectory gate.

The heavyweight paths (full matrix runs, broker variants) are exercised by
the `bench-trajectory` and smoke CI jobs; here we pin the cheap invariants
those jobs rely on: output normalization, matrix well-formedness, sha
resolution and the pass/fail logic of ``check_bench_trajectory.py``.
"""

import json
import sys
from pathlib import Path

from repro.results.bench import (MATRICES, execute_entry, normalize_output,
                                 resolve_sha)

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS_DIR))

import check_bench_trajectory  # noqa: E402
from check_state_hotpath import compare_means  # noqa: E402


class TestNormalization:
    def test_drops_exactly_the_ci_noise_lines(self):
        raw = "\n".join([
            "query                      : output contains err",
            "injections run             : 12",
            "elapsed seconds            : 1.234",
            "workers   : 2",
            "backend   : distributed",
            "total solutions            : 3",
        ])
        normalized = normalize_output(raw)
        assert "elapsed seconds" not in normalized
        assert "workers" not in normalized
        assert "backend" not in normalized
        assert "injections run             : 12" in normalized
        assert "total solutions            : 3" in normalized

    def test_identical_sweeps_normalize_identically(self):
        a = "injections run : 5\nelapsed seconds : 1.0\n"
        b = "injections run : 5\nelapsed seconds : 9.9\n"
        assert normalize_output(a) == normalize_output(b)


class TestMatrices:
    def test_entry_ids_are_unique_per_matrix(self):
        for name, entries in MATRICES.items():
            ids = [entry["id"] for entry in entries]
            assert len(ids) == len(set(ids)), f"duplicate ids in {name!r}"

    def test_full_matrix_extends_ci(self):
        ci_ids = {entry["id"] for entry in MATRICES["ci"]}
        full_ids = {entry["id"] for entry in MATRICES["full"]}
        assert ci_ids < full_ids

    def test_ci_matrix_contains_the_streaming_rss_pair(self):
        ids = {entry["id"] for entry in MATRICES["ci"]}
        assert set(check_bench_trajectory.STREAM_PAIR) <= ids

    def test_resolve_sha_prefers_the_explicit_argument(self):
        assert resolve_sha("abc123") == "abc123"

    def test_ci_matrix_pairs_decoded_and_legacy_interp_entries(self):
        """Both dispatch variants must stay under the trajectory gate."""
        interp = {entry["id"]: entry for entry in MATRICES["ci"]
                  if entry.get("mode") == "interp"}
        for engine in ("concrete", "symbolic"):
            pair = {entry["dispatch"] for entry in interp.values()
                    if entry["engine"] == engine}
            assert pair == {"decoded", "legacy"}, engine


class TestInterpEntries:
    def test_interp_entry_record_shape(self):
        """One tiny in-process interp entry: throughput keys + wall clock.

        Runs on factorial (a few hundred instructions total) so the unit
        suite stays fast; the replace-sized entries run in the CI matrix.
        """
        entry = {"id": "interp-unit", "mode": "interp",
                 "workload": "factorial", "engine": "concrete",
                 "dispatch": "decoded", "repeats": 2}
        record = execute_entry(entry)
        assert record["mode"] == "interp"
        assert record["instructions"] > 0
        assert record["wall_clock_seconds"] > 0
        assert record["instructions_per_second"] > 0
        assert record["dispatch"] == "decoded"

    def test_symbolic_and_legacy_variants_run(self):
        for engine, dispatch in (("symbolic", "decoded"),
                                 ("concrete", "legacy")):
            entry = {"id": "interp-unit", "mode": "interp",
                     "workload": "factorial", "engine": engine,
                     "dispatch": dispatch, "repeats": 1}
            record = execute_entry(entry)
            assert record["engine"] == engine
            assert record["dispatch"] == dispatch
            assert record["instructions"] > 0


def point(sha, entries, created="2026-08-08T00:00:00+00:00"):
    return {"schema_version": 1, "sha": sha, "matrix": "ci",
            "created": created,
            "entries": [
                {"id": entry_id, "wall_clock_seconds": wall,
                 "max_rss_kb": rss}
                for entry_id, wall, rss in entries
            ]}


def write_point(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


class TestTrajectoryGate:
    BASE = [("factorial-register-errout", 1.0, 25_000),
            ("replace-results-stream-1x", 2.0, 90_000),
            ("replace-results-stream-10x", 8.0, 150_000)]

    def test_within_tolerance_passes(self, tmp_path):
        baseline = write_point(tmp_path / "base.json", point("aaa", self.BASE))
        fresh = write_point(tmp_path / "fresh.json", point("bbb", [
            (i, w * 1.1, r) for i, w, r in self.BASE]))
        assert check_bench_trajectory.check(fresh, baseline) == 0

    def test_wall_clock_regression_fails(self, tmp_path):
        baseline = write_point(tmp_path / "base.json", point("aaa", self.BASE))
        fresh = write_point(tmp_path / "fresh.json", point("bbb", [
            (i, w * (1.5 if i == "factorial-register-errout" else 1.0), r)
            for i, w, r in self.BASE]))
        assert check_bench_trajectory.check(fresh, baseline) == 1

    def test_missing_entry_fails(self, tmp_path):
        baseline = write_point(tmp_path / "base.json", point("aaa", self.BASE))
        fresh = write_point(tmp_path / "fresh.json",
                            point("bbb", self.BASE[:-1]))
        assert check_bench_trajectory.check(fresh, baseline) == 1

    def test_rss_blowup_on_the_streaming_pair_fails(self, tmp_path):
        baseline = write_point(tmp_path / "base.json", point("aaa", self.BASE))
        fresh = write_point(tmp_path / "fresh.json", point("bbb", [
            (i, w, r * (4 if i == "replace-results-stream-10x" else 1))
            for i, w, r in self.BASE]))
        assert check_bench_trajectory.check(fresh, baseline) == 1

    def test_first_point_passes_when_no_baseline_committed(self, tmp_path,
                                                           monkeypatch):
        monkeypatch.setattr(check_bench_trajectory, "TRAJECTORY_DIR",
                            tmp_path / "empty")
        fresh = write_point(tmp_path / "fresh.json", point("bbb", self.BASE))
        assert check_bench_trajectory.check(fresh) == 0

    def test_latest_committed_point_is_picked_by_created_time(self, tmp_path,
                                                              monkeypatch):
        trajectory = tmp_path / "trajectory"
        trajectory.mkdir()
        write_point(trajectory / "BENCH_zzz.json",
                    point("zzz", self.BASE, created="2026-01-01T00:00:00+00:00"))
        newer = [(i, w * 0.5, r) for i, w, r in self.BASE]
        write_point(trajectory / "BENCH_aaa.json",
                    point("aaa", newer, created="2026-06-01T00:00:00+00:00"))
        monkeypatch.setattr(check_bench_trajectory, "TRAJECTORY_DIR",
                            trajectory)
        located = check_bench_trajectory.latest_committed_point()
        assert located is not None
        doc, path = located
        assert doc["sha"] == "aaa"  # newest by created, not by filename
        # The newer (faster) baseline makes the old timings regress.
        fresh = write_point(tmp_path / "fresh.json", point("bbb", self.BASE))
        assert check_bench_trajectory.check(fresh) == 1

    def test_compare_means_reports_missing_names(self, capsys):
        failures = compare_means({"a": 1.0, "b": 2.0}, {"a": 1.0}, 1.2)
        assert any("not measured" in failure for failure in failures)
        out = capsys.readouterr().out
        assert "MISSING" in out
