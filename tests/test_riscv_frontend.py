"""Tests for the RV32IM frontend (repro.frontend.riscv)."""

import pytest

from repro.frontend.riscv import (RISCV_REGISTERS, RiscvTranslationError,
                                  translate_riscv)
from repro.isa.registry import get_frontend
from repro.machine import Status, initial_state, run_concrete


def run_translated(source, input_values=()):
    program = translate_riscv(source)
    state = initial_state(input_values=input_values)
    run_concrete(program, state, max_steps=10_000)
    return program, state


class TestRegisterNames:
    def test_abi_and_numeric_spellings_agree(self):
        assert RISCV_REGISTERS["a0"] == RISCV_REGISTERS["x10"] == 10
        assert RISCV_REGISTERS["zero"] == RISCV_REGISTERS["x0"] == 0
        assert RISCV_REGISTERS["fp"] == RISCV_REGISTERS["s0"] == 8

    def test_link_and_stack_swaps(self):
        assert RISCV_REGISTERS["ra"] == 31
        assert RISCV_REGISTERS["sp"] == 29
        assert RISCV_REGISTERS["t6"] == 1
        assert RISCV_REGISTERS["t4"] == 2

    def test_unknown_register_rejected(self):
        with pytest.raises(RiscvTranslationError, match="unknown RISC-V"):
            translate_riscv("mv q7, a0\n")


class TestArithmetic:
    def test_sum_loop_with_m_extension(self):
        # 5 * 4 / 2 - 3 = 7, printed via the print pseudo-instruction.
        _, state = run_translated("""
            li   t0, 5
            li   t1, 4
            mul  t2, t0, t1
            li   t3, 2
            div  t2, t2, t3
            addi t2, t2, -3
            print t2
            halt
        """)
        assert state.status is Status.HALTED
        assert state.output_values() == (7,)

    def test_rem_and_immediate_pseudo_forms(self):
        _, state = run_translated("""
            li   a0, 17
            rem  a1, a0, 5      # 2
            sub  a1, a1, 1      # RARS-style immediate form -> subi
            mul  a1, a1, 10     # -> multi
            print a1
            halt
        """)
        assert state.output_values() == (10,)

    def test_slt_family_and_logic(self):
        _, state = run_translated("""
            li   t0, 3
            li   t1, 9
            slt  t2, t0, t1
            sgt  t3, t0, t1
            seq  t4, t0, 3
            and  t5, t2, t4
            print t5
            print t3
            halt
        """)
        assert state.output_values() == (1, 0)


class TestMemory:
    def test_lw_sw_displacement(self):
        _, state = run_translated("""
            li   t0, 2000
            li   t1, 42
            sw   t1, 8(t0)
            lw   t2, 8(t0)
            print t2
            halt
        """)
        assert state.output_values() == (42,)

    def test_bad_displacement_rejected(self):
        with pytest.raises(RiscvTranslationError, match="bad address operand"):
            translate_riscv("lw t0, 8[t1]\n")


class TestBranches:
    def test_branch_pseudos_and_loop(self):
        # sum 1..n for n read from input, via bgtz.
        _, state = run_translated("""
            read a0
            li   a1, 0
        loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bgtz a0, loop
            print a1
            halt
        """, input_values=(5,))
        assert state.output_values() == (15,)

    def test_register_register_branch_expands_through_scratch(self):
        program = translate_riscv("""
            beq  a0, a1, same
            nop
        same:
            halt
        """)
        opcodes = [instruction.opcode for instruction in program.code]
        assert opcodes == ["seteq", "bne", "nop", "halt"]
        # the compare lands in the $1 scratch slot (t6), like MIPS $at
        assert program.code[0].operands[0] == 1

    def test_beqz_bnez_stay_single_instruction(self):
        program = translate_riscv("""
            beqz a0, out
            bnez a1, out
        out:
            halt
        """)
        assert [i.opcode for i in program.code] == ["beq", "bne", "halt"]


class TestCalls:
    def test_jal_ret_roundtrip(self):
        _, state = run_translated("""
        main:
            li   a0, 7
            jal  double
            print a0
            halt
        double:
            add  a0, a0, a0
            ret
        """)
        assert state.output_values() == (14,)

    def test_jal_links_through_symplfied_31(self):
        program = translate_riscv("jal target\ntarget: halt\n")
        assert program.code[0].opcode == "jal"
        # implicit link register of SymPLFIED jal is $31 == ra
        assert 31 in program.code[0].registers_written()

    def test_jalr_non_linking_forms(self):
        program = translate_riscv("""
            jalr x0, t0, 0
            jalr x0, 0(t1)
            jr   t2
            halt
        """)
        assert [i.opcode for i in program.code[:3]] == ["jr", "jr", "jr"]

    def test_linking_jalr_rejected(self):
        with pytest.raises(RiscvTranslationError, match="jalr"):
            translate_riscv("jalr t0\n")
        with pytest.raises(RiscvTranslationError, match="jalr"):
            translate_riscv("jalr ra, t0, 0\n")


class TestEcall:
    def test_read_print_exit_services(self):
        _, state = run_translated("""
            li   a7, 5
            ecall               # read into a0
            li   t0, 3
            mul  a0, a0, t0
            li   a7, 1
            ecall               # print a0
            li   a7, 10
            ecall               # exit
        """, input_values=(6,))
        assert state.status is Status.HALTED
        assert state.output_values() == (18,)

    def test_exit_93_is_accepted(self):
        _, state = run_translated("li a7, 93\necall\n")
        assert state.status is Status.HALTED

    def test_bare_ecall_rejected(self):
        with pytest.raises(RiscvTranslationError, match="ecall needs"):
            translate_riscv("ecall\n")

    def test_label_resets_pending_service(self):
        # A jump may land at the label with any a7, so the convention
        # conservatively requires the li after the label.
        with pytest.raises(RiscvTranslationError, match="ecall needs"):
            translate_riscv("""
                li a7, 10
            entry:
                ecall
            """)

    def test_clobbered_a7_rejected(self):
        with pytest.raises(RiscvTranslationError, match="ecall needs"):
            translate_riscv("""
                li  a7, 10
                add a7, a7, a7
                ecall
            """)


class TestPseudoInstructions:
    def test_mv_neg_seqz_snez(self):
        _, state = run_translated("""
            li   t0, 5
            mv   t1, t0
            neg  t2, t1
            seqz t3, t2
            snez t4, t2
            print t2
            print t3
            print t4
            halt
        """)
        assert state.output_values() == (-5, 0, 1)

    def test_symplfied_native_pseudos_pass_through(self):
        program = translate_riscv("""
            read a0
            prints "value = "
            print a0
            check 1
            throw "bad"
            halt
        """)
        assert [i.opcode for i in program.code] == [
            "read", "prints", "print", "check", "throw", "halt"]

    def test_unsupported_instruction_reports_line(self):
        with pytest.raises(RiscvTranslationError, match="line 2.*csrr"):
            translate_riscv("nop\ncsrr t0, mstatus\n")

    def test_register_shift_amount_rejected(self):
        with pytest.raises(RiscvTranslationError, match="register shift"):
            translate_riscv("sll t0, t1, t2\n")


class TestLabelsAndSegments:
    def test_labels_preserved_in_order(self):
        program = translate_riscv("""
        start:
            li   t0, 1
        middle:
            addi t0, t0, 1
        end:
            halt
        """)
        assert program.labels == {"start": 0, "middle": 1, "end": 2}

    def test_data_segment_skipped(self):
        program = translate_riscv("""
            .data
        table: .word 1, 2, 3
            .text
            halt
        """)
        assert len(program.code) == 1
        assert program.code[0].opcode == "halt"


class TestEmit:
    def test_emit_round_trips_every_opcode_family(self):
        frontend = get_frontend("rv32im")
        source = """
            read a0
            prints "go, go"
            li   t0, 2000
            sw   a0, 4(t0)
            lw   a1, 4(t0)
            mul  a2, a1, a1
            rem  a3, a2, 7
            sub  a3, a3, 1
            slli a4, a3, 2
            seq  a5, a4, 8
            beqz a5, out
            jal  out
        out:
            check 1
            print a2
            throw "boom"
        """
        program = frontend.translate(source)
        again = frontend.translate(frontend.emit(program))
        assert again.code == program.code
        assert again.labels == program.labels
