"""Tests for the network campaign fabric (repro.net) and its CLI surface."""

import pickle
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core import SerialExecutionStrategy, SymbolicCampaign
from repro.core.tasks import (SerialTaskStrategy, TaskRunner,
                              decompose_by_chunk)
from repro.distributed import (CampaignManifest, DistributedConfig,
                               DistributedTaskStrategy, FilesystemBroker,
                               WorkerConfig, open_broker,
                               run_campaign_distributed,
                               run_tasks_distributed, run_worker)
from repro.distributed.backoff import Backoff
from repro.distributed.broker import enqueue_campaign
from repro.machine import ExecutionConfig
from repro.net import (BrokerServer, ProtocolError, SocketBroker,
                       parse_listen_address, parse_queue_url, recv_message,
                       send_message)
from repro.parallel import CampaignSpec, QuerySpec
from repro.programs import factorial_workload


def make_campaign(workload, **kwargs):
    defaults = dict(max_solutions_per_injection=10,
                    max_states_per_injection=10_000)
    defaults.update(kwargs)
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=workload.recommended_max_steps),
        **defaults)


def result_keys(results):
    """The order-sensitive, timing-free projection used for equivalence."""
    return [(r.injection.label(), r.activated, r.completed,
             [s.state.output_values() for s in r.solutions],
             [s.state.status.value for s in r.solutions])
            for r in results]


def task_result_keys(task_results):
    return [(tr.task.identifier, tr.completed, tr.errors_found,
             result_keys(tr.results)) for tr in task_results]


def factorial_fixture(max_injections=8):
    workload = factorial_workload()
    campaign = make_campaign(workload)
    injections = campaign.enumerate_injections()[:max_injections]
    query_spec = QuerySpec.predefined("err-output",
                                      golden_output=workload.golden_output())
    return campaign, injections, query_spec


@pytest.fixture
def server():
    broker_server = BrokerServer().start()
    yield broker_server
    broker_server.stop()


class TestFraming:
    def roundtrip(self, header, blobs):
        left, right = socket.socketpair()
        try:
            send_message(left, header, blobs)
            return recv_message(right)
        finally:
            left.close()
            right.close()

    def test_header_and_blobs_roundtrip(self):
        header, blobs = self.roundtrip({"op": "x", "index": 3},
                                       [b"alpha", b"", b"\x00\xff" * 100])
        assert header == {"op": "x", "index": 3}
        assert blobs == [b"alpha", b"", b"\x00\xff" * 100]

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right, allow_eof=True) is None
        finally:
            right.close()

    def test_truncated_frame_raises_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10{\"op\"")  # promises 16, sends 6
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()

    def test_oversized_frame_rejected_without_reading_it(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="cap"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_json_header_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x04\x80\x04]}")  # pickle, not JSON
            with pytest.raises(ProtocolError, match="header"):
                recv_message(right)
        finally:
            left.close()
            right.close()


class TestAddressParsing:
    def test_queue_url(self):
        assert parse_queue_url("tcp://10.0.0.7:9001") == ("10.0.0.7", 9001)
        assert parse_queue_url("tcp://localhost:80/") == ("localhost", 80)
        for bad in ("tcp://nohost", "tcp://host:port", "dir/queue"):
            with pytest.raises(ValueError):
                parse_queue_url(bad)

    def test_listen_address(self):
        assert parse_listen_address("0.0.0.0:7461") == ("0.0.0.0", 7461)
        assert parse_listen_address(":7461") == ("127.0.0.1", 7461)
        with pytest.raises(ValueError):
            parse_listen_address("7461")

    def test_open_broker_picks_backend_by_scheme(self, server, tmp_path):
        assert isinstance(open_broker(server.url), SocketBroker)
        assert isinstance(open_broker(str(tmp_path / "queue")),
                          FilesystemBroker)


class TestServerRobustness:
    def test_garbage_connection_does_not_corrupt_state(self, server):
        broker = SocketBroker(server.url)
        broker.put_task(0, "survivor")
        # A dying peer tears a frame mid-write: the server must drop that
        # connection and keep serving intact clients from intact state.
        raw = socket.create_connection(server.address, timeout=5)
        raw.sendall(b"\x00\x00\xff\xff{\"op\"")  # truncated header
        raw.close()
        raw = socket.create_connection(server.address, timeout=5)
        raw.sendall(b"\xff\xff\xff\xff")  # absurd length prefix
        raw.close()
        assert broker.pending_count() == 1
        claim = broker.claim_next()
        assert claim.payload == "survivor"
        broker.close()

    def test_unknown_operation_closes_connection_but_client_recovers(
            self, server):
        broker = SocketBroker(server.url)
        with pytest.raises(ConnectionError):
            broker._call({"op": "no-such-op"})
        assert broker.pending_count() == 0  # reconnects transparently
        broker.close()

    def test_client_reconnects_after_connection_loss(self, server):
        broker = SocketBroker(server.url)
        broker.put_task(0, "before")
        # Sever the live connection underneath the client.
        broker._sock.shutdown(socket.SHUT_RDWR)
        broker.put_task(1, "after")
        assert broker.pending_count() == 2
        broker.close()

    def test_operation_error_reports_the_op(self, server):
        broker = SocketBroker(server.url)
        # complete without blobs → server-side failure surfaced by name.
        with pytest.raises(RuntimeError, match="complete"):
            broker._call({"op": "complete", "index": 0})
        broker.close()

    def test_more_results_than_one_message_carries_drain_in_batches(
            self, server):
        """Regression: a fast fleet can finish more tasks between
        coordinator polls than the framing blob cap allows in one response;
        the fetch must batch, not crash."""
        from repro.net.framing import MAX_BLOBS
        broker = SocketBroker(server.url)
        total = MAX_BLOBS + 6
        for index in range(total):
            broker._call({"op": "complete", "index": index},
                         [pickle.dumps(("r", index))])
        seen = {}
        fetches = 0
        while len(seen) < total:
            fresh = broker.fetch_new_results(seen=set(seen))
            assert fresh, "fetch stalled before draining every result"
            seen.update(fresh)
            fetches += 1
        assert fetches == 2
        assert seen == {index: ("r", index) for index in range(total)}
        broker.close()


class TestBackoff:
    def test_validation(self):
        with pytest.raises(ValueError, match="initial"):
            Backoff(0)
        with pytest.raises(ValueError, match="factor"):
            Backoff(0.1, factor=0.5)

    def test_growth_is_capped_and_reset_restarts(self):
        backoff = Backoff(0.001, cap=0.004)
        waited = [backoff.sleep() for _ in range(4)]
        assert waited == [0.001, 0.002, 0.004, 0.004]
        backoff.reset()
        assert backoff.peek() == 0.001

    def test_default_cap_never_exceeds_a_second(self):
        assert Backoff(0.05).cap <= 1.0
        assert Backoff(5.0).cap == 5.0  # never below the base interval


class TestWorkerOverTcp:
    def test_worker_drains_a_tcp_queue_to_serial_results(self, server):
        campaign, injections, query_spec = factorial_fixture()
        broker = SocketBroker(server.url)
        chunks = [tuple(injections[i:i + 2])
                  for i in range(0, len(injections), 2)]
        enqueue_campaign(
            broker,
            CampaignManifest(
                campaign_spec=CampaignSpec.from_campaign(campaign),
                query_spec=query_spec),
            list(enumerate(chunks)))
        executed = run_worker(WorkerConfig(queue_dir=server.url,
                                           poll_interval=0.01,
                                           max_idle_seconds=10.0))
        assert executed == len(chunks)
        assert broker.is_drained()
        payloads = dict(broker.fetch_new_results(seen=set()))
        distributed = [result for index in sorted(payloads)
                       for result in payloads[index][2]]
        serial = SerialExecutionStrategy().run(campaign, injections,
                                               query_spec.build())
        assert result_keys(distributed) == result_keys(serial)
        broker.close()


class TestWorkerReattach:
    def test_worker_attaching_to_a_drained_queue_waits_for_the_next_campaign(
            self, server):
        """Regression: back-to-back campaigns over one long-lived broker.
        A worker attaching between campaigns sees the previous campaign's
        drained state; exiting on it would strand the next campaign with no
        workers, so the worker must wait for the reset instead."""
        campaign, injections, query_spec = factorial_fixture(max_injections=4)
        broker = SocketBroker(server.url)
        chunks = [tuple(injections[:2]), tuple(injections[2:])]
        enqueue_campaign(
            broker,
            CampaignManifest(
                campaign_spec=CampaignSpec.from_campaign(campaign),
                query_spec=query_spec, campaign_id="first"),
            list(enumerate(chunks)))
        assert run_worker(WorkerConfig(queue_dir=server.url,
                                       poll_interval=0.01,
                                       max_idle_seconds=30.0)) == 2
        assert broker.is_drained()

        # A late worker attaches now — after the drain, before the next
        # campaign — and must idle rather than exit…
        late_worker = threading.Thread(
            target=lambda: run_worker(
                WorkerConfig(queue_dir=server.url, poll_interval=0.01,
                             max_idle_seconds=60.0)),
            daemon=True)
        late_worker.start()
        time.sleep(0.3)
        assert late_worker.is_alive()

        # …so that the next campaign on the same queue gets executed.
        distributed = run_campaign_distributed(
            campaign, query_spec, injections=injections,
            config=DistributedConfig(workers=0, chunk_size=2,
                                     queue_dir=server.url,
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0))
        serial = campaign.run(query_spec.build(), injections=injections)
        assert result_keys(distributed.results) == result_keys(serial.results)
        late_worker.join(timeout=60)
        assert not late_worker.is_alive()
        broker.close()


class TestGracefulStop:
    def enqueue(self, broker, chunks, close=True):
        campaign, injections, query_spec = factorial_fixture()
        split = [tuple(injections[i:i + 2])
                 for i in range(0, len(injections), 2)][:chunks]
        manifest = CampaignManifest(
            campaign_spec=CampaignSpec.from_campaign(campaign),
            query_spec=query_spec)
        if close:
            enqueue_campaign(broker, manifest, list(enumerate(split)))
        else:
            # Leave the queue open-ended: the worker keeps waiting for more
            # tasks, so only the signal can end it.
            broker.publish_manifest(manifest)
            for index, payload in enumerate(split):
                broker.put_task(index, payload)
        return split

    def test_stop_between_claim_and_execution_releases_the_task(
            self, tmp_path):
        queue = str(tmp_path / "queue")
        broker = FilesystemBroker(queue)
        self.enqueue(broker, chunks=2)
        # should_stop: False through the manifest wait and loop start, True
        # right after the claim — the worker must hand the task back
        # instead of stranding a lease.
        answers = iter([False, False, True])
        executed = run_worker(
            WorkerConfig(queue_dir=queue, poll_interval=0.01),
            should_stop=lambda: next(answers, True))
        assert executed == 0
        assert broker.claimed_count() == 0
        assert broker.pending_count() == 2  # nothing lost, nothing leased

    def test_stop_during_execution_finishes_and_publishes_the_unit(
            self, tmp_path):
        queue = str(tmp_path / "queue")
        broker = FilesystemBroker(queue)
        self.enqueue(broker, chunks=2)
        # False through manifest wait, loop start and post-claim; True once
        # execution finished.
        answers = iter([False, False, False])
        executed = run_worker(
            WorkerConfig(queue_dir=queue, poll_interval=0.01),
            should_stop=lambda: next(answers, True))
        assert executed == 1
        assert broker.results_count() == 1
        assert broker.claimed_count() == 0
        assert broker.pending_count() == 1

    def test_stop_during_manifest_wait_exits_cleanly(self, tmp_path):
        """A worker waiting for a campaign to appear must honour a stop
        request instead of blocking out its full manifest timeout."""
        started = time.monotonic()
        executed = run_worker(
            WorkerConfig(queue_dir=str(tmp_path / "queue"),
                         poll_interval=0.01, manifest_timeout=60.0),
            should_stop=lambda: time.monotonic() - started > 0.1)
        assert executed == 0
        assert time.monotonic() - started < 30.0

    def test_manifest_timeout_still_raises(self, tmp_path):
        with pytest.raises(TimeoutError, match="manifest"):
            run_worker(WorkerConfig(queue_dir=str(tmp_path / "queue"),
                                    poll_interval=0.01,
                                    manifest_timeout=0.1))

    def test_cli_worker_exits_cleanly_on_sigterm(self, tmp_path):
        queue = str(tmp_path / "queue")
        broker = FilesystemBroker(queue)
        # Queue left open: without the signal the worker would idle forever.
        self.enqueue(broker, chunks=3, close=False)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--queue", queue,
             "--poll-interval", "0.02"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.monotonic() + 120
            while (broker.results_count() < 1
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert broker.results_count() >= 1
            worker.send_signal(signal.SIGTERM)
            output, _ = worker.communicate(timeout=120)
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()
        assert worker.returncode == 0
        assert b"stopped on SIGTERM" in output
        # Whatever it was executing was finished and published; whatever it
        # had merely claimed was released — no lease is left to expire.
        assert broker.claimed_count() == 0


class TestCliBroker:
    def test_broker_serves_until_sigterm(self):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "broker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            line = process.stdout.readline().decode()
            assert line.startswith("broker listening on tcp://")
            url = line.split()[-1]
            broker = SocketBroker(url)
            broker.put_task(0, "over-the-wire")
            assert broker.pending_count() == 1
            broker.close()
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0
        assert b"broker stopped" in output

    def test_bad_listen_spec_is_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "broker", "--listen", "nope"],
            capture_output=True, timeout=60)
        assert result.returncode != 0
        assert b"HOST:PORT" in result.stderr

    def test_worker_reports_an_unreachable_broker_cleanly(self):
        """No broker listening: the worker must exit with a one-line
        message, not a traceback (parity with the directory backend's
        manifest-timeout message)."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "worker",
             "--queue", "tcp://127.0.0.1:1"],  # port 1: nothing listens
            capture_output=True, timeout=120)
        assert result.returncode != 0
        assert b"worker gave up" in result.stderr
        assert b"Traceback" not in result.stderr


class TestDistributedCampaignOverTcp:
    def test_chunk_campaign_matches_serial(self, server):
        campaign, injections, query_spec = factorial_fixture()
        serial = campaign.run(query_spec.build(), injections=injections)
        distributed = run_campaign_distributed(
            campaign, query_spec, injections=injections,
            config=DistributedConfig(workers=2, chunk_size=2,
                                     queue_dir=server.url,
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0))
        assert result_keys(distributed.results) == result_keys(serial.results)
        assert (distributed.injections_run, distributed.total_solutions) \
            == (serial.injections_run, serial.total_solutions)

    def test_campaign_survives_a_sigkilled_external_worker(self, server):
        """Acceptance: a worker SIGKILLed mid-campaign loses its lease, the
        task requeues, and the survivor finishes with identical results."""
        campaign, injections, query_spec = factorial_fixture()
        serial = campaign.run(query_spec.build(), injections=injections)
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--queue", server.url, "--poll-interval", "0.02",
                 "--lease-seconds", "1.5", "--max-idle", "120"],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            for _ in range(2)]
        watcher_done = threading.Event()

        def kill_one_worker_after_first_result():
            probe = SocketBroker(server.url)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and not watcher_done.is_set():
                if probe.results_count() >= 1:
                    workers[0].send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            probe.close()

        watcher = threading.Thread(target=kill_one_worker_after_first_result)
        watcher.start()
        try:
            distributed = run_campaign_distributed(
                campaign, query_spec, injections=injections,
                config=DistributedConfig(workers=0, chunk_size=1,
                                         queue_dir=server.url,
                                         lease_seconds=1.5,
                                         poll_interval=0.02,
                                         wall_clock_timeout=300.0))
        finally:
            watcher_done.set()
            watcher.join(timeout=30)
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
            for worker in workers:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    worker.kill()
                    worker.wait()
        assert result_keys(distributed.results) == result_keys(serial.results)


class TestDistributedTaskStrategy:
    def test_empty_task_list(self):
        _, _, query_spec = factorial_fixture()
        strategy = DistributedTaskStrategy(query_spec)
        campaign, _, _ = factorial_fixture()
        runner = TaskRunner(campaign)
        assert strategy.run(runner, [], query_spec.build()) == []
        assert strategy.cache_statistics is not None

    def test_whole_tasks_match_serial_task_strategy(self, server):
        campaign, injections, query_spec = factorial_fixture()
        runner = TaskRunner(campaign, max_errors_per_task=10)
        tasks = decompose_by_chunk(injections, 3)
        serial = runner.run(tasks, query_spec.build(),
                            strategy=SerialTaskStrategy())
        distributed = run_tasks_distributed(
            runner, tasks, query_spec,
            config=DistributedConfig(workers=2, queue_dir=server.url,
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0))
        assert task_result_keys(distributed.task_results) \
            == task_result_keys(serial.task_results)
        assert distributed.total_tasks == serial.total_tasks
        assert distributed.total_errors_found == serial.total_errors_found

    def test_per_task_caps_travel_with_the_manifest(self, tmp_path):
        """Workers must honour the coordinator runner's per-task error cap
        (paper Section 6.1: at most 10 errors per task) — capped task
        results are identical to the serial capped run."""
        campaign, injections, query_spec = factorial_fixture()
        runner = TaskRunner(campaign, max_errors_per_task=1)
        tasks = decompose_by_chunk(injections, 4)
        serial = runner.run(tasks, query_spec.build(),
                            strategy=SerialTaskStrategy())
        # The cap must actually bite for this test to mean anything.
        assert any(len(tr.results) < len(tr.task.injections)
                   for tr in serial.task_results)
        distributed = run_tasks_distributed(
            runner, tasks, query_spec,
            config=DistributedConfig(workers=1,
                                     queue_dir=str(tmp_path / "queue"),
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0))
        assert task_result_keys(distributed.task_results) \
            == task_result_keys(serial.task_results)

    def test_progress_counts_every_task_once(self, server):
        campaign, injections, query_spec = factorial_fixture(max_injections=6)
        runner = TaskRunner(campaign)
        tasks = decompose_by_chunk(injections, 2)
        seen = []
        run_tasks_distributed(
            runner, tasks, query_spec,
            config=DistributedConfig(workers=2, queue_dir=server.url,
                                     poll_interval=0.01,
                                     wall_clock_timeout=300.0),
            progress=lambda done, total, result: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]
