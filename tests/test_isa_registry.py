"""Tests for the pluggable ISA frontend registry (repro.isa.registry)."""

import pytest

from repro.isa import assemble
from repro.isa.registry import (ISA_FRONTENDS, IsaAbi, IsaFrontend,
                                available_isas, get_frontend,
                                register_frontend, retarget_program)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert "mips" in available_isas()
        assert "rv32im" in available_isas()

    def test_get_frontend_returns_named_frontend(self):
        for name in ("mips", "rv32im"):
            frontend = get_frontend(name)
            assert frontend.name == name
            assert frontend.description

    def test_unknown_name_is_one_line_error_listing_registered(self):
        with pytest.raises(ValueError) as excinfo:
            get_frontend("z80")
        message = str(excinfo.value)
        assert "unknown ISA frontend 'z80'" in message
        assert "mips" in message and "rv32im" in message
        assert "\n" not in message

    def test_duplicate_registration_rejected_without_replace(self):
        frontend = get_frontend("mips")
        with pytest.raises(ValueError, match="already registered"):
            register_frontend(frontend)
        # replace=True re-registers in place.
        assert register_frontend(frontend, replace=True) is frontend
        assert ISA_FRONTENDS["mips"] is frontend

    def test_nameless_frontend_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_frontend(IsaFrontend())

    def test_custom_frontend_registration_roundtrip(self):
        class ToyFrontend(IsaFrontend):
            name = "toy"
            description = "test-only frontend"
            registers = {"r0": 0}
            abi = IsaAbi(stack_pointer="r29", return_address="r31",
                         return_value="r2")

            def translate(self, source, name="toy"):
                return assemble(source, name=name)

            def emit_instruction(self, instruction):
                return instruction.render()

        try:
            register_frontend(ToyFrontend())
            assert "toy" in available_isas()
            program = assemble("li $1 7\nprint $1\nhalt\n")
            assert get_frontend("toy").retarget(program).code == program.code
        finally:
            ISA_FRONTENDS.pop("toy", None)


class TestAbiMetadata:
    def test_mips_abi(self):
        abi = get_frontend("mips").abi
        assert abi.stack_pointer == "$sp"
        assert abi.return_address == "$ra"
        registers = get_frontend("mips").registers
        assert registers["sp"] == 29 and registers["ra"] == 31

    def test_rv32im_abi_maps_link_and_stack_onto_symplfied_slots(self):
        frontend = get_frontend("rv32im")
        assert frontend.abi.stack_pointer == "sp"
        assert frontend.abi.return_address == "ra"
        # ra (x1) must land on SymPLFIED's hardwired jal link register $31,
        # sp (x2) on the minic stack pointer $29; the displaced registers
        # take the freed slots so the map stays a bijection.
        assert frontend.registers["ra"] == 31
        assert frontend.registers["sp"] == 29
        assert frontend.registers["t6"] == 1
        assert frontend.registers["t4"] == 2
        assert sorted(set(frontend.registers.values())) == list(range(32))


SAMPLE = """
        read $4
        jal work
        print $2
        halt
work:   setgt $6 $4 $5
        beq $6 0 other
        mov $2 $4
        jr $31
other:  subi $2 $4 1
        sti $2 $29 0
        ldi $3 $29 0
        prints "done, "
        throw "boom # not a comment"
trail:
"""


class TestRetarget:
    @pytest.mark.parametrize("isa", ["mips", "rv32im"])
    def test_retarget_is_structural_identity(self, isa):
        program = assemble(SAMPLE, name="sample")
        retargeted = retarget_program(program, isa)
        assert retargeted.code == program.code
        assert retargeted.labels == program.labels
        assert retargeted.name == "sample"

    @pytest.mark.parametrize("isa", ["mips", "rv32im"])
    def test_trailing_label_survives_emit(self, isa):
        program = assemble(SAMPLE)
        assert program.labels["trail"] == len(program.code)
        emitted = get_frontend(isa).emit(program)
        assert emitted.rstrip().endswith("trail:")

    def test_emitted_assembly_uses_the_target_spelling(self):
        program = assemble(SAMPLE)
        mips = get_frontend("mips").emit(program)
        riscv = get_frontend("rv32im").emit(program)
        assert "$a0" in mips and "jr $ra" in mips
        assert "$" not in riscv and "jr ra" in riscv and "beqz" in riscv

    def test_retarget_rewrites_source_provenance(self):
        program = assemble("mov $3 $1\nhalt\n")
        retargeted = retarget_program(program, "rv32im")
        assert retargeted.source_line(0) == "mv gp, t6"
