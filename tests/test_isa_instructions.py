"""Tests for the instruction set definition and metadata."""

import pytest

from repro.isa.instructions import (ARITHMETIC_RRI, ARITHMETIC_RRR, COMPARE_RRR,
                                    Category, INSTRUCTION_SET, Instruction,
                                    InvalidInstructionError, NUM_REGISTERS,
                                    RETURN_ADDRESS_REGISTER, is_control_transfer,
                                    make, reads_memory, writes_memory)


class TestInstructionTable:
    def test_all_arithmetic_opcodes_present(self):
        for opcode in ARITHMETIC_RRR + ARITHMETIC_RRI:
            assert opcode in INSTRUCTION_SET

    def test_every_spec_is_consistent(self):
        for opcode, spec in INSTRUCTION_SET.items():
            assert spec.opcode == opcode
            for index in spec.reads + spec.writes:
                assert 0 <= index < len(spec.signature)
                assert spec.signature[index].value == "reg"

    def test_expected_instruction_count(self):
        # 8 RRR + 10 RRI arithmetic, 6+6 compares, mov/li, ldi/sti, beq/bne,
        # jmp/jal/jr, read/print/prints, check, halt/nop/throw
        assert len(INSTRUCTION_SET) == 8 + 10 + 12 + 2 + 2 + 2 + 3 + 3 + 1 + 3


class TestMakeAndValidate:
    def test_make_valid_instruction(self):
        instruction = make("add", 1, 2, 3)
        assert instruction.opcode == "add"
        assert instruction.operands == (1, 2, 3)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(InvalidInstructionError):
            Instruction("frobnicate", ()).validate()

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(InvalidInstructionError):
            make("add", 1, 2)

    def test_register_out_of_range_rejected(self):
        with pytest.raises(InvalidInstructionError):
            make("add", NUM_REGISTERS, 0, 0)

    def test_label_operand_must_be_string(self):
        with pytest.raises(InvalidInstructionError):
            make("jmp", 5)

    def test_immediate_must_be_int(self):
        with pytest.raises(InvalidInstructionError):
            make("addi", 1, 2, "three")


class TestRegisterMetadata:
    def test_arithmetic_reads_and_writes(self):
        instruction = make("add", 4, 5, 6)
        assert instruction.registers_read() == (5, 6)
        assert instruction.registers_written() == (4,)
        assert instruction.registers_used() == (5, 6, 4)

    def test_store_reads_value_and_base(self):
        instruction = make("sti", 7, 29, -4)
        assert instruction.registers_read() == (7, 29)
        assert instruction.registers_written() == ()

    def test_load_writes_destination(self):
        instruction = make("ldi", 7, 29, 4)
        assert instruction.registers_written() == (7,)

    def test_jal_implicitly_writes_ra(self):
        instruction = make("jal", "target")
        assert RETURN_ADDRESS_REGISTER in instruction.registers_written()

    def test_registers_used_deduplicates(self):
        instruction = make("add", 3, 3, 3)
        assert instruction.registers_used() == (3,)


class TestCategories:
    def test_control_transfer_predicate(self):
        assert is_control_transfer(make("beq", 1, 0, "x"))
        assert is_control_transfer(make("jmp", "x"))
        assert is_control_transfer(make("jal", "x"))
        assert is_control_transfer(make("jr", 31))
        assert not is_control_transfer(make("add", 1, 2, 3))

    def test_memory_predicates(self):
        assert reads_memory(make("ldi", 1, 2, 0))
        assert writes_memory(make("sti", 1, 2, 0))
        assert not reads_memory(make("sti", 1, 2, 0))

    def test_compare_category(self):
        for opcode in COMPARE_RRR:
            assert make(opcode, 1, 2, 3).category is Category.COMPARE


class TestRendering:
    def test_render_round_trip_style(self):
        assert make("addi", 3, 4, -7).render() == "addi $3 $4 #-7"
        assert make("beq", 5, 0, "exit").render() == "beq $5 #0 exit"
        assert make("prints", 'hello "world"').render() == 'prints "hello \\"world\\""'
        assert str(make("halt")) == "halt"
