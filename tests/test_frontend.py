"""Tests for the MIPS front-end translator and the query generator."""

import pytest

from repro.core import SearchQuery
from repro.frontend import (MipsTranslationError, QUERY_KINDS, generate,
                            generate_campaign, generate_query,
                            translate_mips)
from repro.machine import Status, initial_state, run_concrete
from repro.programs import factorial_workload, sum_input_workload


MIPS_SUM = """
# sum the integers 1..5 into $t1 and print it
        .text
main:
        li   $t0, 5
        li   $t1, 0
loop:
        add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        print $t1
        halt
"""

MIPS_MEMORY = """
        .text
        li   $s0, 800
        li   $t0, 42
        sw   $t0, 4($s0)
        lw   $t1, 4($s0)
        print $t1
        halt
"""

MIPS_CALL = """
        .text
main:   li   $a0, 7
        jal  double
        print $v0
        halt
double: add  $v0, $a0, $a0
        jr   $ra
"""


class TestMipsTranslator:
    def run_mips(self, source):
        program = translate_mips(source)
        state = initial_state()
        run_concrete(program, state)
        return program, state

    def test_arithmetic_loop(self):
        program, state = self.run_mips(MIPS_SUM)
        assert state.status is Status.HALTED
        assert state.output_values() == (15,)
        assert "main" in program.labels and "loop" in program.labels

    def test_memory_access(self):
        _program, state = self.run_mips(MIPS_MEMORY)
        assert state.output_values() == (42,)

    def test_call_and_return(self):
        _program, state = self.run_mips(MIPS_CALL)
        assert state.output_values() == (14,)

    def test_register_name_mapping(self):
        program = translate_mips("move $t0, $sp\nhalt\n")
        assert program[0].operands == (8, 29)

    def test_numeric_register_names(self):
        program = translate_mips("move $8, $29\nhalt\n")
        assert program[0].operands == (8, 29)

    def test_register_register_branch_expands(self):
        program = translate_mips("beq $t0, $t1, out\nout: halt\n")
        assert [i.opcode for i in program] == ["seteq", "bne", "halt"]

    def test_data_segment_is_skipped(self):
        program = translate_mips(".data\nmsg: .asciiz \"x\"\n.text\nhalt\n")
        assert len(program) == 1

    def test_labels_with_dots_are_sanitized(self):
        program = translate_mips("$L1: j $L1\n")
        assert "_L1" in program.labels

    def test_unsupported_instruction_rejected(self):
        with pytest.raises(MipsTranslationError):
            translate_mips("mfc0 $t0, $12\n")

    def test_bare_syscall_rejected(self):
        with pytest.raises(MipsTranslationError):
            translate_mips("syscall\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(MipsTranslationError):
            translate_mips("move $zz, $t0\n")

    def test_bad_displacement_rejected(self):
        with pytest.raises(MipsTranslationError):
            translate_mips("lw $t0, banana\n")


class TestQueryGenerator:
    def test_all_kinds_build(self):
        for kind in QUERY_KINDS:
            query = generate_query(kind, golden_output=(1,), expected_value=1)
            assert isinstance(query, SearchQuery)

    def test_missing_context_rejected(self):
        with pytest.raises(ValueError):
            generate_query("incorrect-output")
        with pytest.raises(ValueError):
            generate_query("wrong-final-value")
        with pytest.raises(ValueError):
            generate_query("definitely-not-a-kind", golden_output=(1,))

    def test_generate_pairs_query_with_error_class(self):
        generated = generate("crash", "fetch")
        assert generated.error_class_name == "fetch"
        assert "fetch" in generated.describe()

    # Legacy-path regression: error_category= must keep working (it now
    # warns; behaviour stays identical to the fault-model-free default).
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_generate_campaign_end_to_end(self):
        workload = sum_input_workload(count=2, values=(3, 4))
        campaign, query = generate_campaign(
            workload, kind="wrong-final-value", error_category="register",
            max_solutions_per_injection=5, max_states_per_injection=5_000)
        injections = campaign.enumerate_injections()[:5]
        result = campaign.run(query, injections=injections)
        assert result.injections_run == 5

    def test_explicit_error_category_warns_but_plans_identically(self):
        workload = sum_input_workload(count=2, values=(3, 4))
        with pytest.deprecated_call():
            legacy_campaign, _ = generate_campaign(
                workload, kind="err-output", error_category="register")
        default_campaign, _ = generate_campaign(workload, kind="err-output")
        assert ([(i.breakpoint_pc, i.target) for i
                 in legacy_campaign.enumerate_injections()]
                == [(i.breakpoint_pc, i.target) for i
                    in default_campaign.enumerate_injections()])

    def test_workload_campaign_error_category_warns(self):
        with pytest.deprecated_call():
            factorial_workload().campaign(kind="err-output",
                                          error_category="register")

    def test_generate_campaign_defaults_expected_value_from_golden_run(self):
        workload = factorial_workload()
        campaign, query = generate_campaign(workload)
        assert "120" in query.description
