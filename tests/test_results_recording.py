"""Streaming ingestion, the store-backed campaign result and `repro report`.

The acceptance property behind the streaming mode — "coordinator memory
stays flat as the sweep grows" — is asserted here *directly* with
tracemalloc over fabricated fat results: retained sweeps peak linearly in
the sweep size, streamed sweeps peak at a handful of in-flight results
plus one store batch, no matter how many injections pass through.
"""

import gc
import tracemalloc

import pytest

from repro.constraints import Location
from repro.core import (ExecutionStrategy, SerialExecutionStrategy,
                        SymbolicCampaign, output_contains_err)
from repro.core.campaign import CampaignResult, InjectionResult
from repro.errors import Injection
from repro.machine import ExecutionConfig
from repro.programs import factorial_workload
from repro.results import (MemoryResultStore, OutcomeAggregates,
                           RecordingStrategy, SqliteResultStore,
                           StoredCampaignResult, StoredResultsView,
                           format_report)


@pytest.fixture()
def campaign():
    workload = factorial_workload()
    return SymbolicCampaign(
        workload.program, input_values=workload.default_input,
        memory=workload.data_segment, detectors=workload.detectors,
        execution_config=ExecutionConfig(
            max_steps=workload.recommended_max_steps),
        max_states_per_injection=20_000), workload.golden_output()


def without_elapsed(text):
    return [line for line in text.splitlines() if "elapsed seconds" not in line]


class TestStreamingEquivalence:
    def test_stored_result_is_byte_identical_to_in_memory(self, campaign):
        campaign, golden = campaign
        query = output_contains_err()
        plain = campaign.run(query)
        store = MemoryResultStore()
        recording = RecordingStrategy(SerialExecutionStrategy(), store,
                                      golden_output=golden)
        stored = campaign.run(query, strategy=recording)
        assert isinstance(stored, StoredCampaignResult)
        assert isinstance(stored.results, StoredResultsView)
        assert without_elapsed(stored.describe()) \
            == without_elapsed(plain.describe())
        assert [r.injection.label() for r in stored.results] \
            == [r.injection.label() for r in plain.results]
        assert stored.results[0].injection.label() \
            == plain.results[0].injection.label()
        assert stored.results[-1].injection.label() \
            == plain.results[-1].injection.label()
        assert stored.all_completed == plain.all_completed

    def test_store_aggregates_equal_in_memory_aggregates(self, campaign):
        """`repro report` reads these aggregates; they must equal a full
        in-memory fold of the same sweep."""
        campaign, golden = campaign
        query = output_contains_err()
        plain = campaign.run(query)
        store = MemoryResultStore()
        recording = RecordingStrategy(SerialExecutionStrategy(), store,
                                      golden_output=golden)
        campaign.run(query, strategy=recording)
        direct = OutcomeAggregates.from_campaign_result(plain, golden)
        assert recording.aggregates.as_dict() == direct.as_dict()
        assert store.aggregates(recording.campaign_id).as_dict() \
            == direct.as_dict()

    def test_streaming_returns_no_retained_results(self, campaign):
        campaign, golden = campaign
        query = output_contains_err()
        injections = campaign.plan_injections()
        store = MemoryResultStore()
        recording = RecordingStrategy(SerialExecutionStrategy(), store,
                                      golden_output=golden)
        returned = recording.run(campaign, injections, query)
        assert returned == []  # nothing retained by the coordinator
        result = recording.make_campaign_result(query, returned)
        assert isinstance(result, StoredCampaignResult)
        assert len(result.results) == len(injections)
        record = store.campaign(recording.campaign_id)
        assert record.finished and record.elapsed_seconds is not None

    def test_previously_installed_sink_still_sees_every_result(self, campaign):
        campaign, golden = campaign
        query = output_contains_err()
        injections = campaign.plan_injections()
        inner = SerialExecutionStrategy()
        seen = []
        inner.result_sink = lambda injection, result: seen.append(injection)
        recording = RecordingStrategy(inner, MemoryResultStore(),
                                      golden_output=golden)
        recording.run(campaign, injections, query)
        assert [i.label() for i in seen] == [i.label() for i in injections]
        assert inner.result_sink is not None  # restored, not clobbered

    def test_retained_mode_populates_the_same_rows(self, campaign):
        """`--checkpoint` forces retained mode; the warehouse rows must be
        the same ones streaming would have written."""
        campaign, golden = campaign
        query = output_contains_err()
        store = MemoryResultStore()
        recording = RecordingStrategy(SerialExecutionStrategy(), store,
                                      golden_output=golden, retain=True)
        result = campaign.run(query, strategy=recording)
        assert isinstance(result, CampaignResult)
        assert not isinstance(result, StoredCampaignResult)
        assert store.count(recording.campaign_id) == result.injections_run
        assert store.aggregates(recording.campaign_id).as_dict() \
            == OutcomeAggregates.from_campaign_result(result, golden).as_dict()


class FatResultStrategy(ExecutionStrategy):
    """Emits one fabricated result per injection, each carrying a payload
    of a known size — so coordinator retention shows up in tracemalloc as
    an unmistakable linear term."""

    name = "fat"

    def __init__(self, payload_bytes):
        self.payload_bytes = payload_bytes

    def run(self, campaign, injections, query, progress=None):
        retained = []
        for injection in injections:
            result = InjectionResult(injection=injection, activated=True)
            result.payload = bytes(self.payload_bytes)
            if self.retain_results:
                retained.append(result)
            self.emit_result(injection, result)
        return retained


class TestStreamingMemory:
    PAYLOAD = 128 * 1024
    SWEEP = 64

    def injections(self):
        return [Injection(breakpoint_pc=pc, target=Location.register(1))
                for pc in range(self.SWEEP)]

    def peak_of(self, run):
        gc.collect()
        tracemalloc.start()
        try:
            run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_streamed_peak_is_flat_retained_peak_is_linear(self, tmp_path):
        query = output_contains_err()

        def retained_run():
            strategy = FatResultStrategy(self.PAYLOAD)
            results = strategy.run(None, self.injections(), query)
            assert len(results) == self.SWEEP

        def streamed_run():
            store = SqliteResultStore(str(tmp_path / "stream.sqlite"),
                                      batch_size=4)
            recording = RecordingStrategy(FatResultStrategy(self.PAYLOAD),
                                          store)
            assert recording.run(None, self.injections(), query) == []
            assert store.count(recording.campaign_id) == self.SWEEP
            store.close()

        retained_peak = self.peak_of(retained_run)
        streamed_peak = self.peak_of(streamed_run)
        # Retained holds all SWEEP payloads at once; streaming holds the
        # in-flight result, its pickle and at most one store batch.
        assert retained_peak > self.SWEEP * self.PAYLOAD
        assert streamed_peak < retained_peak / 3


class TestReport:
    def test_report_sections_from_a_real_sweep(self, campaign):
        campaign, golden = campaign
        store = MemoryResultStore()
        recording = RecordingStrategy(
            SerialExecutionStrategy(), store, golden_output=golden,
            meta={"workload": "factorial", "fault_model": "register"})
        campaign.run(output_contains_err(), strategy=recording)
        report = format_report(store)
        assert "campaign 1" in report
        assert "workload=factorial" in report
        assert "outcome distribution (all campaigns):" in report
        assert "per-fault-model coverage:" in report
        assert "latent-error rates:" in report
        single = format_report(store, campaign_id=recording.campaign_id)
        assert "injections run" in single
        assert "solution outcome kinds" in single
        with pytest.raises(KeyError):
            format_report(store, campaign_id=999)
