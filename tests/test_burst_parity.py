"""Tests for the multi-error burst model and the symbolic-vs-bit-flip parity
study (`repro.faults` burst/bitflip, `repro.concrete.parity`,
`repro.results` parity report).

Covers: burst enumeration invariants and component-order preservation
through every carrier (pickle, broker manifest, checkpoint journal — a
hypothesis property over component permutations), serial-vs-pool identity
for a burst campaign, bit-flip read-modify-write semantics through the
shared fault-application path, the parity coverage rules, and the
superset property on factorial (every concrete bit-flip outcome class is
covered by the symbolic campaign).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concrete import ConcreteSimulator, run_parity_study
from repro.concrete.parity import SYMBOLIC_COVERS, covers
from repro.constraints import Location
from repro.core import (OutcomeKind, SerialExecutionStrategy,
                        SymbolicCampaign, any_outcome)
from repro.core.campaign import InjectionResult
from repro.distributed import CampaignManifest, FilesystemBroker
from repro.distributed.checkpoint import (CheckpointJournal, campaign_header,
                                          injection_key)
from repro.faults import (FAULT_MODELS, BitFlipFault, BitFlipFaultSpec,
                          BurstFault, BurstFaultSpec, FaultSpec, fault_model)
from repro.isa.values import ERR, is_err
from repro.machine import ExecutionConfig
from repro.machine.executor import apply_fault_set
from repro.machine.state import initial_state
from repro.parallel import (CampaignSpec, ParallelConfig,
                            ParallelExecutionStrategy, QuerySpec)
from repro.programs import factorial_campaign, load_workload
from repro.results import (MemoryResultStore, RecordingStrategy,
                           format_parity_report)
from repro.results.aggregates import SolutionOutcome


@pytest.fixture(scope="module")
def factorial():
    return load_workload("factorial")


# --------------------------------------------------------------- enumeration

class TestBurstEnumeration:
    def test_every_spec_is_a_burst_of_k_distinct_colocated_components(
            self, factorial):
        specs = fault_model("burst").enumerate(factorial.program,
                                               memory=factorial.data_segment)
        assert specs
        for spec in specs:
            assert isinstance(spec, BurstFaultSpec)
            assert len(spec.components) == 2
            targets = {(c.target.kind, c.target.index)
                       for c in spec.components}
            assert len(targets) == 2  # distinct locations
            for component in spec.components:
                assert component.breakpoint_pc == spec.breakpoint_pc
                assert component.occurrence == spec.occurrence
            assert spec.target == spec.components[0].target

    def test_burst_k_grows_the_combination_size(self, factorial):
        for spec in BurstFault(k=3).enumerate(factorial.program,
                                              memory=factorial.data_segment):
            assert len(spec.components) == 3

    def test_burst_rejects_k_below_two_and_self_composition(self, factorial):
        with pytest.raises(ValueError, match="k >= 2"):
            BurstFault(k=1).enumerate(factorial.program)
        with pytest.raises(ValueError, match="compose itself"):
            BurstFault(base_models=("burst",)).enumerate(factorial.program)
        with pytest.raises(ValueError, match="compose itself"):
            BitFlipFault(base_models=("bitflip",)).enumerate(factorial.program)

    def test_labels_are_unique_across_the_space(self, factorial):
        """Checkpoint journals key on labels: two bursts (or two bit
        positions) at one site must never collide."""
        for name in ("burst", "bitflip"):
            specs = FAULT_MODELS[name].enumerate(
                factorial.program, memory=factorial.data_segment)
            labels = [spec.label() for spec in specs]
            assert len(labels) == len(set(labels))


# ------------------------------------------------- component-order invariance

def _burst_with_components(order):
    components = tuple(
        FaultSpec(breakpoint_pc=4, target=Location.register(r),
                  model="register") for r in order)
    return BurstFaultSpec(breakpoint_pc=4, target=components[0].target,
                          model="burst", components=components)


class TestComponentOrderSurvivesTheCarriers:
    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations([1, 3, 4, 5]))
    def test_pickle_round_trip_preserves_component_order(self, order):
        spec = _burst_with_components(order)
        clone = pickle.loads(pickle.dumps(spec, protocol=4))
        assert clone == spec
        assert [c.target.index for c in clone.components] == list(order)
        assert all(c.value is ERR for c in clone.components)

    @settings(max_examples=10, deadline=None)
    @given(order=st.permutations([1, 3, 5]))
    def test_checkpoint_journal_round_trip_preserves_order(
            self, order, tmp_path_factory):
        spec = _burst_with_components(order)
        path = str(tmp_path_factory.mktemp("journal") / "journal.bin")
        journal = CheckpointJournal(path)
        journal.ensure_header({"id": "order-test"})
        journal.append_result(spec, InjectionResult(injection=spec,
                                                    activated=False))
        completed = CheckpointJournal(path).load_completed(
            expect_header={"id": "order-test"})
        (key, result), = completed.items()
        assert key == injection_key(spec) == spec.label()
        assert result.injection == spec
        assert [c.target.index
                for c in result.injection.components] == list(order)

    def test_broker_manifest_round_trip_preserves_order(
            self, tmp_path, factorial):
        campaign = SymbolicCampaign(factorial.program,
                                    fault_model=FAULT_MODELS["burst"])
        chunk = tuple(campaign.plan_injections(sample=4, seed=7))
        assert any(len(spec.components) == 2 for spec in chunk)
        broker = FilesystemBroker(str(tmp_path / "queue"))
        broker.reset()
        broker.publish_manifest(CampaignManifest(
            campaign_spec=CampaignSpec.from_campaign(campaign),
            query_spec=QuerySpec.predefined("err-output"),
            campaign_id="burst-rt"))
        broker.put_task(0, chunk)
        consumer = FilesystemBroker(str(tmp_path / "queue"))
        manifest = consumer.load_manifest(timeout=5)
        assert manifest.campaign_spec.fault_model == FAULT_MODELS["burst"]
        claim = consumer.claim_next()
        assert claim.payload == chunk
        for sent, got in zip(chunk, claim.payload):
            assert [c.target.index for c in got.components] \
                == [c.target.index for c in sent.components]

    def test_checkpoint_header_pins_burst_k(self):
        """Resuming a k=2 journal under k=3 must be refused: k rides the
        semantics digest."""
        k2, query = factorial_campaign(fault_model="burst")
        k3, _ = factorial_campaign(fault_model=BurstFault(k=3))
        assert campaign_header(k2, query)["semantics_digest"] \
            != campaign_header(k3, query)["semantics_digest"]

    def test_header_pins_the_dedup_knob(self):
        """--no-dedup changes what a search returns, so it is part of the
        journal identity (search_caps)."""
        on, query = factorial_campaign(fault_model="register")
        off, _ = factorial_campaign(fault_model="register",
                                    deduplicate_states=False)
        assert campaign_header(on, query)["search_caps"] \
            != campaign_header(off, query)["search_caps"]


# ----------------------------------------------------- application semantics

class TestFaultSetApplication:
    def test_burst_writes_every_component_through_the_cow_path(self):
        state = initial_state()
        state.write_register(3, 7)
        apply_fault_set(state, (_burst_with_components([1, 3]),))
        assert is_err(state.read_register(1))
        assert is_err(state.read_register(3))

    def test_bitflip_is_a_read_modify_write_xor(self):
        state = initial_state(memory={100: 0b1010})
        state.write_register(2, 5)
        apply_fault_set(state, (
            BitFlipFaultSpec(breakpoint_pc=0, target=Location.register(2),
                             model="bitflip", bit=1),
            BitFlipFaultSpec(breakpoint_pc=0, target=Location.memory(100),
                             model="bitflip", bit=3),
        ))
        assert state.read_register(2) == 5 ^ 2
        assert state.memory.get(100) == 0b0010

    def test_flipping_an_err_leaves_err(self):
        state = initial_state()
        state.write_register(2, ERR)
        apply_fault_set(state, (BitFlipFaultSpec(
            breakpoint_pc=0, target=Location.register(2),
            model="bitflip", bit=5),))
        assert is_err(state.read_register(2))

    def test_concrete_simulator_applies_the_same_flip(self, factorial):
        """run_with_spec and the symbolic injector share apply_fault_set: a
        flip of a dead register's high bit activates but stays harmless."""
        simulator = ConcreteSimulator(factorial.program,
                                      factorial.detectors, max_steps=2000)
        golden = simulator.golden_output(factorial.default_input,
                                         factorial.data_segment)
        run = simulator.run_with_spec(
            BitFlipFaultSpec(breakpoint_pc=0, target=Location.register(9),
                             model="bitflip", bit=30),
            input_values=factorial.default_input,
            memory=factorial.data_segment)
        assert run.activated
        assert run.output == golden


# ----------------------------------------------------- backend equivalence

class TestBurstBackendEquivalence:
    def test_pool_run_is_identical_to_serial_for_a_burst_campaign(self):
        """Includes the witness constraints in the projection: a burst of
        two errs can leave a purely relational constraint map (e.g.
        ``$(3) <= $(4)``), which must survive the worker->coordinator
        pickle byte-faithfully."""
        campaign, query = factorial_campaign(fault_model="burst",
                                             max_states_per_injection=4000)
        injections = campaign.plan_injections(sample=4, seed=7)
        serial = campaign.run(query, injections=injections)
        pooled = campaign.run(query, injections=injections,
                              strategy=ParallelExecutionStrategy(
                                  QuerySpec.predefined("err-output"),
                                  ParallelConfig(workers=2, chunk_size=2)))

        def projection(result):
            return [(r.injection, r.activated,
                     [(s.state.output_values(), s.depth,
                       s.state.constraints.describe())
                      for s in r.solutions])
                    for r in result.results]

        assert projection(serial) == projection(pooled)


# ------------------------------------------------------------- parity study

class TestParityCoverage:
    def test_err_output_abstracts_any_printed_resolution(self):
        assert covers("correct", frozenset({"err-output"}), True)
        assert covers("incorrect", frozenset({"err-output"}), True)
        assert not covers("crash", frozenset({"err-output"}), True)
        assert not covers("detected", frozenset({"err-output"}), True)

    def test_incomplete_symbolic_search_covers_a_concrete_hang(self):
        assert covers("hang", frozenset(), False)
        assert not covers("hang", frozenset(), True)
        assert covers("hang", frozenset({"hang"}), True)

    def test_every_concrete_kind_has_a_coverage_rule(self):
        assert set(SYMBOLIC_COVERS) == {kind.value for kind in OutcomeKind}

    def test_factorial_symbolic_campaign_covers_every_bit_flip_class(
            self, factorial):
        """The acceptance property (paper Section 6.3): on factorial, the
        one symbolic err campaign covers every outcome class any concrete
        single-bit flip produces, at every register injection point."""
        specs = fault_model("register").enumerate(
            factorial.program, memory=factorial.data_segment)
        report = run_parity_study(
            factorial.program, specs, factorial.golden_output(),
            input_values=factorial.default_input,
            memory=factorial.data_segment,
            detectors=factorial.detectors, max_steps=2000)
        assert report.rows
        assert report.all_covered, report.format_table()
        assert "all concrete outcome classes covered" in report.summary()
        kinds = set().union(*(row.concrete_kinds for row in report.rows))
        assert "hang" in kinds  # the study exercises the hard case

    def test_burst_specs_contribute_their_component_points(self, factorial):
        bursts = fault_model("burst").enumerate(
            factorial.program, memory=factorial.data_segment)[:1]
        report = run_parity_study(
            factorial.program, bursts, factorial.golden_output(),
            input_values=factorial.default_input,
            memory=factorial.data_segment,
            detectors=factorial.detectors, max_steps=2000)
        assert len(report.rows) == len(bursts[0].components)


# ------------------------------------------------------- warehouse parity

class TestWarehouseParityReport:
    def test_report_joins_symbolic_and_bitflip_campaigns(self, factorial):
        """The `repro report --parity` flow: one symbolic census campaign
        (dedup off so hangs reach the watchdog) and one bit-flip campaign
        into the same store; the report joins them per injection point."""
        store = MemoryResultStore(batch_size=4)
        golden = factorial.golden_output()
        for model, sample, dedup in (("register", None, False),
                                     ("bitflip", 64, True)):
            campaign, _ = factorial_campaign(
                fault_model=model, max_solutions_per_injection=10_000,
                max_states_per_injection=50_000, deduplicate_states=dedup,
                execution_config=ExecutionConfig(max_steps=2000))
            recording = RecordingStrategy(
                SerialExecutionStrategy(), store,
                meta={"program": "factorial", "fault_model": model},
                golden_output=golden)
            campaign.run(any_outcome(),
                         injections=campaign.plan_injections(sample=sample,
                                                             seed=7),
                         strategy=recording)
        text = format_parity_report(store)
        assert "factorial" in text
        assert "all concrete outcome classes covered" in text

    def test_outcome_kinds_by_point_unions_rows_at_one_point(self):
        """Two bit positions at one (pc, target) point fold into one row
        whose kinds set is the union — on both store backends (the sqlite
        side is exercised by the conformance suite too)."""
        store = MemoryResultStore(batch_size=1)
        campaign_id = store.begin_campaign({"program": "p"})
        for seq, (bit, kind) in enumerate(((0, "hang"), (1, "incorrect"))):
            spec = BitFlipFaultSpec(breakpoint_pc=1,
                                    target=Location.register(2),
                                    model="bitflip", bit=bit)
            store.append(campaign_id, seq,
                         InjectionResult(injection=spec, activated=True),
                         [SolutionOutcome(kind=kind)])
        store.flush()
        (point, (kinds, completed)), = \
            store.outcome_kinds_by_point(campaign_id).items()
        assert point == (1, repr(Location.register(2)))
        assert kinds == {"hang", "incorrect"}
        assert completed is True

    def test_non_activated_rows_do_not_create_points(self):
        store = MemoryResultStore(batch_size=1)
        campaign_id = store.begin_campaign({})
        spec = BitFlipFaultSpec(breakpoint_pc=9,
                                target=Location.register(1),
                                model="bitflip", bit=0)
        store.append(campaign_id, 0,
                     InjectionResult(injection=spec, activated=False), [])
        store.flush()
        assert store.outcome_kinds_by_point(campaign_id) == {}
