"""Tests for the assembler (parser) and the Program container."""

import pytest

from repro.isa.parser import AssemblyError, assemble, parse_instruction
from repro.isa.program import Program, ProgramBuilder, ProgramError
from repro.isa.instructions import make


SAMPLE = """
        ori $2 $0 #1        -- product
        read $1             ; read input
loop:   setgt $5 $3 $4      // condition
        beq $5 0 exit
        mult $2 $2 $3
        subi $3 $3 #1
        beq $0 0 loop
exit:   prints "done = "
        print $2
        halt
"""


class TestParseInstruction:
    def test_registers_and_immediates(self):
        instruction = parse_instruction("addi $3 $4 #-7")
        assert instruction.opcode == "addi"
        assert instruction.operands == (3, 4, -7)

    def test_bare_immediates_allowed(self):
        assert parse_instruction("beq $5 0 exit").operands == (5, 0, "exit")

    def test_commas_are_optional(self):
        assert parse_instruction("mov $3, $1").operands == (3, 1)

    def test_string_literal(self):
        instruction = parse_instruction('prints "Factorial = "')
        assert instruction.operands == ("Factorial = ",)

    def test_string_escapes(self):
        instruction = parse_instruction(r'prints "a\"b\n"')
        assert instruction.operands == ('a"b\n',)

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            parse_instruction("bogus $1 $2 $3")

    def test_wrong_operand_kind(self):
        with pytest.raises(AssemblyError):
            parse_instruction("add $1 $2 7")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblyError):
            parse_instruction("mov $32 $1")


class TestAssemble:
    def test_assembles_sample(self):
        program = assemble(SAMPLE, name="sample")
        assert len(program) == 10
        assert program.labels == {"loop": 2, "exit": 7}
        assert program.name == "sample"

    def test_comments_stripped(self):
        program = assemble(SAMPLE)
        assert program[0].opcode == "ori"

    def test_line_numbers_in_figure_style_are_ignored(self):
        program = assemble("1 ori $2 $0 #1\n2 halt\n")
        assert len(program) == 2

    def test_unknown_label_target_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("beq $0 0 nowhere\nhalt\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a: nop\na: halt\n")

    def test_label_on_own_line(self):
        program = assemble("start:\n  nop\n  halt\n")
        assert program.labels["start"] == 0

    def test_trailing_label_attaches_to_end(self):
        program = assemble("  beq $0 0 end\nend:\n")
        assert program.labels["end"] == 1

    def test_render_round_trip(self):
        program = assemble(SAMPLE)
        again = assemble(program.render())
        assert [i.render() for i in again] == [i.render() for i in program]
        assert again.labels == program.labels


class TestProgram:
    def test_fetch_and_validity(self):
        program = assemble("nop\nhalt\n")
        assert program.is_valid_address(0)
        assert program.is_valid_address(1)
        assert not program.is_valid_address(2)
        assert not program.is_valid_address(-1)
        assert not program.is_valid_address(True)
        assert program.fetch(0).opcode == "nop"
        assert program.fetch(5) is None

    def test_resolve(self):
        program = assemble("x: nop\nhalt\n")
        assert program.resolve("x") == 0
        with pytest.raises(ProgramError):
            program.resolve("missing")

    def test_label_addresses_sorted_unique(self):
        program = assemble("a: nop\nb: c: nop\nhalt\n")
        assert program.label_addresses() == (0, 1)
        assert program.labels_at(1) == ("b", "c")

    def test_control_transfer_targets_include_fallthrough(self):
        program = assemble("beq $0 0 end\nnop\nend: halt\n")
        targets = program.control_transfer_targets()
        assert 2 in targets      # label
        assert 1 in targets      # fall-through of the branch

    def test_source_line_defaults_to_render(self):
        program = Program(code=(make("nop"),), labels={})
        assert program.source_line(0) == "nop"


class TestProgramBuilder:
    def test_duplicate_pending_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("x")
        with pytest.raises(ProgramError):
            builder.label("x")

    def test_builder_tracks_addresses(self):
        builder = ProgramBuilder()
        assert builder.next_address == 0
        builder.emit(make("nop"))
        assert builder.next_address == 1
        builder.label("end")
        program = builder.build()
        assert program.labels["end"] == 1
