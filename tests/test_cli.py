"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("""
        read $1
        addi $2 $1 10
        print $2
        halt
    """)
    return str(path)


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        int main() { int x; read(x); print(x * 3); return 0; }
    """)
    return str(path)


@pytest.fixture()
def detector_file(tmp_path):
    path = tmp_path / "dets.txt"
    path.write_text("det(1, $(2), >=, (0))\n")
    return str(path)


class TestRunCommand:
    def test_run_bundled_workload(self, capsys):
        assert main(["run", "--workload", "factorial", "--input", "4"]) == 0
        out = capsys.readouterr().out
        assert "halted" in out and "24" in out

    def test_run_assembly_file(self, asm_file, capsys):
        assert main(["run", "--program", asm_file, "--input", "7"]) == 0
        assert "17" in capsys.readouterr().out

    def test_run_minic_file(self, minic_file, capsys):
        assert main(["run", "--minic", minic_file, "--input", "5"]) == 0
        assert "15" in capsys.readouterr().out

    def test_run_crashing_program_returns_nonzero(self, asm_file, capsys):
        # no input provided -> the read instruction crashes
        assert main(["run", "--program", asm_file]) == 1
        assert "input exhausted" in capsys.readouterr().out

    def test_exactly_one_source_required(self, asm_file):
        with pytest.raises(SystemExit):
            main(["run", "--program", asm_file, "--workload", "factorial"])
        with pytest.raises(SystemExit):
            main(["run"])


class TestAnalyzeCommand:
    def test_analyze_finds_err_outputs(self, capsys):
        code = main(["analyze", "--workload", "factorial", "--input", "5",
                     "--error-class", "register", "--query", "err-output",
                     "--max-injections", "8", "--max-states", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "injections run" in out
        assert "err-output" in out or "total solutions" in out

    def test_analyze_with_detector_file(self, asm_file, detector_file, capsys):
        code = main(["analyze", "--program", asm_file, "--input", "7",
                     "--detectors", detector_file, "--query", "crash",
                     "--max-injections", "5", "--max-states", "2000"])
        assert code == 0
        assert "query" in capsys.readouterr().out

    def test_analyze_resilient_program_reports_proof(self, tmp_path, capsys):
        path = tmp_path / "trivial.asm"
        path.write_text("print $0\nhalt\n")
        code = main(["analyze", "--program", str(path), "--query", "crash",
                     "--max-states", "2000"])
        assert code == 0
        assert "resilient" in capsys.readouterr().out


class TestConcreteCommand:
    def test_concrete_campaign(self, capsys):
        code = main(["concrete", "--workload", "factorial", "--input", "5",
                     "--max-injections", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Program outcome distribution" in out
        assert "total faults" in out
