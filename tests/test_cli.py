"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("""
        read $1
        addi $2 $1 10
        print $2
        halt
    """)
    return str(path)


@pytest.fixture()
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        int main() { int x; read(x); print(x * 3); return 0; }
    """)
    return str(path)


@pytest.fixture()
def detector_file(tmp_path):
    path = tmp_path / "dets.txt"
    path.write_text("det(1, $(2), >=, (0))\n")
    return str(path)


class TestRunCommand:
    def test_run_bundled_workload(self, capsys):
        assert main(["run", "--workload", "factorial", "--input", "4"]) == 0
        out = capsys.readouterr().out
        assert "halted" in out and "24" in out

    def test_run_assembly_file(self, asm_file, capsys):
        assert main(["run", "--program", asm_file, "--input", "7"]) == 0
        assert "17" in capsys.readouterr().out

    def test_run_minic_file(self, minic_file, capsys):
        assert main(["run", "--minic", minic_file, "--input", "5"]) == 0
        assert "15" in capsys.readouterr().out

    def test_run_crashing_program_returns_nonzero(self, asm_file, capsys):
        # no input provided -> the read instruction crashes
        assert main(["run", "--program", asm_file]) == 1
        assert "input exhausted" in capsys.readouterr().out

    def test_exactly_one_source_required(self, asm_file):
        with pytest.raises(SystemExit):
            main(["run", "--program", asm_file, "--workload", "factorial"])
        with pytest.raises(SystemExit):
            main(["run"])


class TestAnalyzeCommand:
    def test_analyze_finds_err_outputs(self, capsys):
        code = main(["analyze", "--workload", "factorial", "--input", "5",
                     "--error-class", "register", "--query", "err-output",
                     "--max-injections", "8", "--max-states", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "injections run" in out
        assert "err-output" in out or "total solutions" in out

    def test_analyze_with_detector_file(self, asm_file, detector_file, capsys):
        code = main(["analyze", "--program", asm_file, "--input", "7",
                     "--detectors", detector_file, "--query", "crash",
                     "--max-injections", "5", "--max-states", "2000"])
        assert code == 0
        assert "query" in capsys.readouterr().out

    def test_analyze_resilient_program_reports_proof(self, tmp_path, capsys):
        path = tmp_path / "trivial.asm"
        path.write_text("print $0\nhalt\n")
        code = main(["analyze", "--program", str(path), "--query", "crash",
                     "--max-states", "2000"])
        assert code == 0
        assert "resilient" in capsys.readouterr().out


class TestConcreteCommand:
    def test_concrete_campaign(self, capsys):
        code = main(["concrete", "--workload", "factorial", "--input", "5",
                     "--max-injections", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Program outcome distribution" in out
        assert "total faults" in out


def analyze_output(capsys, *arguments):
    code = main(["analyze", "--workload", "factorial", "--query", "err-output",
                 "--max-injections", "6", "--max-states", "5000", *arguments])
    assert code == 0
    return capsys.readouterr().out


def normalized(output):
    """Strip timing and backend-identity lines (the CI smoke's projection)."""
    return [line for line in output.splitlines()
            if "elapsed seconds" not in line
            and not line.startswith(("workers", "backend"))]


class TestAnalyzeValidation:
    def test_max_injections_zero_is_rejected_with_clear_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--workload", "factorial", "--max-injections", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_max_injections_zero_rejected_for_concrete_too(self, capsys):
        with pytest.raises(SystemExit):
            main(["concrete", "--workload", "factorial", "--max-injections", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_chunk_size_zero_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--workload", "factorial", "--chunk-size", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_chunk_size_larger_than_sweep_runs_one_chunk(self, capsys):
        """An oversized --chunk-size must degrade to a single full chunk,
        never to empty chunks (regression for the chunking edge case)."""
        out = analyze_output(capsys, "--workers", "2", "--chunk-size", "999")
        assert "injections run             : 6" in out

    def test_backend_serial_with_workers_conflicts(self):
        with pytest.raises(SystemExit, match="serial"):
            main(["analyze", "--workload", "factorial", "--backend", "serial",
                  "--workers", "2"])

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="checkpoint"):
            main(["analyze", "--workload", "factorial", "--resume"])

    def test_queue_requires_distributed_backend(self, tmp_path):
        with pytest.raises(SystemExit, match="distributed"):
            main(["analyze", "--workload", "factorial", "--queue",
                  str(tmp_path / "q")])

    def test_workers_zero_requires_distributed_backend(self):
        with pytest.raises(SystemExit, match="distributed"):
            main(["analyze", "--workload", "factorial", "--workers", "0"])

    def test_workers_zero_with_distributed_requires_queue(self):
        with pytest.raises(SystemExit, match="queue"):
            main(["analyze", "--workload", "factorial", "--backend",
                  "distributed", "--workers", "0"])

    def test_chunk_size_requires_a_chunked_backend(self):
        with pytest.raises(SystemExit, match="chunk"):
            main(["analyze", "--workload", "factorial", "--chunk-size", "4"])

    def test_negative_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--workload", "factorial", "--workers", "-1"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_task_granularity_requires_a_task_backend(self):
        with pytest.raises(SystemExit, match="granularity"):
            main(["analyze", "--workload", "factorial",
                  "--granularity", "task"])

    def test_fault_model_and_error_class_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["analyze", "--workload", "factorial",
                  "--fault-model", "register", "--error-class", "register"])

    def test_seed_requires_sample(self):
        with pytest.raises(SystemExit, match="--sample"):
            main(["analyze", "--workload", "factorial", "--seed", "3"])


class TestQueueLocatorValidation:
    """Unknown --queue schemes and malformed tcp:// locators must exit with
    a one-line error, not a traceback (regression)."""

    def test_worker_rejects_an_unknown_queue_scheme(self):
        with pytest.raises(SystemExit, match="unknown queue scheme 'redis'"):
            main(["worker", "--queue", "redis://localhost:6379"])

    def test_worker_rejects_a_malformed_tcp_locator(self):
        with pytest.raises(SystemExit, match="tcp://HOST:PORT"):
            main(["worker", "--queue", "tcp://nohost"])

    def test_analyze_rejects_an_unknown_queue_scheme(self):
        with pytest.raises(SystemExit, match="unknown queue scheme 'tpc'"):
            main(["analyze", "--workload", "factorial", "--backend",
                  "distributed", "--workers", "2",
                  "--queue", "tpc://localhost:1"])

    def test_analyze_rejects_a_portless_tcp_locator(self):
        with pytest.raises(SystemExit, match="tcp://HOST:PORT"):
            main(["analyze", "--workload", "factorial", "--backend",
                  "distributed", "--workers", "2", "--queue", "tcp://host"])

    def test_analyze_rejects_an_out_of_range_port(self):
        with pytest.raises(SystemExit, match="port out of range"):
            main(["analyze", "--workload", "factorial", "--backend",
                  "distributed", "--workers", "2",
                  "--queue", "tcp://host:99999"])


class TestAnalyzeBackends:
    def test_explicit_pool_backend_matches_serial(self, capsys):
        serial = analyze_output(capsys)
        pooled = analyze_output(capsys, "--backend", "pool", "--workers", "2")
        assert "backend        : pool" in pooled
        assert normalized(serial) == normalized(pooled)

    def test_distributed_backend_matches_serial(self, capsys):
        serial = analyze_output(capsys)
        distributed = analyze_output(capsys, "--backend", "distributed",
                                     "--workers", "2")
        assert "backend        : distributed" in distributed
        assert normalized(serial) == normalized(distributed)

    def test_task_granularity_on_the_pool_matches_serial(self, capsys):
        """Whole search tasks through the pool's task strategy must flatten
        back into the identical per-injection campaign output."""
        serial = analyze_output(capsys)
        tasked = analyze_output(capsys, "--backend", "pool", "--workers", "2",
                                "--granularity", "task")
        assert normalized(serial) == normalized(tasked)

    def test_checkpoint_then_resume_completes_identically(self, tmp_path,
                                                          capsys):
        journal = str(tmp_path / "ckpt.pkl")
        serial = analyze_output(capsys)
        # Partial sweep, then a resumed full sweep over the same journal.
        main(["analyze", "--workload", "factorial", "--query", "err-output",
              "--max-injections", "3", "--max-states", "5000",
              "--checkpoint", journal])
        capsys.readouterr()
        resumed = analyze_output(capsys, "--checkpoint", journal, "--resume")
        assert normalized(serial) == normalized(resumed)

    def test_shared_cache_keeps_output_identical(self, tmp_path, capsys):
        serial = analyze_output(capsys)
        cached = analyze_output(capsys, "--shared-cache",
                                str(tmp_path / "cache.db"))
        again = analyze_output(capsys, "--shared-cache",
                               str(tmp_path / "cache.db"))
        assert normalized(serial) == normalized(cached) == normalized(again)


def fault_model_output(capsys, model, *arguments, workload="memory_walk"):
    code = main(["analyze", "--workload", workload, "--query", "err-output",
                 "--fault-model", model, "--sample", "5", "--seed", "7",
                 "--max-states", "5000", *arguments])
    assert code == 0
    return capsys.readouterr().out


class TestAnalyzeFaultModels:
    @pytest.mark.parametrize("model", ["register", "memory", "control",
                                       "operand"])
    def test_every_model_sweeps_and_reports(self, model, capsys):
        out = fault_model_output(capsys, model)
        assert f"fault model    : {model}" in out
        # The printed count is the *clamped* sample size: memory_walk's
        # memory-model space is a single injection, so --sample 5 sweeps 1.
        import re
        match = re.search(r"sampled        : (\d+) \(seed 7\)", out)
        assert match is not None
        assert int(match.group(1)) <= 5
        run = re.search(r"injections run             : (\d+)", out)
        assert run is not None and int(run.group(1)) == int(match.group(1))

    def test_sampled_sweep_is_reproducible(self, capsys):
        first = fault_model_output(capsys, "operand")
        second = fault_model_output(capsys, "operand")
        assert normalized(first) == normalized(second)

    def test_fault_model_pool_backend_matches_serial(self, capsys):
        serial = fault_model_output(capsys, "register")
        pooled = fault_model_output(capsys, "register",
                                    "--backend", "pool", "--workers", "2")
        assert normalized(serial) == normalized(pooled)

    def test_fault_model_distributed_backend_matches_serial(self, capsys):
        serial = fault_model_output(capsys, "control")
        distributed = fault_model_output(capsys, "control", "--backend",
                                         "distributed", "--workers", "2")
        assert normalized(serial) == normalized(distributed)

    def test_latent_err_query_is_exposed(self, capsys):
        code = main(["analyze", "--workload", "memory_walk",
                     "--fault-model", "memory", "--query", "latent-err",
                     "--max-states", "5000"])
        assert code == 0
        assert "final state retains err" in capsys.readouterr().out


class TestResultsWarehouse:
    def test_analyze_streams_into_a_store_and_report_reads_it(
            self, tmp_path, capsys):
        db = str(tmp_path / "warehouse.sqlite")
        assert main(["analyze", "--workload", "factorial", "--query",
                     "err-output", "--max-injections", "6",
                     "--results", db]) == 0
        captured = capsys.readouterr()
        assert "results store: " in captured.err
        assert "campaign 1" in captured.err
        assert main(["report", "--results", db]) == 0
        report = capsys.readouterr().out
        assert "campaign 1" in report
        assert "workload=factorial" in report
        assert "outcome distribution (all campaigns):" in report

    def test_store_backed_output_matches_in_memory_output(self, tmp_path,
                                                          capsys):
        plain = fault_model_output(capsys, "register")
        stored = fault_model_output(
            capsys, "register",
            "--results", str(tmp_path / "warehouse.sqlite"))
        assert normalized(plain) == normalized(stored)

    def test_report_accumulates_campaigns_across_runs(self, tmp_path, capsys):
        db = str(tmp_path / "warehouse.sqlite")
        fault_model_output(capsys, "register", "--results", db)
        fault_model_output(capsys, "operand", "--results", db)
        assert main(["report", "--results", db]) == 0
        report = capsys.readouterr().out
        assert "campaign 1" in report and "campaign 2" in report
        assert main(["report", "--results", db, "--campaign", "2"]) == 0
        assert "injections run" in capsys.readouterr().out

    def test_report_on_a_missing_store_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "--results", str(tmp_path / "missing.sqlite")])

    def test_oversized_sample_clamps_at_the_cli(self, capsys):
        with pytest.warns(RuntimeWarning, match="exceeds the enumerated"):
            code = main(["analyze", "--workload", "factorial", "--query",
                         "err-output", "--fault-model", "register",
                         "--sample", "100000", "--max-states", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled" in out
        assert "100000" not in out  # the printed count is the clamped one


class TestIsaSelection:
    def test_isa_line_printed_only_when_selected(self, capsys):
        default = analyze_output(capsys)
        assert "isa            :" not in default
        retargeted = analyze_output(capsys, "--isa", "rv32im")
        assert "isa            : rv32im" in retargeted

    @pytest.mark.parametrize("isa", ["mips", "rv32im"])
    def test_retargeted_campaign_matches_native_sweep(self, isa, capsys):
        """Retargeting is structurally 1:1: apart from the extra header line
        and source-line provenance (witnesses quote the target ISA's assembly
        spelling), the campaign results must match the native build."""
        def masked(output):
            return [line if "source line" not in line
                    else line.split("source line")[0]
                    for line in normalized(output)
                    if not line.startswith("isa")]
        native = analyze_output(capsys)
        retargeted = analyze_output(capsys, "--isa", isa)
        assert masked(native) == masked(retargeted)

    def test_rv32im_register_pool_matches_serial(self, capsys):
        """The acceptance criterion: --isa rv32im --fault-model register is
        byte-identical across the serial and pool backends."""
        serial = analyze_output(capsys, "--isa", "rv32im",
                                "--fault-model", "register")
        pooled = analyze_output(capsys, "--isa", "rv32im",
                                "--fault-model", "register",
                                "--backend", "pool", "--workers", "2")
        assert normalized(serial) == normalized(pooled)

    def test_isa_applies_to_run_and_concrete(self, capsys):
        assert main(["run", "--workload", "factorial", "--input", "4",
                     "--isa", "rv32im"]) == 0
        assert "24" in capsys.readouterr().out
        assert main(["concrete", "--workload", "factorial",
                     "--max-injections", "4", "--isa", "rv32im"]) == 0
        capsys.readouterr()

    def test_isa_retargets_translated_mips_sources(self, tmp_path, capsys):
        path = tmp_path / "prog.s"
        path.write_text("""
        read $t0
        addi $t1, $t0, 10
        print $t1
        halt
        """)
        assert main(["run", "--mips", str(path), "--input", "7",
                     "--isa", "rv32im"]) == 0
        assert "17" in capsys.readouterr().out


class TestIsaAndFaultModelValidation:
    def test_unknown_isa_is_one_line_error_listing_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workload", "factorial", "--isa", "z80"])
        message = str(excinfo.value)
        assert "unknown ISA frontend 'z80'" in message
        assert "mips" in message and "rv32im" in message
        assert "\n" not in message.strip()

    def test_unknown_isa_rejected_for_run_too(self):
        with pytest.raises(SystemExit, match="unknown ISA frontend"):
            main(["run", "--workload", "factorial", "--isa", "z80"])

    def test_unknown_fault_model_is_one_line_error_listing_registered(
            self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--workload", "factorial",
                  "--fault-model", "gamma-ray"])
        message = str(excinfo.value)
        assert "unknown fault model 'gamma-ray'" in message
        assert "register" in message and "memory" in message
        assert "burst" in message and "bitflip" in message
        assert "\n" not in message.strip()
