"""Tests for symbolic campaigns, task decomposition and witnesses."""

import pytest

from repro.core import (SerialTaskStrategy, SymbolicCampaign, TaskRunner,
                        TaskSweepStrategy, decompose_by_code_section,
                        decompose_by_injection, output_contains_err,
                        printed_value_other_than, witnesses_from_campaign)
from repro.errors import Injection
from repro.constraints import Location
from repro.machine import ExecutionConfig
from repro.programs import (factorial_workload,
                            factorial_with_detectors_workload,
                            loop_counter_injection_pc, sum_input_workload)


def make_campaign(workload, **kwargs):
    defaults = dict(max_solutions_per_injection=20,
                    max_states_per_injection=20_000)
    defaults.update(kwargs)
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=workload.recommended_max_steps),
        **defaults)


class TestSymbolicCampaign:
    def test_enumerate_injections_covers_program(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        injections = campaign.enumerate_injections()
        assert injections
        assert all(0 <= i.breakpoint_pc < len(workload.program) for i in injections)

    def test_single_injection_result(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        subi_pc = loop_counter_injection_pc(workload)
        injection = Injection(breakpoint_pc=subi_pc + 1, target=Location.register(3))
        result = campaign.run_injection(injection, output_contains_err())
        assert result.activated
        assert result.found_solutions

    def test_unactivated_injection(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        # The halt instruction is at the end; a breakpoint past it with
        # occurrence 2 can never be reached twice.
        injection = Injection(breakpoint_pc=0, target=Location.register(2),
                              occurrence=2)
        result = campaign.run_injection(injection, output_contains_err())
        assert not result.activated
        assert not result.found_solutions
        assert result.completed

    def test_full_campaign_on_small_program(self):
        workload = sum_input_workload(count=2, values=(3, 4))
        campaign = make_campaign(workload, max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        golden = workload.golden_output()
        query = printed_value_other_than(golden[-1])
        result = campaign.run(query)
        assert result.injections_run == len(campaign.enumerate_injections())
        assert result.injections_activated > 0
        assert result.total_solutions >= result.injections_with_solutions
        assert "injections run" in result.describe()
        # classification against the golden output never yields "correct"
        for _injection, outcome in result.outcomes(golden):
            assert outcome.kind.value != "correct"

    def test_detectors_catch_some_errors(self):
        """For the Figure 3 program, the same loop-counter error that slips
        through the unprotected program is caught by detector 2 on at least
        one execution path (Section 4.2)."""
        from repro.core import detected

        protected = factorial_with_detectors_workload()
        campaign = make_campaign(protected, max_solutions_per_injection=50,
                                 max_states_per_injection=30_000)
        subi_pc = next(i for i, ins in enumerate(protected.program.code)
                       if ins.opcode == "subi")
        injections = [Injection(breakpoint_pc=subi_pc + 1,
                                target=Location.register(3))]
        detected_result = campaign.run(detected(), injections=injections)
        assert detected_result.total_solutions > 0
        # ... but not every path is caught: some errors still evade detection.
        missed_result = campaign.run(output_contains_err(), injections=injections)
        assert missed_result.total_solutions > 0

    def test_progress_callback(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        injections = campaign.enumerate_injections()[:3]
        seen = []
        campaign.run(output_contains_err(), injections=injections,
                     progress=lambda done, total, result: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestTaskDecomposition:
    def sample_injections(self, count=10):
        return [Injection(breakpoint_pc=pc, target=Location.register(1))
                for pc in range(count)]

    def test_decompose_by_code_section_partitions_everything(self):
        injections = self.sample_injections(10)
        tasks = decompose_by_code_section(injections, num_tasks=3)
        assert len(tasks) == 3
        flattened = [i for task in tasks for i in task.injections]
        assert sorted(i.breakpoint_pc for i in flattened) == list(range(10))
        # contiguous sections
        for task in tasks:
            pcs = [i.breakpoint_pc for i in task.injections]
            assert pcs == sorted(pcs)

    def test_more_tasks_than_injections(self):
        tasks = decompose_by_code_section(self.sample_injections(2), num_tasks=10)
        assert len(tasks) == 2

    def test_invalid_task_count(self):
        with pytest.raises(ValueError):
            decompose_by_code_section(self.sample_injections(2), num_tasks=0)

    def test_decompose_by_injection(self):
        tasks = decompose_by_injection(self.sample_injections(4))
        assert len(tasks) == 4
        assert all(len(task) == 1 for task in tasks)

    def test_empty_campaign_decomposes_to_no_tasks(self):
        assert decompose_by_code_section([], num_tasks=5) == []
        assert decompose_by_injection([]) == []

    def test_empty_campaign_report_is_all_zero(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        runner = TaskRunner(campaign)
        report = runner.run([], output_contains_err())
        assert report.total_tasks == 0
        assert report.completed_tasks == 0
        assert report.total_errors_found == 0
        assert report.average_completion_seconds() == 0.0
        assert report.max_completion_seconds() == 0.0

    def test_empty_campaign_run_produces_empty_result(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        result = campaign.run(output_contains_err(), injections=[])
        assert result.injections_run == 0
        assert result.total_solutions == 0
        assert result.solutions() == []


class TestTaskSweepStrategy:
    """The adapter that runs an injection sweep as whole search tasks."""

    def sweep_fixture(self, max_injections=8):
        workload = factorial_workload()
        campaign = make_campaign(workload, max_solutions_per_injection=10,
                                 max_states_per_injection=10_000)
        injections = campaign.enumerate_injections()[:max_injections]
        return campaign, injections

    @staticmethod
    def keys(results):
        return [(r.injection.label(), r.activated, r.completed,
                 [s.state.output_values() for s in r.solutions])
                for r in results]

    def test_sweep_through_tasks_matches_direct_sweep(self):
        campaign, injections = self.sweep_fixture()
        query = output_contains_err()
        direct = campaign.run(query, injections=injections)
        swept = campaign.run(
            query, injections=injections,
            strategy=TaskSweepStrategy(SerialTaskStrategy(), chunk_size=3))
        assert self.keys(swept.results) == self.keys(direct.results)
        assert swept.injections_run == direct.injections_run

    def test_results_are_emitted_incrementally_per_task(self):
        campaign, injections = self.sweep_fixture(max_injections=6)
        strategy = TaskSweepStrategy(SerialTaskStrategy(), chunk_size=2)
        emitted = []
        strategy.result_sink = lambda injection, result: \
            emitted.append(injection.label())
        progress = []
        campaign.run(output_contains_err(), injections=injections,
                     progress=lambda done, total, last:
                     progress.append((done, total)),
                     strategy=strategy)
        assert emitted == [i.label() for i in injections]
        assert progress == [(2, 6), (4, 6), (6, 6)]

    def test_empty_sweep(self):
        campaign, _ = self.sweep_fixture()
        strategy = TaskSweepStrategy(SerialTaskStrategy())
        assert strategy.run(campaign, [], output_contains_err()) == []

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            TaskSweepStrategy(SerialTaskStrategy(), chunk_size=0)


class TestTaskRunner:
    def test_task_report_statistics(self):
        workload = factorial_workload()
        campaign = make_campaign(workload, max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        injections = campaign.enumerate_injections()
        tasks = decompose_by_code_section(injections, num_tasks=4)
        runner = TaskRunner(campaign, max_errors_per_task=5)
        report = runner.run(tasks, output_contains_err())
        assert report.total_tasks == 4
        assert report.completed_tasks + report.incomplete_tasks == 4
        assert report.tasks_with_errors + report.tasks_without_errors \
            <= report.completed_tasks
        assert report.total_errors_found >= report.tasks_with_errors
        assert report.average_completion_seconds() >= 0.0
        assert "search tasks" in report.describe()

    def test_error_cap_limits_task(self):
        workload = factorial_workload()
        campaign = make_campaign(workload, max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        injections = campaign.enumerate_injections()
        tasks = decompose_by_code_section(injections, num_tasks=1)
        runner = TaskRunner(campaign, max_errors_per_task=1)
        report = runner.run(tasks, output_contains_err())
        task_result = report.task_results[0]
        # the task stops sweeping soon after the first errors are found
        assert len(task_result.results) < len(injections)

    def test_wall_clock_cap_marks_incomplete(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        injections = campaign.enumerate_injections()
        tasks = decompose_by_code_section(injections, num_tasks=1)
        runner = TaskRunner(campaign, max_errors_per_task=10_000,
                            wall_clock_per_task=0.0)
        report = runner.run(tasks, output_contains_err())
        assert report.incomplete_tasks == 1


class TestWitnesses:
    def test_witness_rendering(self):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        subi_pc = loop_counter_injection_pc(workload)
        injections = [Injection(breakpoint_pc=subi_pc + 1,
                                target=Location.register(3))]
        result = campaign.run(output_contains_err(), injections=injections)
        witnesses = witnesses_from_campaign(workload.program, result,
                                            golden_output=workload.golden_output())
        assert witnesses
        text = witnesses[0].render()
        assert "injection" in text
        assert "outcome" in text
        assert witnesses[0].outcome.kind.value in text
