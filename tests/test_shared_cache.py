"""Tests for the cross-process shared search-result cache."""

import pytest

from repro.core import (BoundedModelChecker, SharedSearchResultCache,
                        SymbolicCampaign, executor_digest, output_contains_err,
                        stable_state_digest)
from repro.errors.injector import prepare_injected_state
from repro.machine import ExecutionConfig
from repro.machine.executor import Executor
from repro.parallel import (CacheSpec, CampaignSpec, ParallelConfig,
                            QuerySpec, run_campaign_parallel)
from repro.programs import factorial_workload

WORKERS = 2


def make_campaign(workload, **kwargs):
    defaults = dict(max_solutions_per_injection=10,
                    max_states_per_injection=10_000)
    defaults.update(kwargs)
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=workload.recommended_max_steps),
        **defaults)


def result_keys(campaign_result):
    return [(r.injection.label(), r.activated, r.completed,
             [s.state.output_values() for s in r.solutions],
             [s.state.status.value for s in r.solutions])
            for r in campaign_result.results]


def injected_search_fixture():
    workload = factorial_workload()
    campaign = make_campaign(workload)
    injection = campaign.enumerate_injections()[0]
    injected = prepare_injected_state(workload.program, injection,
                                      campaign.fresh_initial_state())
    executor = Executor(workload.program, workload.detectors,
                        campaign.execution_config)
    return executor, injected


class TestStableDigests:
    def test_executor_digest_stable_across_rebuilds(self):
        campaign_a = make_campaign(factorial_workload())
        spec = CampaignSpec.from_campaign(campaign_a)
        campaign_b = spec.build()
        assert executor_digest(campaign_a._executor) \
            == executor_digest(campaign_b._executor)

    def test_executor_digest_distinguishes_configs(self):
        workload = factorial_workload()
        campaign_a = make_campaign(workload)
        campaign_b = make_campaign(workload)
        campaign_b.execution_config = ExecutionConfig(max_steps=123)
        executor_b = Executor(workload.program, workload.detectors,
                              campaign_b.execution_config)
        assert executor_digest(campaign_a._executor) \
            != executor_digest(executor_b)

    def test_state_digest_ignores_write_history(self):
        campaign = make_campaign(factorial_workload())
        state_a = campaign.fresh_initial_state()
        state_b = campaign.fresh_initial_state()
        state_a.write_memory(10, 7)
        state_a.write_memory(20, 9)
        state_b.write_memory(20, 9)  # same content, different write order
        state_b.write_memory(10, 7)
        assert stable_state_digest(state_a) == stable_state_digest(state_b)

    def test_state_digest_distinguishes_content(self):
        campaign = make_campaign(factorial_workload())
        state_a = campaign.fresh_initial_state()
        state_b = campaign.fresh_initial_state()
        state_b.write_register(3, 99)
        assert stable_state_digest(state_a) != stable_state_digest(state_b)


class TestSharedSearchResultCache:
    def test_hit_across_instances(self, tmp_path):
        """A second process (modelled by a second instance) reuses stored
        searches — the cross-process sharing the ROADMAP asked for."""
        path = str(tmp_path / "cache.db")
        executor, injected = injected_search_fixture()
        query = output_contains_err()

        writer = SharedSearchResultCache(path)
        checker = BoundedModelChecker(executor, max_solutions=50,
                                      max_states=50_000, result_cache=writer)
        first = checker.search_single(injected.copy(), query)
        assert (writer.statistics.misses, writer.statistics.stores) == (1, 1)
        assert len(writer) == 1

        reader = SharedSearchResultCache(path)
        checker_b = BoundedModelChecker(executor, max_solutions=50,
                                        max_states=50_000, result_cache=reader)
        second = checker_b.search_single(injected.copy(), query)
        assert (reader.statistics.hits, reader.statistics.misses) == (1, 0)
        assert second.completed == first.completed
        assert [s.state.output_values() for s in second.solutions] \
            == [s.state.output_values() for s in first.solutions]
        writer.close()
        reader.close()

    def test_distinguishes_queries_and_caps(self, tmp_path):
        from repro.core import halted_normally
        path = str(tmp_path / "cache.db")
        executor, injected = injected_search_fixture()
        cache = SharedSearchResultCache(path)
        checker = BoundedModelChecker(executor, max_solutions=50,
                                      max_states=50_000, result_cache=cache)
        checker.search_single(injected.copy(), output_contains_err())
        checker.search_single(injected.copy(), halted_normally())
        checker.max_states = 40_000
        checker.search_single(injected.copy(), output_contains_err())
        assert cache.statistics.hits == 0
        assert len(cache) == 3
        cache.close()

    def test_store_overwrite_is_idempotent(self, tmp_path):
        cache = SharedSearchResultCache(str(tmp_path / "cache.db"))
        executor, injected = injected_search_fixture()
        query = output_contains_err()
        checker = BoundedModelChecker(executor, max_solutions=50,
                                      max_states=50_000)
        result = checker.search_single(injected.copy(), query)
        key = cache.make_key(executor, injected, query, ("caps",))
        cache.store(key, result)
        cache.store(key, result)  # racing twin workers overwrite, no error
        assert len(cache) == 1
        assert cache.get(key).completed == result.completed
        cache.close()


class TestCacheSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="cache kind"):
            CacheSpec(kind="bogus")
        with pytest.raises(ValueError, match="path"):
            CacheSpec(kind="shared")

    def test_builds_the_right_cache(self, tmp_path):
        from repro.core import SearchResultCache
        assert isinstance(CacheSpec().build(), SearchResultCache)
        local = CacheSpec(max_entries=5).build()
        assert local.max_entries == 5
        shared = CacheSpec.shared(str(tmp_path / "cache.db")).build()
        assert isinstance(shared, SharedSearchResultCache)
        shared.close()


class TestPoolWithSharedCache:
    def test_pool_matches_serial_and_second_run_hits(self, tmp_path):
        path = str(tmp_path / "cache.db")
        workload = factorial_workload()
        campaign = make_campaign(workload)
        injections = campaign.enumerate_injections()[:8]
        query_spec = QuerySpec.predefined(
            "err-output", golden_output=workload.golden_output())
        config = ParallelConfig(workers=WORKERS, chunk_size=2,
                                cache=CacheSpec.shared(path))

        parallel = run_campaign_parallel(campaign, query_spec,
                                         injections=injections, config=config)
        serial = campaign.run(query_spec.build(), injections=injections)
        assert result_keys(parallel) == result_keys(serial)

        # Every search is now on disk: a re-run resolves entirely from cache.
        strategy_config = ParallelConfig(workers=WORKERS, chunk_size=2,
                                         cache=CacheSpec.shared(path))
        from repro.parallel import ParallelExecutionStrategy
        strategy = ParallelExecutionStrategy(query_spec, strategy_config)
        rerun = campaign.run(query_spec.build(), injections=injections,
                             strategy=strategy)
        assert result_keys(rerun) == result_keys(serial)
        stats = strategy.cache_statistics
        assert stats.hits == len(injections)
        assert stats.misses == 0
