"""Tests for constraint sets, the constraint map and the relational solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import (ComparisonOp, Constraint, ConstraintMap, ConstraintSet,
                               Location, RelationalConstraint, from_constraints,
                               relational_conflict)


# --------------------------------------------------------------------- Location

class TestLocation:
    def test_equality_and_hash(self):
        assert Location.register(3) == Location.register(3)
        assert Location.register(3) != Location.register(4)
        assert Location.register(3) != Location.memory(3)
        assert len({Location.register(3), Location.register(3)}) == 1

    def test_repr(self):
        assert repr(Location.register(5)) == "$(5)"
        assert repr(Location.memory(1000)) == "*(1000)"
        assert repr(Location.pc()) == "PC"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Location("weird", 0)


# ----------------------------------------------------------------- ComparisonOp

class TestComparisonOp:
    def test_negations_are_involutions(self):
        for op in ComparisonOp:
            assert op.negate().negate() is op

    def test_flip_swaps_operands(self):
        for op in ComparisonOp:
            for left, right in [(1, 2), (2, 1), (3, 3)]:
                assert op.evaluate(left, right) == op.flip().evaluate(right, left)

    def test_evaluate(self):
        assert ComparisonOp.GT.evaluate(3, 2)
        assert not ComparisonOp.GT.evaluate(2, 3)
        assert ComparisonOp.LE.evaluate(2, 2)
        assert ComparisonOp.NE.evaluate(1, 2)

    def test_from_symbol(self):
        assert ComparisonOp.from_symbol("==") is ComparisonOp.EQ
        assert ComparisonOp.from_symbol("=/=") is ComparisonOp.NE
        assert ComparisonOp.from_symbol("!=") is ComparisonOp.NE
        with pytest.raises(ValueError):
            ComparisonOp.from_symbol("~")


# ---------------------------------------------------------------- ConstraintSet

class TestConstraintSet:
    def test_paper_example(self):
        # notGreaterThan(5) notEqualTo(2) greaterThan(0):
        # any integer in (0, 5] except 2.
        cset = from_constraints([
            Constraint(ComparisonOp.LE, 5),
            Constraint(ComparisonOp.NE, 2),
            Constraint(ComparisonOp.GT, 0),
        ])
        assert cset.satisfiable()
        assert cset.admits(1)
        assert cset.admits(5)
        assert not cset.admits(0)
        assert not cset.admits(2)
        assert not cset.admits(6)

    def test_contradictory_bounds_unsatisfiable(self):
        cset = from_constraints([Constraint(ComparisonOp.GT, 10),
                                 Constraint(ComparisonOp.LT, 5)])
        assert not cset.satisfiable()
        assert cset.witness() is None

    def test_equality_folds(self):
        cset = from_constraints([Constraint(ComparisonOp.GE, 3),
                                 Constraint(ComparisonOp.LE, 3)])
        assert cset.satisfiable()
        assert cset.witness() == 3
        assert cset.admits(3)
        assert not cset.admits(4)

    def test_exclusions_can_exhaust_range(self):
        cset = from_constraints([Constraint(ComparisonOp.GE, 1),
                                 Constraint(ComparisonOp.LE, 2),
                                 Constraint(ComparisonOp.NE, 1),
                                 Constraint(ComparisonOp.NE, 2)])
        assert not cset.satisfiable()

    def test_conflicting_equalities(self):
        cset = from_constraints([Constraint(ComparisonOp.EQ, 3),
                                 Constraint(ComparisonOp.EQ, 4)])
        assert not cset.satisfiable()

    def test_equality_vs_exclusion(self):
        cset = from_constraints([Constraint(ComparisonOp.EQ, 3),
                                 Constraint(ComparisonOp.NE, 3)])
        assert not cset.satisfiable()

    def test_entails(self):
        cset = from_constraints([Constraint(ComparisonOp.GT, 4)])
        assert cset.entails(Constraint(ComparisonOp.GT, 3))
        assert cset.entails(Constraint(ComparisonOp.GE, 5))
        assert cset.entails(Constraint(ComparisonOp.NE, 0))
        assert not cset.entails(Constraint(ComparisonOp.GT, 10))
        assert not cset.entails(Constraint(ComparisonOp.LT, 10))

    def test_refutes(self):
        cset = from_constraints([Constraint(ComparisonOp.GT, 4)])
        assert cset.refutes(Constraint(ComparisonOp.LT, 0))
        assert not cset.refutes(Constraint(ComparisonOp.LT, 100))

    def test_unconstrained_set(self):
        cset = ConstraintSet()
        assert cset.is_unconstrained()
        assert cset.satisfiable()
        assert cset.admits(-(10**9))
        assert cset.witness() is not None

    def test_add_is_persistent(self):
        base = ConstraintSet()
        extended = base.add(Constraint(ComparisonOp.GT, 0))
        assert base.is_unconstrained()
        assert not extended.is_unconstrained()

    def test_to_constraints_round_trip(self):
        original = from_constraints([Constraint(ComparisonOp.GT, 0),
                                     Constraint(ComparisonOp.LE, 9),
                                     Constraint(ComparisonOp.NE, 4)])
        rebuilt = from_constraints(original.to_constraints())
        for value in range(-2, 12):
            assert original.admits(value) == rebuilt.admits(value)


@st.composite
def constraint_lists(draw):
    ops = st.sampled_from(list(ComparisonOp))
    constants = st.integers(min_value=-20, max_value=20)
    size = draw(st.integers(min_value=0, max_value=6))
    return [Constraint(draw(ops), draw(constants)) for _ in range(size)]


class TestConstraintSetProperties:
    @given(constraint_lists())
    @settings(max_examples=200, deadline=None)
    def test_witness_satisfies_all_constraints(self, constraints):
        cset = from_constraints(constraints)
        witness = cset.witness()
        if cset.satisfiable():
            assert witness is not None
            assert all(c.holds_for(witness) for c in constraints)
        else:
            assert witness is None

    @given(constraint_lists(), st.integers(min_value=-25, max_value=25))
    @settings(max_examples=200, deadline=None)
    def test_admits_agrees_with_direct_evaluation(self, constraints, value):
        cset = from_constraints(constraints)
        direct = all(c.holds_for(value) for c in constraints)
        assert cset.admits(value) == direct

    @given(constraint_lists(), st.integers(min_value=-20, max_value=20),
           st.sampled_from(list(ComparisonOp)))
    @settings(max_examples=200, deadline=None)
    def test_entails_is_sound(self, constraints, constant, op):
        cset = from_constraints(constraints)
        fact = Constraint(op, constant)
        if cset.entails(fact):
            # every admitted value must satisfy the entailed fact
            for value in range(-25, 26):
                if cset.admits(value):
                    assert fact.holds_for(value)

    @given(constraint_lists())
    @settings(max_examples=100, deadline=None)
    def test_exact_satisfiability_on_bounded_domain(self, constraints):
        """On a bounded domain the solver must agree with brute force when it
        declares unsatisfiability (soundness of pruning)."""
        cset = from_constraints(constraints)
        brute_force = any(all(c.holds_for(v) for c in constraints)
                          for v in range(-40, 41))
        if brute_force:
            assert cset.satisfiable()


# ---------------------------------------------------------------- ConstraintMap

class TestConstraintMap:
    def test_with_constraint_is_persistent(self):
        base = ConstraintMap()
        loc = Location.register(3)
        extended = base.with_constraint(loc, Constraint(ComparisonOp.GT, 1))
        assert loc not in base
        assert loc in extended
        assert extended.constraints_for(loc).admits(2)

    def test_without_clears_location_and_relations(self):
        loc_a, loc_b = Location.register(1), Location.register(2)
        cmap = (ConstraintMap()
                .with_constraint(loc_a, Constraint(ComparisonOp.GT, 0))
                .with_relational(RelationalConstraint(loc_a, ComparisonOp.LT, loc_b)))
        cleared = cmap.without(loc_a)
        assert loc_a not in cleared
        assert not cleared.relational()
        # untouched map keeps its facts
        assert loc_a in cmap

    def test_transfer_copies_constraints(self):
        src, dst = Location.register(1), Location.register(2)
        cmap = ConstraintMap().with_constraint(src, Constraint(ComparisonOp.EQ, 7))
        moved = cmap.transfer(src, dst)
        assert moved.constraints_for(dst).admits(7)
        assert not moved.constraints_for(dst).admits(8)

    def test_satisfiable_detects_per_location_conflict(self):
        loc = Location.register(3)
        cmap = (ConstraintMap()
                .with_constraint(loc, Constraint(ComparisonOp.GT, 5))
                .with_constraint(loc, Constraint(ComparisonOp.LT, 3)))
        assert not cmap.satisfiable()

    def test_satisfiable_detects_relational_conflict(self):
        a, b = Location.register(1), Location.register(2)
        cmap = (ConstraintMap()
                .with_relational(RelationalConstraint(a, ComparisonOp.GT, b))
                .with_relational(RelationalConstraint(a, ComparisonOp.LT, b)))
        assert not cmap.satisfiable()

    def test_equality_and_hash(self):
        loc = Location.register(3)
        a = ConstraintMap().with_constraint(loc, Constraint(ComparisonOp.GT, 1))
        b = ConstraintMap().with_constraint(loc, Constraint(ComparisonOp.GT, 1))
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_constraints(self):
        loc = Location.register(3)
        cmap = ConstraintMap().with_constraint(loc, Constraint(ComparisonOp.GT, 1))
        assert "$(3)" in cmap.describe()
        assert ConstraintMap().describe() == "  (no constraints)"


# --------------------------------------------------------------------- solver

class TestRelationalSolver:
    def test_cycle_with_strict_edge_detected(self):
        a, b, c = (Location.register(i) for i in (1, 2, 3))
        constraints = frozenset({
            RelationalConstraint(a, ComparisonOp.LT, b),
            RelationalConstraint(b, ComparisonOp.LE, c),
            RelationalConstraint(c, ComparisonOp.LE, a),
        })
        assert relational_conflict(constraints, {})

    def test_non_strict_cycle_is_fine(self):
        a, b = Location.register(1), Location.register(2)
        constraints = frozenset({
            RelationalConstraint(a, ComparisonOp.LE, b),
            RelationalConstraint(b, ComparisonOp.LE, a),
        })
        assert not relational_conflict(constraints, {})

    def test_bound_conflict(self):
        a, b = Location.register(1), Location.register(2)
        sets = {
            a: from_constraints([Constraint(ComparisonOp.LE, 3)]),
            b: from_constraints([Constraint(ComparisonOp.GE, 10)]),
        }
        constraints = frozenset({RelationalConstraint(a, ComparisonOp.GT, b)})
        assert relational_conflict(constraints, sets)

    def test_consistent_relations_pass(self):
        a, b = Location.register(1), Location.register(2)
        constraints = frozenset({RelationalConstraint(a, ComparisonOp.LT, b)})
        assert not relational_conflict(constraints, {})

    def test_eq_and_ne_conflict(self):
        a, b = Location.register(1), Location.register(2)
        constraints = frozenset({
            RelationalConstraint(a, ComparisonOp.EQ, b),
            RelationalConstraint(a, ComparisonOp.NE, b),
        })
        assert relational_conflict(constraints, {})
