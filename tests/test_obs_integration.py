"""End-to-end telemetry: cross-process propagation, span parenting, and
result neutrality under every campaign backend.

The load-bearing guarantee is that ``--telemetry`` observes a campaign
without perturbing it: the result projection (labels, activation,
solutions) must be identical with the hub enabled and disabled, under the
serial, pool, distributed-filesystem and distributed-TCP backends alike.
"""

import pickle

import pytest

from repro import obs
from repro.core import SerialExecutionStrategy, SymbolicCampaign
from repro.distributed import (CampaignManifest, CheckpointingStrategy,
                               DistributedConfig,
                               DistributedExecutionStrategy,
                               FilesystemBroker, RecordJournal, WorkerConfig,
                               run_worker)
from repro.distributed.broker import enqueue_campaign
from repro.machine import ExecutionConfig
from repro.net import BrokerServer
from repro.obs import (JsonlEventSink, NullTelemetry, TraceContext,
                       read_events)
from repro.parallel import (CampaignSpec, ParallelConfig,
                            ParallelExecutionStrategy, QuerySpec, TaskSpec)
from repro.programs import factorial_workload

INJECTIONS = 6


@pytest.fixture(autouse=True)
def restore_hub():
    """Every test leaves the process-global hub disabled again."""
    yield
    obs.set_hub(NullTelemetry())


@pytest.fixture
def server():
    broker_server = BrokerServer().start()
    yield broker_server
    broker_server.stop()


def make_campaign(workload):
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(
            max_steps=workload.recommended_max_steps),
        max_solutions_per_injection=10,
        max_states_per_injection=10_000)


def result_keys(results):
    """The order-sensitive, timing-free projection used for equivalence."""
    return [(r.injection.label(), r.activated, r.completed,
             [s.state.output_values() for s in r.solutions],
             [s.state.status.value for s in r.solutions])
            for r in results]


def run_campaign(strategy=None, telemetry_path=None):
    """One factorial campaign, optionally traced to *telemetry_path*."""
    workload = factorial_workload()
    campaign = make_campaign(workload)
    injections = campaign.enumerate_injections()[:INJECTIONS]
    query = QuerySpec.predefined(
        "err-output", golden_output=workload.golden_output()).build()
    if telemetry_path is not None:
        obs.configure(sink=JsonlEventSink(telemetry_path),
                      component="coordinator")
    try:
        result = campaign.run(query, injections=injections,
                              strategy=strategy)
    finally:
        obs.finalize()
    return result


def spans_of(events, name):
    return [e for e in events if e["type"] == "span" and e["name"] == name]


class TestPropagation:
    def test_campaign_spec_carries_trace_through_pickle(self):
        obs.configure(component="coordinator", trace_id="tr-prop")
        spec = CampaignSpec.from_campaign(
            make_campaign(factorial_workload()))
        revived = pickle.loads(pickle.dumps(spec))
        assert revived.telemetry == TraceContext(trace_id="tr-prop")

    def test_task_spec_carries_trace_through_pickle(self):
        hub = obs.configure(component="coordinator", trace_id="tr-task")
        with hub.span("task.run") as span:
            spec = TaskSpec(telemetry=hub.context())
        revived = pickle.loads(pickle.dumps(spec))
        assert revived.telemetry.trace_id == "tr-task"
        assert revived.telemetry.parent_span_id == span.span_id

    def test_manifest_carries_trace_through_pickle(self):
        obs.configure(component="coordinator", trace_id="tr-manifest")
        manifest = CampaignManifest(
            campaign_spec=CampaignSpec.from_campaign(
                make_campaign(factorial_workload())),
            query_spec=QuerySpec.predefined("err-output", golden_output=()))
        revived = pickle.loads(pickle.dumps(manifest))
        assert revived.campaign_spec.telemetry.trace_id == "tr-manifest"

    def test_disabled_hub_leaves_specs_unannotated(self):
        spec = CampaignSpec.from_campaign(
            make_campaign(factorial_workload()))
        assert spec.telemetry is None


class TestSerialBackend:
    def test_results_unchanged_and_spans_parented(self, tmp_path):
        baseline = run_campaign()
        path = str(tmp_path / "tele.jsonl")
        traced = run_campaign(telemetry_path=path)
        assert result_keys(baseline.results) == result_keys(traced.results)

        events = read_events(path)
        [root] = spans_of(events, "campaign.run")
        solves = spans_of(events, "search.solve")
        assert len(solves) == INJECTIONS
        assert all(s["parent"] == root["span"] for s in solves)
        assert {e["trace"] for e in events} == {root["trace"]}
        [metrics] = [e for e in events if e["type"] == "metrics"]
        assert metrics["counters"]["search.runs"] == INJECTIONS


class TestPoolBackend:
    def strategy(self):
        return ParallelExecutionStrategy(
            QuerySpec.predefined(
                "err-output",
                golden_output=factorial_workload().golden_output()),
            ParallelConfig(workers=2))

    def test_results_unchanged_and_worker_spans_absorbed(self, tmp_path):
        baseline = run_campaign(strategy=self.strategy())
        path = str(tmp_path / "tele.jsonl")
        traced = run_campaign(strategy=self.strategy(), telemetry_path=path)
        assert result_keys(baseline.results) == result_keys(traced.results)

        events = read_events(path)
        [root] = spans_of(events, "campaign.run")
        chunks = spans_of(events, "worker.chunk")
        assert chunks, "worker spans must ship back to the coordinator"
        assert all(c["component"] != "coordinator" for c in chunks)
        assert all(c["parent"] == root["span"] for c in chunks)
        chunk_ids = {c["span"] for c in chunks}
        assert all(s["parent"] in chunk_ids
                   for s in spans_of(events, "search.solve"))
        assert {e["trace"] for e in events} == {root["trace"]}
        [metrics] = [e for e in events if e["type"] == "metrics"]
        assert metrics["counters"]["search.runs"] == INJECTIONS
        assert metrics["workers"], "per-worker counters must be reported"


class TestDistributedBackends:
    def strategy(self, queue_dir):
        return DistributedExecutionStrategy(
            QuerySpec.predefined(
                "err-output",
                golden_output=factorial_workload().golden_output()),
            DistributedConfig(workers=2, queue_dir=queue_dir))

    def check(self, tmp_path, queue_a, queue_b):
        baseline = run_campaign(strategy=self.strategy(queue_a))
        path = str(tmp_path / "tele.jsonl")
        traced = run_campaign(strategy=self.strategy(queue_b),
                              telemetry_path=path)
        assert result_keys(baseline.results) == result_keys(traced.results)

        events = read_events(path)
        [root] = spans_of(events, "campaign.run")
        assert spans_of(events, "broker.publish")
        units = spans_of(events, "worker.unit")
        assert units and all(u["component"] != "coordinator" for u in units)
        assert {e["trace"] for e in events} == {root["trace"]}
        [metrics] = [e for e in events if e["type"] == "metrics"]
        assert metrics["counters"]["search.runs"] == INJECTIONS
        # Filesystem queues count broker.claims in-process; TCP queues
        # count the client-side round-trips instead.
        claims = (metrics["counters"].get("broker.claims", 0)
                  + metrics["counters"].get("net.ops.claim", 0))
        assert claims >= len(units)

    def test_filesystem_queue(self, tmp_path):
        self.check(tmp_path, str(tmp_path / "qa"), str(tmp_path / "qb"))

    def test_tcp_queue(self, tmp_path, server):
        self.check(tmp_path, server.url, server.url)


class TestWorkerCrash:
    def test_crash_releases_claim_and_logs_event(self, tmp_path, capsys):
        workload = factorial_workload()
        queue = str(tmp_path / "queue")
        broker = FilesystemBroker(queue)
        enqueue_campaign(
            broker,
            CampaignManifest(
                campaign_spec=CampaignSpec.from_campaign(
                    make_campaign(workload)),
                query_spec=QuerySpec.predefined(
                    "err-output", golden_output=workload.golden_output()),
                campaign_id="crash-test"),
            [(0, ("not-an-injection",))])

        sink_path = str(tmp_path / "worker.jsonl")
        obs.configure(sink=JsonlEventSink(sink_path), component="w-crash")
        with pytest.raises(Exception):
            run_worker(WorkerConfig(queue_dir=queue, poll_interval=0.01,
                                    max_idle_seconds=5.0))
        obs.finalize()

        # The claim went back to the queue instead of stranding a lease.
        reclaim = FilesystemBroker(queue).claim_next()
        assert reclaim is not None and reclaim.index == 0

        [crash] = [e for e in read_events(sink_path)
                   if e.get("name") == "worker.crash"]
        assert crash["index"] == 0
        assert crash["released"] is True
        assert crash["error"]
        assert '"event": "worker.crash"' in capsys.readouterr().err


class TestCheckpointTrace:
    def run_checkpointed(self, journal_path, resume=False):
        workload = factorial_workload()
        campaign = make_campaign(workload)
        injections = campaign.enumerate_injections()[:4]
        query = QuerySpec.predefined(
            "err-output", golden_output=workload.golden_output()).build()
        strategy = CheckpointingStrategy(SerialExecutionStrategy(),
                                         journal_path, resume=resume)
        results = strategy.run(campaign, injections, query)
        return results, strategy

    def test_resume_adopts_the_original_trace(self, tmp_path):
        journal_path = str(tmp_path / "ck.pkl")
        hub = obs.configure(component="coordinator")
        first, _ = self.run_checkpointed(journal_path)
        original_trace = hub.trace_id
        obs.set_hub(NullTelemetry())

        resumed_hub = obs.configure(component="coordinator")
        assert resumed_hub.trace_id != original_trace
        second, strategy = self.run_checkpointed(journal_path, resume=True)
        assert resumed_hub.trace_id == original_trace
        assert strategy.skipped == 4
        assert result_keys(first) == result_keys(second)

    def test_disabled_telemetry_journals_no_trace_record(self, tmp_path):
        journal_path = str(tmp_path / "ck.pkl")
        self.run_checkpointed(journal_path)
        tags = {record[0] for record in RecordJournal(journal_path).load()}
        assert tags == {"header", "result"}
