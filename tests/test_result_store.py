"""ResultStore-conformance suite: the executable form of the store contract.

One parametrized suite, run against every warehouse backend — currently
:class:`~repro.results.MemoryResultStore` and
:class:`~repro.results.SqliteResultStore`.  A future backend (parquet, …)
is conformant exactly when it passes this file unchanged: batch/flush
visibility, submission ordering, crash-mid-batch durability, re-append
idempotence, aggregate-vs-full-scan equality and concurrent-writer safety.
"""

import threading

import pytest

from repro.core import SymbolicCampaign, output_contains_err
from repro.machine import ExecutionConfig
from repro.programs import factorial_workload
from repro.results import (MemoryResultStore, OutcomeAggregates,
                           SqliteResultStore, classify_result)


@pytest.fixture(scope="module")
def swept():
    """One real factorial sweep shared by the whole module: genuine
    injections, activations, solutions and outcome classifications."""
    workload = factorial_workload()
    campaign = SymbolicCampaign(
        workload.program, input_values=workload.default_input,
        memory=workload.data_segment, detectors=workload.detectors,
        execution_config=ExecutionConfig(
            max_steps=workload.recommended_max_steps),
        max_states_per_injection=20_000)
    golden = workload.golden_output()
    result = campaign.run(output_contains_err())
    assert result.total_solutions > 0  # the suite needs real outcomes
    return result, golden


def outcomes_for(swept):
    result, golden = swept
    return [(r, classify_result(r, golden)) for r in result.results]


class MemoryHarness:
    """Backend glue: the in-process store; both writers share the object."""

    name = "memory"
    durable = False

    def __init__(self, tmp_path):
        self._stores = []

    def make(self, batch_size=256):
        store = MemoryResultStore(batch_size=batch_size)
        self._stores.append(store)
        return store

    def thread_writer(self, store, batch_size):
        return store  # one object, many threads — the lock is the contract

    def release_thread_writer(self, handle):
        pass

    def reopen(self, store):
        pytest.skip("the in-memory backend does not survive a process")

    def close(self):
        for store in self._stores:
            store.close()


class SqliteHarness:
    name = "sqlite"
    durable = True

    def __init__(self, tmp_path):
        self.path = str(tmp_path / "warehouse.sqlite")
        self._stores = []

    def make(self, batch_size=256):
        store = SqliteResultStore(self.path, batch_size=batch_size)
        self._stores.append(store)
        return store

    def thread_writer(self, store, batch_size):
        # sqlite connections are thread-bound: each writer thread opens
        # (and must close) its own connection onto the shared file —
        # sqlite itself serialises the concurrent writers.
        return SqliteResultStore(self.path, batch_size=batch_size)

    def release_thread_writer(self, handle):
        handle.close()

    def reopen(self, store):
        # Abandon the handle without close(): the unflushed buffer dies
        # with the "crashed" coordinator, flushed rows survive on disk.
        return self.make()

    def close(self):
        for store in self._stores:
            try:
                store.close()
            except Exception:
                pass


@pytest.fixture(params=["memory", "sqlite"])
def harness(request, tmp_path):
    built = (MemoryHarness if request.param == "memory"
             else SqliteHarness)(tmp_path)
    try:
        yield built
    finally:
        built.close()


class TestBatching:
    def test_rejects_bad_batch_size(self, harness):
        with pytest.raises(ValueError, match="batch_size"):
            harness.make(batch_size=0)

    def test_unflushed_rows_are_invisible(self, harness, swept):
        store = harness.make(batch_size=10)
        rows = outcomes_for(swept)[:3]
        campaign_id = store.begin_campaign({"workload": "factorial"})
        for seq, (result, outcomes) in enumerate(rows):
            store.append(campaign_id, seq, result, outcomes)
        assert store.count(campaign_id) == 0
        store.flush()
        assert store.count(campaign_id) == 3

    def test_full_batch_autoflushes(self, harness, swept):
        store = harness.make(batch_size=2)
        rows = outcomes_for(swept)[:3]
        campaign_id = store.begin_campaign({})
        for seq, (result, outcomes) in enumerate(rows):
            store.append(campaign_id, seq, result, outcomes)
        # 2 of 3 auto-flushed when the batch filled; the odd row buffers.
        assert store.count(campaign_id) == 2
        store.finish_campaign(campaign_id, elapsed_seconds=1.0)
        assert store.count(campaign_id) == 3

    def test_iteration_is_submission_ordered(self, harness, swept):
        """Results stream back by seq even when appended out of order
        (completion order under pool/distributed is arrival order)."""
        store = harness.make()
        rows = outcomes_for(swept)[:4]
        campaign_id = store.begin_campaign({})
        for seq in (2, 0, 3, 1):
            result, outcomes = rows[seq]
            store.append(campaign_id, seq, result, outcomes)
        store.flush()
        expected = [result.injection.label() for result, _ in rows]
        streamed = [r.injection.label()
                    for r in store.iter_results(campaign_id)]
        assert streamed == expected
        for seq, (result, _) in enumerate(rows):
            assert (store.get(campaign_id, seq).injection.label()
                    == result.injection.label())

    def test_reappend_same_seq_is_idempotent(self, harness, swept):
        """A requeued task's twin re-executes byte-identically; replaying
        its append must not double-count."""
        store = harness.make()
        result, outcomes = outcomes_for(swept)[0]
        campaign_id = store.begin_campaign({})
        store.append(campaign_id, 0, result, outcomes)
        store.append(campaign_id, 0, result, outcomes)
        store.flush()
        assert store.count(campaign_id) == 1
        aggregates = store.aggregates(campaign_id)
        assert aggregates.injections_run == 1
        assert aggregates.total_solutions == len(result.solutions)


class TestDurability:
    def test_crash_mid_batch_loses_only_the_unflushed_tail(self, harness,
                                                           swept):
        if not harness.durable:
            pytest.skip("durability is a property of persistent backends")
        store = harness.make(batch_size=2)
        rows = outcomes_for(swept)[:5]
        campaign_id = store.begin_campaign({"workload": "factorial"})
        for seq, (result, outcomes) in enumerate(rows):
            store.append(campaign_id, seq, result, outcomes)
        # 4 rows flushed by two full batches; the 5th sits in the buffer
        # when the coordinator "crashes" (the handle is abandoned).
        reopened = harness.reopen(store)
        assert reopened.count(campaign_id) == 4
        record = reopened.campaign(campaign_id)
        assert not record.finished
        assert "(unfinished)" in record.describe()
        # A resumed run re-appends the lost tail and finishes the campaign.
        result, outcomes = rows[4]
        reopened.append(campaign_id, 4, result, outcomes)
        reopened.finish_campaign(campaign_id, elapsed_seconds=2.5)
        assert reopened.count(campaign_id) == 5
        assert reopened.campaign(campaign_id).finished

    def test_campaign_row_is_durable_before_any_flush(self, harness):
        if not harness.durable:
            pytest.skip("durability is a property of persistent backends")
        store = harness.make()
        campaign_id = store.begin_campaign({"workload": "factorial"})
        reopened = harness.reopen(store)
        assert [r.campaign_id for r in reopened.campaigns()] == [campaign_id]


class TestAggregates:
    def fill(self, store, swept, meta=None):
        result, golden = swept
        campaign_id = store.begin_campaign(meta or {})
        for seq, (injection_result, outcomes) in enumerate(outcomes_for(swept)):
            store.append(campaign_id, seq, injection_result, outcomes)
        store.finish_campaign(campaign_id, elapsed_seconds=result.elapsed_seconds)
        return campaign_id

    def test_columnar_aggregates_equal_full_scan_refold(self, harness, swept):
        """The store's SQL/columnar aggregates must equal re-classifying
        every stored result from scratch — the anti-drift invariant."""
        result, golden = swept
        store = harness.make(batch_size=3)
        campaign_id = self.fill(store, swept)
        refold = OutcomeAggregates()
        for stored in store.iter_results(campaign_id):
            refold.fold(stored, classify_result(stored, golden))
        assert store.aggregates(campaign_id).as_dict() == refold.as_dict()

    def test_aggregates_match_the_in_memory_campaign(self, harness, swept):
        result, golden = swept
        store = harness.make()
        campaign_id = self.fill(store, swept)
        direct = OutcomeAggregates.from_campaign_result(result, golden)
        assert store.aggregates(campaign_id).as_dict() == direct.as_dict()
        assert (store.aggregates(campaign_id).describe()
                in result.describe())

    def test_outcome_distribution_counts_classified_solutions(self, harness,
                                                              swept):
        result, golden = swept
        store = harness.make()
        campaign_id = self.fill(store, swept)
        expected = {}
        for _, outcomes in outcomes_for(swept):
            for outcome in outcomes:
                expected[outcome.kind] = expected.get(outcome.kind, 0) + 1
        assert store.outcome_distribution(campaign_id) == expected

    def test_outcome_kinds_by_point_equals_full_scan_refold(self, harness,
                                                            swept):
        """The parity report's per-point join must equal re-folding the
        stored rows by hand: activated rows only, kinds unioned and
        completedness ANDed across rows sharing one (pc, target) point."""
        store = harness.make(batch_size=3)
        campaign_id = self.fill(store, swept)
        refold = {}
        for injection_result, outcomes in outcomes_for(swept):
            if not injection_result.activated:
                continue
            injection = injection_result.injection
            point = (injection.breakpoint_pc, repr(injection.target))
            kinds, completed = refold.get(point, (set(), True))
            refold[point] = (kinds | {o.kind for o in outcomes},
                             completed and injection_result.completed)
        folded = {point: (set(kinds), completed) for point, (kinds, completed)
                  in store.outcome_kinds_by_point(campaign_id).items()}
        assert folded == refold
        assert refold  # the sweep must actually exercise the join

    def test_campaign_metadata_round_trips(self, harness, swept):
        store = harness.make()
        meta = {"workload": "factorial", "query": "err-output",
                "fault_model": "register", "backend": "serial", "workers": 2}
        campaign_id = self.fill(store, swept, meta=meta)
        record = store.campaign(campaign_id)
        assert record.meta == meta
        assert record.finished
        assert record.elapsed_seconds is not None
        assert "workload=factorial" in record.describe()

    def test_missing_lookups_raise(self, harness, swept):
        store = harness.make()
        campaign_id = store.begin_campaign({})
        with pytest.raises(KeyError):
            store.campaign(campaign_id + 999)
        with pytest.raises(IndexError):
            store.get(campaign_id, 0)


class TestConcurrentWriters:
    def test_interleaved_writers_lose_nothing(self, harness, swept):
        """Two coordinators appending to the same warehouse — one store
        object from two threads (memory) or two connections onto one file
        (sqlite) — must both land every row."""
        rows = outcomes_for(swept)
        store = harness.make(batch_size=2)
        campaign_id = store.begin_campaign({})

        def write(seqs):
            handle = harness.thread_writer(store, batch_size=2)
            try:
                for seq in seqs:
                    result, outcomes = rows[seq % len(rows)]
                    handle.append(campaign_id, seq, result, outcomes)
                handle.flush()
            finally:
                harness.release_thread_writer(handle)

        total = 20
        threads = [
            threading.Thread(target=write, args=(range(0, total, 2),)),
            threading.Thread(target=write, args=(range(1, total, 2),)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.count(campaign_id) == total
        assert store.aggregates(campaign_id).injections_run == total
        assert len(list(store.iter_results(campaign_id))) == total
