"""Tests for the value domain (the err symbol and helpers)."""

import copy

import pytest

from repro.isa.values import ERR, ErrValue, format_value, is_concrete, is_err, require_concrete


class TestErrValue:
    def test_err_is_singleton(self):
        assert ErrValue() is ERR
        assert ErrValue() is ErrValue()

    def test_repr_and_str(self):
        assert repr(ERR) == "err"
        assert str(ERR) == "err"

    def test_copy_preserves_identity(self):
        assert copy.copy(ERR) is ERR
        assert copy.deepcopy(ERR) is ERR

    def test_hashable(self):
        assert hash(ERR) == hash(ErrValue())
        assert len({ERR, ErrValue()}) == 1


class TestPredicates:
    def test_is_err(self):
        assert is_err(ERR)
        assert not is_err(0)
        assert not is_err(-5)

    def test_is_concrete(self):
        assert is_concrete(3)
        assert is_concrete(-10)
        assert not is_concrete(ERR)
        assert not is_concrete(True)

    def test_require_concrete_passes_ints(self):
        assert require_concrete(7) == 7
        assert require_concrete(-3) == -3

    def test_require_concrete_rejects_err(self):
        with pytest.raises(TypeError):
            require_concrete(ERR)

    def test_require_concrete_rejects_bool(self):
        with pytest.raises(TypeError):
            require_concrete(True)

    def test_format_value(self):
        assert format_value(ERR) == "err"
        assert format_value(42) == "42"
        assert format_value(-1) == "-1"
