"""Cross-ISA frontend parity: every shipped workload, every frontend.

The registry's contract is that retargeting a workload through any built-in
frontend is structurally the identity: same instruction sequence, same label
table (so injection addresses stay meaningful), and therefore the same golden
outputs.  These tests sweep that contract over the whole workload registry
for both ``"mips"`` and ``"rv32im"``.
"""

import pytest

from repro.isa.registry import get_frontend
from repro.lang import compile_source
from repro.programs import WORKLOADS, load_workload

ISAS = ("mips", "rv32im")


@pytest.mark.parametrize("isa", ISAS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestWorkloadParity:
    def test_retarget_preserves_code_and_labels(self, name, isa):
        native = load_workload(name)
        retargeted = load_workload(name, isa=isa)
        assert retargeted.isa == isa
        assert retargeted.program.code == native.program.code
        assert retargeted.program.labels == native.program.labels

    def test_label_addresses_keep_their_order(self, name, isa):
        native = load_workload(name)
        retargeted = load_workload(name, isa=isa)
        native_order = sorted(native.program.labels,
                              key=lambda label: native.program.labels[label])
        retargeted_order = sorted(
            retargeted.program.labels,
            key=lambda label: retargeted.program.labels[label])
        assert native_order == retargeted_order

    def test_golden_outputs_agree(self, name, isa):
        native = load_workload(name)
        retargeted = load_workload(name, isa=isa)
        assert retargeted.golden_output() == native.golden_output()


class TestEmittedSourcesDiffer:
    """The parity above must not be vacuous: the two frontends really do
    emit different assembly for the same program."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_emitted_spellings_are_isa_specific(self, name):
        program = load_workload(name).program
        mips = get_frontend("mips").emit(program)
        riscv = get_frontend("rv32im").emit(program)
        assert mips != riscv
        assert "$" in mips
        assert "$" not in riscv

    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_emitted_source_retranslates_on_its_own(self, name, isa):
        """emit() output is self-contained assembly for that ISA — feeding
        it back through translate() alone (not retarget) reproduces the
        program, which is what "how to add a frontend" documents."""
        frontend = get_frontend(isa)
        program = load_workload(name).program
        again = frontend.translate(frontend.emit(program), name=program.name)
        assert again.code == program.code
        assert again.labels == program.labels


class TestMinicCompilerIsaTarget:
    SOURCE = """
        int main() {
            int x;
            read(x);
            print(x * 2 + 1);
            return 0;
        }
    """

    @pytest.mark.parametrize("isa", ISAS)
    def test_compile_source_isa_target(self, isa):
        native = compile_source(self.SOURCE)
        targeted = compile_source(self.SOURCE, isa=isa)
        assert targeted.isa == isa
        assert targeted.program.code == native.program.code
        assert targeted.program.labels == native.program.labels
        # function map survives retargeting (1:1 => pcs unchanged)
        assert targeted.function_region("main") == native.function_region("main")

    def test_compile_source_unknown_isa(self):
        with pytest.raises(ValueError, match="unknown ISA frontend"):
            compile_source(self.SOURCE, isa="z80")


@pytest.mark.parametrize("isa", ISAS)
def test_campaign_carries_isa_through_spec_and_header(isa):
    from repro.distributed.checkpoint import campaign_header
    from repro.parallel.spec import CampaignSpec

    workload = load_workload("factorial", isa=isa)
    campaign, query = workload.campaign(kind="err-output",
                                        fault_model="register")
    assert campaign.isa == isa
    spec = CampaignSpec.from_campaign(campaign)
    assert spec.isa == isa
    assert spec.build().isa == isa
    assert campaign_header(campaign, query)["isa"] == isa
