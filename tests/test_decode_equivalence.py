"""Property tests: the pre-decoded dispatch path is observably identical
to the legacy string-dispatch path.

Random (valid, halt-terminated) programs and random machine states —
including states carrying ``err`` values — are run through both
interpreters:

* symbolic: ``Executor`` with ``legacy_dispatch=True`` versus the default
  pre-decoded dispatch tables, compared successor-by-successor (state
  fingerprints, step counters and recorded trace text) to a bounded depth;
* concrete: ``run_concrete_legacy`` versus the superblock-fused
  ``run_concrete``, compared on the final state (or on the raised
  ``SymbolicValueEncountered``, which must carry the identical message and
  leave the state in the identical position).

The legacy handlers are kept under the test-only
``ExecutionConfig(legacy_dispatch=True)`` flag precisely so this suite can
keep proving the two paths never drift.
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import (Category, INSTRUCTION_SET, _spec, make)
from repro.isa.program import Program
from repro.isa.values import ERR
from repro.machine import (ExecutionConfig, Executor, MachineModelError,
                           clear_decode_cache, concrete_step,
                           concrete_step_legacy, run_concrete,
                           run_concrete_legacy)
from repro.machine.exceptions import SymbolicValueEncountered
from repro.machine.state import initial_state

# Small pools keep the generated programs interacting: loops form, registers
# get read after being written, memory addresses collide.
_REGS = st.integers(0, 5)
_IMMS = st.integers(-4, 7)
_ADDRS = st.integers(0, 7)

_ARITH = ("add", "sub", "mult", "div", "mod", "addi", "subi", "multi",
          "divi", "modi", "ori", "andi", "xori")
_COMPARE = ("seteq", "setne", "setgt", "setlt", "setge", "setle",
            "seteqi", "setnei", "setgti", "setlti", "setgei", "setlei")


def _label_for(target: int) -> str:
    return f"L{target}"


@st.composite
def _instruction(draw, n_labels: int):
    """One random valid instruction (labels resolved against L0..L{n-1})."""
    kind = draw(st.sampled_from(
        ("arith", "compare", "mov", "li", "ldi", "sti", "branch", "jmp",
         "jal", "jr", "read", "print", "prints", "nop")))
    label = _label_for(draw(st.integers(0, n_labels - 1)))
    if kind == "arith":
        opcode = draw(st.sampled_from(_ARITH))
    elif kind == "compare":
        opcode = draw(st.sampled_from(_COMPARE))
    else:
        opcode = kind
    if kind in ("arith", "compare"):
        sig = INSTRUCTION_SET[opcode].signature
        third = draw(_IMMS) if sig[2].value == "imm" else draw(_REGS)
        return make(opcode, draw(_REGS), draw(_REGS), third)
    if kind == "mov":
        return make("mov", draw(_REGS), draw(_REGS))
    if kind == "li":
        return make("li", draw(_REGS), draw(_IMMS))
    if kind in ("ldi", "sti"):
        return make(kind, draw(_REGS), draw(_REGS), draw(_ADDRS))
    if kind == "branch":
        return make(draw(st.sampled_from(("beq", "bne"))), draw(_REGS),
                    draw(_IMMS), label)
    if kind in ("jmp", "jal"):
        return make(kind, label)
    if kind == "jr":
        return make("jr", draw(_REGS))
    if kind == "read":
        return make("read", draw(_REGS))
    if kind == "print":
        return make("print", draw(_REGS))
    if kind == "prints":
        return make("prints", "x")
    return make("nop")


@st.composite
def _program(draw):
    """A random valid program, halt-terminated, every address labelled."""
    length = draw(st.integers(1, 12))
    n_labels = length + 1  # labels may also point at the final halt
    body = [draw(_instruction(n_labels)) for _ in range(length)]
    body.append(make("halt"))
    labels = {_label_for(address): address for address in range(n_labels)}
    return Program(code=tuple(body), labels=labels, name="random")


@st.composite
def _machine_inputs(draw):
    """Input tape, initial memory and (possibly erroneous) register writes."""
    input_values = draw(st.lists(st.integers(-3, 9), max_size=4))
    memory = {address: draw(st.integers(-3, 9))
              for address in draw(st.lists(_ADDRS, max_size=4,
                                           unique=True))}
    corruptions = draw(st.lists(
        st.tuples(st.integers(1, 5),
                  st.one_of(st.just(ERR), st.integers(-3, 9))),
        max_size=2))
    return input_values, memory, corruptions


def _fresh_state(inputs):
    input_values, memory, corruptions = inputs
    state = initial_state(input_values=input_values, memory=dict(memory))
    for register, value in corruptions:
        state.write_register(register, value)
    return state


def _state_summary(state):
    return (state.pc, state.steps, state.status, state.exception,
            state.input_pos, state.output_values(), state.fingerprint())


def _run_symbolic(program, inputs, legacy: bool, max_states: int = 60):
    """Breadth-first successor expansion; returns comparable summaries."""
    executor = Executor(program, config=ExecutionConfig(
        max_steps=48, record_trace=True, legacy_dispatch=legacy))
    frontier = deque([_fresh_state(inputs)])
    explored = []
    while frontier and len(explored) < max_states:
        state = frontier.popleft()
        if not state.is_running:
            explored.append((_state_summary(state), None))
            continue
        successors = executor.step(state)
        texts = tuple(entry.text for successor in successors
                      for entry in (successor.trace or ())[-1:])
        explored.append((_state_summary(state), texts))
        frontier.extend(successors)
    return explored


@settings(max_examples=60, deadline=None)
@given(program=_program(), inputs=_machine_inputs())
def test_symbolic_successors_identical(program, inputs):
    """Legacy and decoded dispatch produce identical successor trees."""
    legacy = _run_symbolic(program, inputs, legacy=True)
    decoded = _run_symbolic(program, inputs, legacy=False)
    assert legacy == decoded


def _run_concrete_path(program, inputs, runner):
    state = _fresh_state(inputs)
    try:
        runner(program, state, max_steps=48)
        raised = None
    except SymbolicValueEncountered as exc:
        raised = str(exc)
    return _state_summary(state), raised


@settings(max_examples=60, deadline=None)
@given(program=_program(), inputs=_machine_inputs())
def test_concrete_runs_identical(program, inputs):
    """``run_concrete`` (superblocks) matches ``run_concrete_legacy``.

    On states carrying ``err`` both must raise ``SymbolicValueEncountered``
    with the identical message, leaving the state at the identical point.
    """
    legacy = _run_concrete_path(program, inputs, run_concrete_legacy)
    decoded = _run_concrete_path(program, inputs, run_concrete)
    assert legacy == decoded


@settings(max_examples=40, deadline=None)
@given(program=_program(), inputs=_machine_inputs())
def test_concrete_single_steps_identical(program, inputs):
    """Single-stepping (no superblocks) agrees instruction by instruction."""
    lhs = _fresh_state(inputs)
    rhs = _fresh_state(inputs)
    for _ in range(48):
        if not lhs.is_running:
            break
        try:
            concrete_step_legacy(program, lhs)
            lhs_raise = None
        except SymbolicValueEncountered as exc:
            lhs_raise = str(exc)
        try:
            concrete_step(program, rhs)
            rhs_raise = None
        except SymbolicValueEncountered as exc:
            rhs_raise = str(exc)
        assert lhs_raise == rhs_raise
        assert _state_summary(lhs) == _state_summary(rhs)
        if lhs_raise is not None:
            break


# --------------------------------------------------- unhandled special opcodes

@pytest.fixture
def mystery_opcode():
    """Temporarily register a SPECIAL opcode no interpreter implements."""
    INSTRUCTION_SET["mystery"] = _spec("mystery", "", Category.SPECIAL)
    try:
        yield "mystery"
    finally:
        del INSTRUCTION_SET["mystery"]
        clear_decode_cache()


def _mystery_program():
    return Program(code=(make("nop"), make("mystery")),
                   source_lines={1: "mystery  -- opaque"}, name="mystery")


def test_unhandled_special_message_symbolic(mystery_opcode):
    """The symbolic paths name the pc and source line of the bad opcode."""
    program = _mystery_program()
    for legacy in (False, True):
        clear_decode_cache()
        executor = Executor(program, config=ExecutionConfig(
            legacy_dispatch=legacy))
        [state] = executor.step(initial_state())
        with pytest.raises(MachineModelError) as excinfo:
            executor.step(state)
        message = str(excinfo.value)
        assert "unhandled special opcode mystery" in message
        assert "at pc 1" in message
        assert "mystery  -- opaque" in message


def test_unhandled_special_message_concrete(mystery_opcode):
    """The concrete twins raise the same pc-and-source-bearing message."""
    program = _mystery_program()
    for stepper in (concrete_step, concrete_step_legacy):
        clear_decode_cache()
        state = initial_state()
        stepper(program, state)
        with pytest.raises(MachineModelError) as excinfo:
            stepper(program, state)
        message = str(excinfo.value)
        assert "unhandled special opcode mystery" in message
        assert "at pc 1" in message
        assert "mystery  -- opaque" in message
