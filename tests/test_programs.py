"""Tests for the workloads: factorial, tcas, replace and the kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Status
from repro.programs import (DOWNWARD_ADVISORY_INPUT, WORKLOADS,
                            decode_output, encode_input,
                            factorial_workload,
                            factorial_with_detectors_workload,
                            load_workload, loop_counter_injection_pc,
                            make_input, reference_alt_sep_test,
                            reference_replace, replace_workload,
                            tcas_workload)
from repro.programs.kernels import (call_max_workload, memory_walk_workload,
                                    safe_divide_workload, sum_input_workload)


class TestRegistry:
    def test_every_workload_builds_and_runs(self):
        for name in WORKLOADS:
            workload = load_workload(name)
            state = workload.golden_run()
            assert state.status is Status.HALTED, (name, state.exception)
            assert "instructions" in workload.describe()

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            load_workload("doom")


class TestFactorial:
    def test_golden_output(self):
        assert factorial_workload().golden_output() == ("Factorial = ", 120)
        assert factorial_workload(3).golden_output() == ("Factorial = ", 6)
        assert factorial_workload().golden_output([6]) == ("Factorial = ", 720)

    def test_detector_variant_has_same_functional_behaviour(self):
        protected = factorial_with_detectors_workload()
        assert protected.golden_output() == ("Factorial = ", 120)
        assert len(protected.detectors) == 2

    def test_injection_pc_helper(self):
        workload = factorial_workload()
        pc = loop_counter_injection_pc(workload)
        assert workload.program[pc].opcode == "subi"


class TestKernels:
    def test_sum_input(self):
        assert sum_input_workload().golden_output() == ("sum = ", 24)

    def test_memory_walk(self):
        # triangular numbers 0,0+1,..: table[i] = sum_{k<=i} k; total of table
        workload = memory_walk_workload(n=5)
        assert workload.golden_output() == (0 + 1 + 3 + 6 + 10,)

    def test_call_max(self):
        assert call_max_workload(3, 9).golden_output() == (9,)
        assert call_max_workload(9, 3).golden_output() == (9,)

    def test_safe_divide(self):
        assert safe_divide_workload(42, 6).golden_output() == (7,)
        state = safe_divide_workload(42, 0).golden_run()
        assert state.status is Status.EXCEPTION
        assert state.exception == "guarded div-zero"


class TestTcas:
    def test_paper_inputs(self):
        workload = tcas_workload()
        assert workload.golden_output() == (1,)
        assert workload.golden_output(DOWNWARD_ADVISORY_INPUT) == (2,)

    def test_make_input_overrides(self):
        inputs = make_input(Climb_Inhibit=1)
        assert inputs[-1] == 1
        with pytest.raises(KeyError):
            make_input(Not_A_Field=1)

    def test_disabled_logic_gives_unresolved(self):
        # Low confidence disables the advisory logic entirely.
        inputs = make_input(High_Confidence=0)
        assert tcas_workload().golden_output(inputs) == (0,)
        assert reference_alt_sep_test(inputs) == 0

    def test_not_tcas_equipped_other_aircraft(self):
        inputs = make_input(Other_Capability=2)
        assert tcas_workload().golden_output(inputs) == \
            (reference_alt_sep_test(inputs),)

    @given(st.tuples(
        st.integers(min_value=0, max_value=1200),   # Cur_Vertical_Sep
        st.integers(min_value=0, max_value=1),      # High_Confidence
        st.integers(min_value=0, max_value=1),      # Two_of_Three_Reports_Valid
        st.integers(min_value=0, max_value=2000),   # Own_Tracked_Alt
        st.integers(min_value=0, max_value=1200),   # Own_Tracked_Alt_Rate
        st.integers(min_value=0, max_value=2000),   # Other_Tracked_Alt
        st.integers(min_value=0, max_value=3),      # Alt_Layer_Value
        st.integers(min_value=0, max_value=900),    # Up_Separation
        st.integers(min_value=0, max_value=900),    # Down_Separation
        st.integers(min_value=0, max_value=2),      # Other_RAC
        st.integers(min_value=1, max_value=2),      # Other_Capability
        st.integers(min_value=0, max_value=1)))     # Climb_Inhibit
    @settings(max_examples=25, deadline=None)
    def test_compiled_tcas_matches_reference_oracle(self, inputs):
        """Differential property test: the compiled tcas agrees with the
        pure-Python oracle on arbitrary inputs."""
        workload = tcas_workload()
        assert workload.golden_output(inputs) == (reference_alt_sep_test(inputs),)


class TestReplace:
    CASES = [
        ("abc", "X", ("xxabcxx", "abcabc")),
        ("[0-9]", "#", ("ab12cd9",)),
        ("a*b", "<&>", ("aaab b xb",)),
        ("%hi", "HI", ("hi there", "say hi")),
        ("end$", "END", ("the end", "end mid")),
        ("[^aeiou0-9]", ".", ("hello 42",)),
        ("?", "@&", ("xy",)),
        ("@**", "STAR", ("a*b",)),
    ]

    def test_encode_decode_round_trip(self):
        stream = encode_input("ab", "c", ["line"])
        assert stream[:3] == (ord("a"), ord("b"), 0)
        assert decode_output([104, 105]) == "hi"
        assert "err" in decode_output([104, "err"]) or "<" in decode_output([104, "err"])

    @pytest.mark.parametrize("pattern,substitution,lines", CASES)
    def test_compiled_replace_matches_reference_oracle(self, pattern,
                                                       substitution, lines):
        workload = replace_workload()
        state = workload.golden_run(encode_input(pattern, substitution, lines))
        assert state.status is Status.HALTED
        got = decode_output(state.output_values())
        want = reference_replace(pattern, substitution, lines)
        assert got == want

    def test_illegal_pattern_is_reported(self):
        workload = replace_workload()
        state = workload.golden_run(encode_input("[abc", "x", ["line"]))
        assert state.status is Status.HALTED
        assert any(isinstance(item, str) and "illegal" in item
                   for item in state.output_values())

    @given(st.text(alphabet="ab?*[]-^x0", min_size=1, max_size=6),
           st.text(alphabet="XY&", min_size=1, max_size=3),
           st.text(alphabet="abx01 ", min_size=0, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_property_random_patterns_agree_with_oracle(self, pattern,
                                                        substitution, line):
        """Random small patterns: the compiled program and the Python oracle
        must either both reject the pattern or produce identical output."""
        workload = replace_workload()
        state = workload.golden_run(encode_input(pattern, substitution, [line]))
        assert state.status is Status.HALTED
        want = reference_replace(pattern, substitution, [line])
        got = decode_output(state.output_values())
        if want is None:
            assert "illegal" in got
        else:
            assert got == want
