"""Tests for the parallel campaign execution engine (repro.parallel)."""

import pickle

import pytest

from repro.core import (SymbolicCampaign, TaskRunner, chunk_injections,
                        decompose_by_chunk, decompose_by_code_section,
                        default_chunk_size, output_contains_err,
                        printed_value_other_than)
from repro.constraints import Location
from repro.errors import Injection
from repro.machine import ExecutionConfig
from repro.parallel import (CampaignSpec, ParallelConfig,
                            ParallelExecutionStrategy, ParallelTaskStrategy,
                            QuerySpec, run_campaign_parallel,
                            run_tasks_parallel)
from repro.programs import factorial_workload, sum_input_workload

WORKERS = 2


def make_campaign(workload, **kwargs):
    defaults = dict(max_solutions_per_injection=10,
                    max_states_per_injection=10_000)
    defaults.update(kwargs)
    return SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        execution_config=ExecutionConfig(max_steps=workload.recommended_max_steps),
        **defaults)


def result_keys(campaign_result):
    """The order-sensitive, timing-free projection used for equivalence."""
    return [(r.injection.label(), r.activated, r.completed,
             [s.state.output_values() for s in r.solutions],
             [s.state.status.value for s in r.solutions])
            for r in campaign_result.results]


class TestChunking:
    def sample(self, count):
        return [Injection(breakpoint_pc=pc, target=Location.register(1))
                for pc in range(count)]

    def test_empty_sweep_yields_no_chunks(self):
        assert chunk_injections([], 4) == []
        assert decompose_by_chunk([], 4) == []

    def test_chunk_larger_than_sweep(self):
        chunks = chunk_injections(self.sample(3), 100)
        assert len(chunks) == 1
        assert len(chunks[0]) == 3

    def test_exact_and_remainder_chunks(self):
        assert [len(c) for c in chunk_injections(self.sample(6), 2)] == [2, 2, 2]
        assert [len(c) for c in chunk_injections(self.sample(7), 3)] == [3, 3, 1]

    def test_chunks_preserve_order(self):
        injections = self.sample(5)
        flattened = [i for chunk in chunk_injections(injections, 2)
                     for i in chunk]
        assert flattened == injections

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_injections(self.sample(3), 0)

    def test_decompose_by_chunk_identifiers(self):
        tasks = decompose_by_chunk(self.sample(5), 2)
        assert [t.identifier for t in tasks] == [0, 1, 2]
        assert all("chunk" in t.description for t in tasks)

    def test_default_chunk_size_heuristic(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(100, 4) == 7   # ceil(100 / 16)
        assert default_chunk_size(100, 1) == 25  # ceil(100 / 4)


class TestSpecs:
    def test_query_spec_roundtrip(self):
        spec = QuerySpec.predefined("wrong-final-value", expected_value=120)
        rebuilt = pickle.loads(pickle.dumps(spec))
        assert rebuilt.build().description == spec.build().description

    def test_query_spec_factory(self):
        spec = QuerySpec.from_factory(printed_value_other_than, 120)
        assert pickle.loads(pickle.dumps(spec)).build().description == \
            printed_value_other_than(120).description

    def test_query_spec_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            QuerySpec()
        with pytest.raises(ValueError):
            QuerySpec(kind="crash", factory=output_contains_err)

    def test_campaign_spec_roundtrip(self):
        campaign = make_campaign(factorial_workload())
        spec = pickle.loads(pickle.dumps(CampaignSpec.from_campaign(campaign)))
        rebuilt = spec.build()
        assert rebuilt.input_values == campaign.input_values
        assert rebuilt.max_states_per_injection == campaign.max_states_per_injection
        assert len(rebuilt.enumerate_injections()) == \
            len(campaign.enumerate_injections())

    def test_rebuilt_campaign_gives_identical_injection_results(self):
        campaign = make_campaign(factorial_workload())
        rebuilt = CampaignSpec.from_campaign(campaign).build()
        query = output_contains_err()
        injection = campaign.enumerate_injections()[0]
        original = campaign.run_injection(injection, query)
        mirrored = rebuilt.run_injection(injection, query)
        assert original.activated == mirrored.activated
        assert [s.state.output_values() for s in original.solutions] == \
            [s.state.output_values() for s in mirrored.solutions]


class TestParallelCampaign:
    def test_parallel_matches_serial(self):
        campaign = make_campaign(sum_input_workload(count=2, values=(3, 4)))
        spec = QuerySpec.predefined("err-output")
        serial = campaign.run(spec.build())
        parallel = run_campaign_parallel(
            campaign, spec, config=ParallelConfig(workers=WORKERS, chunk_size=2))
        assert result_keys(serial) == result_keys(parallel)
        assert serial.query_description == parallel.query_description

    def test_single_worker_falls_back_to_serial(self):
        campaign = make_campaign(factorial_workload())
        spec = QuerySpec.predefined("err-output")
        injections = campaign.enumerate_injections()[:3]
        result = run_campaign_parallel(campaign, spec, injections=injections,
                                       config=ParallelConfig(workers=1))
        assert result.injections_run == 3

    def test_empty_sweep(self):
        campaign = make_campaign(factorial_workload())
        spec = QuerySpec.predefined("err-output")
        result = run_campaign_parallel(campaign, spec, injections=[],
                                       config=ParallelConfig(workers=WORKERS))
        assert result.injections_run == 0

    def test_progress_reports_monotonic_counts(self):
        campaign = make_campaign(factorial_workload())
        spec = QuerySpec.predefined("err-output")
        injections = campaign.enumerate_injections()[:6]
        seen = []
        run_campaign_parallel(
            campaign, spec, injections=injections,
            config=ParallelConfig(workers=WORKERS, chunk_size=2),
            progress=lambda done, total, last: seen.append((done, total)))
        assert [total for _done, total in seen] == [6, 6, 6]
        assert sorted(done for done, _total in seen) == [2, 4, 6]

    def test_strategy_plugs_into_campaign_run(self):
        campaign = make_campaign(factorial_workload())
        spec = QuerySpec.predefined("err-output")
        injections = campaign.enumerate_injections()[:4]
        strategy = ParallelExecutionStrategy(
            spec, ParallelConfig(workers=WORKERS, chunk_size=1))
        result = campaign.run(spec.build(), injections=injections,
                              strategy=strategy)
        assert result_keys(result) == \
            result_keys(campaign.run(spec.build(), injections=injections))

    def test_mismatched_query_is_rejected(self):
        campaign = make_campaign(factorial_workload())
        strategy = ParallelExecutionStrategy(
            QuerySpec.predefined("crash"), ParallelConfig(workers=WORKERS))
        with pytest.raises(ValueError):
            campaign.run(output_contains_err(),
                         injections=campaign.enumerate_injections()[:2],
                         strategy=strategy)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(workers=2, chunk_size=0)


class TestParallelTasks:
    def test_parallel_task_report_matches_serial(self):
        campaign = make_campaign(factorial_workload(),
                                 max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        spec = QuerySpec.predefined("err-output")
        tasks = decompose_by_code_section(campaign.enumerate_injections(),
                                          num_tasks=4)
        runner = TaskRunner(campaign, max_errors_per_task=5)
        serial = runner.run(tasks, spec.build())
        parallel = run_tasks_parallel(runner, tasks, spec,
                                      config=ParallelConfig(workers=WORKERS))
        assert parallel.total_tasks == serial.total_tasks
        assert parallel.completed_tasks == serial.completed_tasks
        assert parallel.tasks_with_errors == serial.tasks_with_errors
        assert parallel.total_errors_found == serial.total_errors_found
        assert [t.task.identifier for t in parallel.task_results] == \
            [t.task.identifier for t in serial.task_results]
        assert [len(t.results) for t in parallel.task_results] == \
            [len(t.results) for t in serial.task_results]

    def test_task_strategy_progress(self):
        campaign = make_campaign(factorial_workload(),
                                 max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        spec = QuerySpec.predefined("err-output")
        tasks = decompose_by_code_section(campaign.enumerate_injections(),
                                          num_tasks=3)
        runner = TaskRunner(campaign, max_errors_per_task=5)
        seen = []
        runner.run(tasks, spec.build(),
                   strategy=ParallelTaskStrategy(
                       spec, ParallelConfig(workers=WORKERS)),
                   progress=lambda done, total, last: seen.append((done, total)))
        assert [done for done, _ in seen] == [1, 2, 3]
        assert all(total == 3 for _, total in seen)

    def test_single_task_falls_back_to_serial(self):
        campaign = make_campaign(factorial_workload(),
                                 max_solutions_per_injection=5,
                                 max_states_per_injection=5_000)
        spec = QuerySpec.predefined("err-output")
        tasks = decompose_by_code_section(campaign.enumerate_injections(),
                                          num_tasks=1)
        runner = TaskRunner(campaign, max_errors_per_task=5)
        report = run_tasks_parallel(runner, tasks, spec,
                                    config=ParallelConfig(workers=WORKERS))
        assert report.total_tasks == 1
