"""Tests for the arithmetic error-propagation rules (paper Section 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors.propagation import (IMMEDIATE_ALIASES, NonDeterministicOperation,
                                      concrete_binary, symbolic_binary, unary_result)
from repro.isa.values import ERR, is_err


class TestConcreteArithmetic:
    def test_basic_operations(self):
        assert concrete_binary("add", 3, 4) == 7
        assert concrete_binary("sub", 3, 4) == -1
        assert concrete_binary("mult", 3, 4) == 12
        assert concrete_binary("and", 12, 10) == 8
        assert concrete_binary("or", 12, 10) == 14
        assert concrete_binary("xor", 12, 10) == 6
        assert concrete_binary("sll", 3, 2) == 12
        assert concrete_binary("srl", 12, 2) == 3

    def test_division_truncates_toward_zero(self):
        assert concrete_binary("div", 7, 2) == 3
        assert concrete_binary("div", -7, 2) == -3
        assert concrete_binary("div", 7, -2) == -3
        assert concrete_binary("div", -7, -2) == 3

    def test_modulo_consistent_with_division(self):
        for a in (-7, -1, 0, 5, 13):
            for b in (-3, -1, 1, 4):
                assert (concrete_binary("div", a, b) * b
                        + concrete_binary("mod", a, b)) == a


class TestErrPropagationRules:
    def test_add_sub_with_err(self):
        assert is_err(symbolic_binary("add", ERR, 5))
        assert is_err(symbolic_binary("add", 5, ERR))
        assert is_err(symbolic_binary("add", ERR, ERR))
        assert is_err(symbolic_binary("sub", ERR, 5))
        assert is_err(symbolic_binary("sub", 5, ERR))

    def test_multiplication_by_zero_masks_error(self):
        # err * 0 = 0 and 0 * err = 0 (the paper's masking rule)
        assert symbolic_binary("mult", ERR, 0) == 0
        assert symbolic_binary("mult", 0, ERR) == 0
        assert is_err(symbolic_binary("mult", ERR, 3))
        assert is_err(symbolic_binary("mult", 3, ERR))

    def test_and_with_zero_masks_error(self):
        assert symbolic_binary("and", ERR, 0) == 0
        assert symbolic_binary("and", 0, ERR) == 0
        assert is_err(symbolic_binary("and", ERR, 5))

    def test_err_times_err_requires_fork(self):
        with pytest.raises(NonDeterministicOperation) as excinfo:
            symbolic_binary("mult", ERR, ERR)
        assert excinfo.value.reason == "multiply_symbolic"

    def test_division_by_err_requires_fork(self):
        with pytest.raises(NonDeterministicOperation) as excinfo:
            symbolic_binary("div", 5, ERR)
        assert excinfo.value.reason == "divide_by_symbolic"
        with pytest.raises(NonDeterministicOperation):
            symbolic_binary("mod", ERR, ERR)

    def test_err_divided_by_concrete(self):
        assert is_err(symbolic_binary("div", ERR, 3))
        with pytest.raises(ZeroDivisionError):
            symbolic_binary("div", ERR, 0)

    def test_concrete_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            symbolic_binary("div", 4, 0)
        with pytest.raises(ZeroDivisionError):
            symbolic_binary("mod", 4, 0)

    def test_immediate_aliases_map_to_same_operator(self):
        assert symbolic_binary("addi", 2, 3) == 5
        assert symbolic_binary("ori", 8, 1) == 9
        assert is_err(symbolic_binary("subi", ERR, 1))
        for alias, operator in IMMEDIATE_ALIASES.items():
            assert operator in ("add", "sub", "mult", "div", "mod", "or",
                                "and", "xor", "sll", "srl")

    def test_unary_result(self):
        assert unary_result(5) == 5
        assert is_err(unary_result(ERR))


class TestPropagationProperties:
    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=200, deadline=None)
    def test_symbolic_binary_matches_concrete_on_concrete_inputs(self, a, b):
        for op in ("add", "sub", "mult", "and", "or", "xor"):
            assert symbolic_binary(op, a, b) == concrete_binary(op, a, b)
        if b != 0:
            assert symbolic_binary("div", a, b) == concrete_binary("div", a, b)
            assert symbolic_binary("mod", a, b) == concrete_binary("mod", a, b)

    @given(st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_err_absorbs_nonzero_multiplication(self, value):
        result = symbolic_binary("mult", ERR, value)
        if value == 0:
            assert result == 0
        else:
            assert is_err(result)
