"""Tests for the pluggable fault-model subsystem (`repro.faults`).

Covers: the model registry, enumeration/sampling determinism (including a
hypothesis property over seeds), FaultSpec value plumbing through the
executor's fault-application path, pickle and broker-manifest round-trips
across the filesystem and socket brokers, checkpoint-header pinning, and
serial-vs-pool equivalence for model-planned campaigns.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Location
from repro.core import SymbolicCampaign, latent_err, output_contains_err, printed_value
from repro.distributed import CampaignManifest, FilesystemBroker
from repro.distributed.checkpoint import campaign_header
from repro.faults import (FAULT_MODELS, ControlFlowFault, FaultSpec,
                          MemoryCellFault, RegisterValueFault,
                          deterministic_sample, fault_model)
from repro.isa import assemble
from repro.isa.values import ERR
from repro.net import BrokerServer, SocketBroker
from repro.parallel import (CampaignSpec, ParallelConfig,
                            ParallelExecutionStrategy, QuerySpec)
from repro.programs import factorial_campaign, load_workload


@pytest.fixture(scope="module")
def factorial():
    return load_workload("factorial")


@pytest.fixture(scope="module")
def load_program():
    """A two-cell program that loads cell 1000 and never touches cell 2000."""
    program = assemble("""
        li $1 1000
        ldi $2 $1 0
        print $2
        halt
    """, name="loads")
    return program, {1000: 7, 2000: 9}


# ------------------------------------------------------------------ registry

class TestRegistry:
    def test_the_six_models_are_registered(self):
        assert sorted(FAULT_MODELS) == ["bitflip", "burst", "control",
                                        "memory", "operand", "register"]
        for name, model in FAULT_MODELS.items():
            assert model.name == name

    def test_unknown_model_is_rejected_with_the_available_names(self):
        with pytest.raises(ValueError, match="register"):
            fault_model("timing")

    def test_models_are_picklable(self):
        for model in FAULT_MODELS.values():
            assert pickle.loads(pickle.dumps(model)) == model


# ------------------------------------------------------- enumeration/sampling

class TestEnumerationDeterminism:
    @pytest.mark.parametrize("name", sorted(FAULT_MODELS))
    def test_enumerated_space_is_reproducible(self, name, factorial):
        model = FAULT_MODELS[name]
        first = model.enumerate(factorial.program,
                                memory=factorial.data_segment)
        second = model.enumerate(factorial.program,
                                 memory=factorial.data_segment)
        assert first == second
        assert all(spec.model == name for spec in first)

    def test_register_model_matches_the_extracted_legacy_sweep(self, factorial):
        """RegisterValueFault is the old fixed sweep, extracted: same
        breakpoints and targets as RegisterFileError's enumeration."""
        from repro.errors import RegisterFileError
        legacy = RegisterFileError().enumerate(factorial.program)
        model = RegisterValueFault().enumerate(factorial.program)
        assert ([(i.breakpoint_pc, i.target) for i in legacy]
                == [(s.breakpoint_pc, s.target) for s in model])

    def test_memory_model_targets_known_cells_before_each_load(self, load_program):
        program, memory = load_program
        specs = MemoryCellFault().enumerate(program, memory=memory)
        assert {(s.breakpoint_pc, s.target.kind, s.target.index)
                for s in specs} == {(1, Location.MEMORY, 1000),
                                    (1, Location.MEMORY, 2000)}

    def test_memory_model_without_a_data_segment_falls_back_to_the_bus(
            self, load_program):
        program, _ = load_program
        specs = MemoryCellFault().enumerate(program, memory=None)
        assert [(s.breakpoint_pc, s.target.kind) for s in specs] \
            == [(2, Location.REGISTER)]

    def test_control_model_hits_the_branches(self, factorial):
        specs = ControlFlowFault().enumerate(factorial.program)
        assert specs and all(s.target.kind == Location.PC for s in specs)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           k=st.integers(min_value=1, max_value=20))
    def test_sampling_is_deterministic_order_preserving_and_a_subset(
            self, seed, k):
        program = load_workload("factorial").program
        model = FAULT_MODELS["register"]
        space = model.enumerate(program)
        sample = model.sample(program, k, seed=seed)
        assert sample == model.sample(program, k, seed=seed)
        assert len(sample) == min(k, len(space))
        positions = [space.index(spec) for spec in sample]
        assert positions == sorted(positions)  # enumeration order preserved

    def test_sample_default_seed_is_zero_not_nondeterministic(self, factorial):
        model = FAULT_MODELS["register"]
        assert model.sample(factorial.program, 3) \
            == model.sample(factorial.program, 3, seed=0)

    def test_deterministic_sample_rejects_empty_requests(self):
        with pytest.raises(ValueError, match=">= 1"):
            deterministic_sample([], 0)

    @pytest.mark.parametrize("name", sorted(FAULT_MODELS))
    def test_oversized_sample_clamps_to_the_full_space_with_a_warning(
            self, name, factorial):
        """`--sample K` with K beyond the enumerated space used to be a
        hard error from random.sample; it now clamps to the full sweep."""
        model = FAULT_MODELS[name]
        space = model.enumerate(factorial.program,
                                memory=factorial.data_segment)
        with pytest.warns(RuntimeWarning, match="exceeds the enumerated"):
            clamped = model.sample(factorial.program, len(space) + 5,
                                   memory=factorial.data_segment)
        assert clamped == space

    def test_exact_sample_size_sweeps_the_full_space_silently(self, factorial):
        import warnings

        model = FAULT_MODELS["register"]
        space = model.enumerate(factorial.program)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert model.sample(factorial.program, len(space)) == space


# ------------------------------------------------------------ spec semantics

class TestFaultSpec:
    def test_pickle_round_trip_preserves_equality_and_the_err_singleton(self):
        spec = FaultSpec(breakpoint_pc=3, target=Location.register(2),
                         description="x", model="register")
        clone = pickle.loads(pickle.dumps(spec, protocol=4))
        assert clone == spec
        assert clone.value is ERR  # the singleton survives the wire

    def test_label_names_the_model(self):
        spec = FaultSpec(breakpoint_pc=1, target=Location.register(2),
                         model="operand")
        assert spec.label().startswith("[operand] ")

    def test_concrete_value_rides_the_spec_into_the_injected_state(self):
        """run_injection writes the spec's own value, not always ERR."""
        program = assemble("li $1 5\nprint $1\nhalt\n", name="tiny")
        campaign = SymbolicCampaign(program, max_states_per_injection=500)
        spec = FaultSpec(breakpoint_pc=1, target=Location.register(1),
                         value=42, model="register")
        result = campaign.run_injection(spec, printed_value(42))
        assert result.activated and result.found_solutions

    def test_plain_injections_still_inject_err(self):
        from repro.errors import Injection
        program = assemble("li $1 5\nprint $1\nhalt\n", name="tiny")
        campaign = SymbolicCampaign(program, max_states_per_injection=500)
        result = campaign.run_injection(
            Injection(breakpoint_pc=1, target=Location.register(1)),
            output_contains_err())
        assert result.activated and result.found_solutions


# ------------------------------------------------------- campaign integration

class TestCampaignPlanning:
    def test_campaign_plans_from_the_model(self, load_program):
        program, memory = load_program
        campaign = SymbolicCampaign(program, memory=memory,
                                    fault_model=MemoryCellFault(),
                                    max_states_per_injection=2000)
        planned = campaign.plan_injections()
        assert planned == MemoryCellFault().enumerate(program, memory=memory)

    def test_latent_err_query_sees_corruption_that_never_prints(
            self, load_program):
        """Cell 2000 is never loaded: err-output misses it, latent-err
        catches the error still sitting in memory at halt."""
        program, memory = load_program
        campaign = SymbolicCampaign(program, memory=memory,
                                    fault_model=MemoryCellFault(),
                                    max_states_per_injection=2000)
        by_cell = {spec.target.index: campaign.run_injection(spec, latent_err())
                   for spec in campaign.plan_injections()}
        assert by_cell[2000].found_solutions  # latent in memory
        loud = {spec.target.index:
                campaign.run_injection(spec, output_contains_err())
                for spec in campaign.plan_injections()}
        assert loud[1000].found_solutions and not loud[2000].found_solutions

    def test_plan_injections_samples_legacy_error_classes_too(self, factorial):
        campaign = SymbolicCampaign(factorial.program)
        assert campaign.plan_injections(sample=4, seed=1) \
            == campaign.plan_injections(sample=4, seed=1)
        assert len(campaign.plan_injections(sample=4, seed=1)) == 4

    @pytest.mark.parametrize("name", ["register", "control"])
    def test_pool_run_is_identical_to_serial_for_a_model_campaign(self, name):
        campaign, query = factorial_campaign(fault_model=name,
                                             max_states_per_injection=4000)
        injections = campaign.plan_injections(sample=5, seed=3)
        serial = campaign.run(query, injections=injections)
        query_spec = QuerySpec.predefined("err-output")
        pooled = campaign.run(query, injections=injections,
                              strategy=ParallelExecutionStrategy(
                                  query_spec, ParallelConfig(workers=2,
                                                             chunk_size=2)))
        def projection(result):
            return [(r.injection, r.activated,
                     [(s.state.output_values(), s.depth) for s in r.solutions])
                    for r in result.results]

        assert projection(serial) == projection(pooled)

    def test_checkpoint_header_pins_the_fault_model(self, factorial):
        plain, _ = factorial_campaign()
        modelled, query = factorial_campaign(fault_model="operand")
        assert campaign_header(plain, query)["fault_model"] is None
        header = campaign_header(modelled, query)
        assert header["fault_model"] == "operand"
        assert header["semantics_digest"] \
            != campaign_header(plain, query)["semantics_digest"]


# ------------------------------------------------- broker manifest round-trip

class BrokerPair:
    """Two independent broker clients over one queue (publisher/consumer)."""

    def __init__(self, kind, tmp_path):
        self.server = None
        if kind == "filesystem":
            root = str(tmp_path / "queue")
            self.publisher = FilesystemBroker(root)
            self.consumer = FilesystemBroker(root)
        else:
            self.server = BrokerServer().start()
            self.publisher = SocketBroker(self.server.url)
            self.consumer = SocketBroker(self.server.url)

    def close(self):
        if self.server is not None:
            self.publisher.close()
            self.consumer.close()
            self.server.stop()


@pytest.fixture(params=["filesystem", "socket"])
def broker_pair(request, tmp_path):
    pair = BrokerPair(request.param, tmp_path)
    try:
        yield pair
    finally:
        pair.close()


class TestManifestRoundTrip:
    def test_fault_specs_and_model_survive_the_broker_unchanged(
            self, broker_pair, factorial):
        """The distributed/net manifests carry FaultSpecs (in chunk payloads)
        and the planning FaultModel (in the CampaignSpec) byte-faithfully."""
        campaign = SymbolicCampaign(factorial.program,
                                    fault_model=FAULT_MODELS["operand"])
        chunk = tuple(campaign.plan_injections(sample=4, seed=9))
        manifest = CampaignManifest(
            campaign_spec=CampaignSpec.from_campaign(campaign),
            query_spec=QuerySpec.predefined("err-output"),
            campaign_id="faults-rt")
        broker_pair.publisher.reset()
        broker_pair.publisher.publish_manifest(manifest)
        broker_pair.publisher.put_task(0, chunk)

        received = broker_pair.consumer.load_manifest(timeout=5)
        assert received.campaign_spec.fault_model == FAULT_MODELS["operand"]
        rebuilt = received.campaign_spec.build()
        assert rebuilt.fault_model == campaign.fault_model

        claim = broker_pair.consumer.claim_next()
        assert claim.payload == chunk
        assert all(isinstance(spec, FaultSpec) for spec in claim.payload)
        assert all(spec.value is ERR for spec in claim.payload)
        # The consumer re-plans the same space the coordinator planned.
        assert rebuilt.plan_injections(sample=4, seed=9) == list(chunk)
