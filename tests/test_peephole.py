"""Tests for the conservative peephole pass (:mod:`repro.lang.peephole`)."""

from __future__ import annotations

import pytest

from repro.isa.instructions import make
from repro.isa.parser import assemble
from repro.isa.program import Program
from repro.lang import compile_source
from repro.lang.peephole import (PEEPHOLE_ENV_VAR, PeepholeStats,
                                 peephole_compiled, peephole_enabled_by_env,
                                 peephole_program)
from repro.machine import run_concrete
from repro.machine.state import initial_state
from repro.programs import load_workload


def _run(program: Program, input_values=()) -> tuple:
    state = initial_state(input_values=input_values)
    run_concrete(program, state, max_steps=500)
    return state.status, state.output_values(), state.pc


class TestRemovals:
    SOURCE = """
            mov $1 $1          -- self-mov: removable
            addi $2 $0 #3
            beq $0 0 next      -- branch to next: removable
    next:   jmp tail           -- jump to next: removable
    tail:   print $2
            halt
    tail2:  halt
    """

    def test_removes_and_remaps(self):
        program = assemble(self.SOURCE, name="p")
        optimised, stats = peephole_program(program)
        assert stats.removed_movs == 1
        assert stats.removed_branches == 2
        assert stats.removed == 3
        assert len(optimised) == len(program) - 3
        # Labels survive the renumbering, including ones at addresses
        # shifted by earlier drops and the end-of-code label.
        assert [ins.opcode for ins in optimised.code] == \
            ["addi", "print", "halt", "halt"]
        assert optimised.labels["next"] == 1
        assert optimised.labels["tail"] == 1
        assert optimised.labels["tail2"] == 3

    def test_source_lines_remapped(self):
        program = assemble(self.SOURCE, name="p")
        optimised, _stats = peephole_program(program)
        assert "addi" in optimised.source_lines[0]
        assert "print" in optimised.source_lines[1]

    def test_execution_identical(self):
        program = assemble(self.SOURCE, name="p")
        optimised, _stats = peephole_program(program)
        assert _run(optimised)[:2] == _run(program)[:2]

    def test_fixpoint_cascading_jumps(self):
        # Removing the first jump-to-next exposes the second: jmp a targets
        # the jmp b instruction, which only becomes "to next" in pass 2.
        program = Program(
            code=(make("jmp", "a"), make("jmp", "b"), make("halt")),
            labels={"a": 1, "b": 2}, name="cascade")
        optimised, stats = peephole_program(program)
        assert stats.removed_branches == 2
        assert stats.passes >= 2
        assert [ins.opcode for ins in optimised.code] == ["halt"]

    def test_fusion_candidates_counted_not_rewritten(self):
        program = assemble("""
        loop:   setgt $5 $3 $4
                beq $5 0 exit
                jmp loop
        exit:   halt
        """, name="fuse")
        optimised, stats = peephole_program(program)
        assert stats.fusion_candidates == 1
        assert len(optimised) == len(program)  # counted, never fused

    def test_noop_on_clean_program(self):
        program = assemble("        addi $1 $0 #1\n        halt\n", name="c")
        optimised, stats = peephole_program(program)
        assert optimised is not program or stats.removed == 0
        assert stats.removed == 0
        assert stats.passes == 1


class TestShippedWorkloads:
    """The pass must currently be a no-op on every shipped workload —
    that is what makes the ``--expect-identical`` peephole gate hold."""

    @pytest.mark.parametrize("name", ["factorial", "tcas", "replace"])
    def test_noop(self, name):
        program = load_workload(name).program
        optimised, stats = peephole_program(program)
        assert stats.removed == 0
        assert optimised.code == program.code
        assert optimised.labels == program.labels


class TestCompiledProgram:
    SOURCE = """
    int helper(int a) { return a + 1; }
    int main() { print(helper(4)); return 0; }
    """

    def test_function_regions_remapped(self):
        compiled = compile_source(self.SOURCE, peephole=False)
        # Force removable content in front of every function by rebuilding
        # the program with a self-mov prologue at address 0.
        program = compiled.program
        padded = Program(
            code=(make("mov", 1, 1),) + program.code,
            labels={name: address + 1
                    for name, address in program.labels.items()},
            source_lines={address + 1: text
                          for address, text in program.source_lines.items()},
            name=program.name)
        from dataclasses import replace
        shifted = replace(
            compiled, program=padded,
            functions={name: replace(info, start_pc=info.start_pc + 1,
                                     end_pc=info.end_pc + 1)
                       for name, info in compiled.functions.items()})
        optimised, stats = peephole_compiled(shifted)
        assert stats.removed_movs == 1
        for name, info in optimised.functions.items():
            original = compiled.functions[name]
            assert info.start_pc == original.start_pc
            assert info.end_pc == original.end_pc

    def test_peephole_method_and_identity_when_clean(self):
        compiled = compile_source(self.SOURCE, peephole=False)
        optimised, stats = compiled.peephole()
        assert stats.removed == 0
        assert optimised is compiled  # clean programs come back unchanged


class TestEnvGating:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(PEEPHOLE_ENV_VAR, raising=False)
        assert peephole_enabled_by_env() is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True), ("yes", True),
        ("0", False), ("off", False), ("", False), ("maybe", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(PEEPHOLE_ENV_VAR, value)
        assert peephole_enabled_by_env() is expected

    def test_compile_source_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PEEPHOLE_ENV_VAR, "1")
        compiled = compile_source(TestCompiledProgram.SOURCE, peephole=False)
        assert compiled.program  # explicit False wins; no crash, no pass


def test_stats_describe():
    stats = PeepholeStats(removed_movs=2, removed_branches=1,
                          fusion_candidates=3, passes=2)
    assert "2 self-movs" in stats.describe()
    assert "1 branches-to-next" in stats.describe()
    assert "3 compare/branch" in stats.describe()
