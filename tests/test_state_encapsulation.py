"""Repo-wide guard: machine-state storage is only mutated via the write API.

The CoW state keeps its fingerprint hashes and err census consistent inside
``write_register`` / ``write_memory`` / ``append_output``; a direct poke at
the underlying storage anywhere else would silently corrupt deduplication.
``state.registers`` and ``state.memory`` expose read-only views (no
``__setitem__``), and this grep-style test keeps mutating spellings from
creeping back into the source tree.
"""

import re
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The only module allowed to touch the storage underneath the write API.
STATE_MODULE = SRC_ROOT / "machine" / "state.py"

#: Mutating spellings on a ``.registers`` / ``.memory`` / ``.output`` /
#: ``.trace`` attribute: subscript assignment / augmented assignment / del,
#: and the mutating mapping or list methods.  The output stream matters as
#: much as the stores: appends must go through ``append_output`` or the
#: rolling output hash silently desyncs and dedup/cache hits are lost.
_MUTATION = re.compile(
    r"\.(registers|memory|output|trace)\[[^\]]*\]\s*(=(?!=)|[-+*/%&|^]=|//=|>>=|<<=)"
    r"|del\s+\w+\.(registers|memory|output|trace)\["
    r"|\.(registers|memory|output|trace)\.(update|pop|popitem|clear|setdefault|"
    r"append|extend|insert|remove|sort|reverse|__setitem__)\s*\(")


def test_no_direct_state_mutation_outside_state_module():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path == STATE_MODULE:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if _MUTATION.search(line):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "direct register/memory mutation outside machine/state.py "
        "(use write_register/write_memory):\n" + "\n".join(offenders))


def test_views_reject_subscript_assignment():
    import pytest

    from repro.machine.state import MachineState

    state = MachineState()
    with pytest.raises(TypeError):
        state.registers[3] = 1
    with pytest.raises(TypeError):
        state.memory[100] = 1
