"""Tests for non-deterministic comparison handling and constraint recording."""

from hypothesis import given, settings, strategies as st

from repro.constraints import ComparisonOp, Constraint, ConstraintMap, Location
from repro.errors.comparison import resolve_comparison
from repro.isa.values import ERR


REG3 = Location.register(3)
REG4 = Location.register(4)


class TestConcreteComparisons:
    def test_single_deterministic_outcome(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.GT, 5, 3)
        assert len(outcomes) == 1
        assert outcomes[0].result is True
        assert outcomes[0].forked is False

    def test_all_operators(self):
        cmap = ConstraintMap()
        for op in ComparisonOp:
            for left, right in [(1, 2), (2, 2), (3, 2)]:
                outcomes = resolve_comparison(cmap, op, left, right)
                assert [o.result for o in outcomes] == [op.evaluate(left, right)]


class TestSymbolicVsConstant:
    def test_unconstrained_err_forks_both_ways(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.GT, ERR, 1,
                                      left_location=REG3)
        results = {o.result for o in outcomes}
        assert results == {True, False}
        for outcome in outcomes:
            assert outcome.forked

    def test_true_branch_records_constraint(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.GT, ERR, 1,
                                      left_location=REG3)
        true_branch = next(o for o in outcomes if o.result)
        cset = true_branch.constraints.constraints_for(REG3)
        assert cset.admits(2) and not cset.admits(1)

    def test_false_branch_records_negated_constraint(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.GT, ERR, 1,
                                      left_location=REG3)
        false_branch = next(o for o in outcomes if not o.result)
        cset = false_branch.constraints.constraints_for(REG3)
        assert cset.admits(1) and cset.admits(0) and not cset.admits(2)

    def test_entailed_comparison_does_not_fork(self):
        cmap = ConstraintMap().with_constraint(REG3, Constraint(ComparisonOp.GT, 10))
        outcomes = resolve_comparison(cmap, ComparisonOp.GT, ERR, 5,
                                      left_location=REG3)
        assert len(outcomes) == 1
        assert outcomes[0].result is True
        assert not outcomes[0].forked

    def test_refuted_comparison_does_not_fork(self):
        cmap = ConstraintMap().with_constraint(REG3, Constraint(ComparisonOp.LT, 0))
        outcomes = resolve_comparison(cmap, ComparisonOp.GT, ERR, 5,
                                      left_location=REG3)
        assert len(outcomes) == 1
        assert outcomes[0].result is False

    def test_constant_on_left_flips(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.LT, 1, ERR,
                                      right_location=REG3)
        true_branch = next(o for o in outcomes if o.result)
        # 1 < $3  ==>  $3 > 1
        assert true_branch.constraints.constraints_for(REG3).admits(2)
        assert not true_branch.constraints.constraints_for(REG3).admits(0)

    def test_err_without_location_forks_without_constraints(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.EQ, ERR, 5)
        assert {o.result for o in outcomes} == {True, False}
        for outcome in outcomes:
            assert len(outcome.constraints) == 0


class TestSymbolicVsSymbolic:
    def test_two_locations_fork_and_record_relation(self):
        outcomes = resolve_comparison(ConstraintMap(), ComparisonOp.GT, ERR, ERR,
                                      left_location=REG3, right_location=REG4)
        assert {o.result for o in outcomes} == {True, False}
        for outcome in outcomes:
            assert outcome.constraints.relational()

    def test_same_location_is_reflexively_deterministic(self):
        for op, expected in [(ComparisonOp.EQ, True), (ComparisonOp.NE, False),
                             (ComparisonOp.GE, True), (ComparisonOp.GT, False),
                             (ComparisonOp.LE, True), (ComparisonOp.LT, False)]:
            outcomes = resolve_comparison(ConstraintMap(), op, ERR, ERR,
                                          left_location=REG3, right_location=REG3)
            assert [o.result for o in outcomes] == [expected]

    def test_contradictory_relation_is_pruned(self):
        cmap = ConstraintMap().with_relational(
            __import__("repro.constraints", fromlist=["RelationalConstraint"])
            .RelationalConstraint(REG3, ComparisonOp.GT, REG4))
        outcomes = resolve_comparison(cmap, ComparisonOp.LT, ERR, ERR,
                                      left_location=REG3, right_location=REG4)
        # "$3 < $4" contradicts the recorded "$3 > $4": only the false branch lives
        assert [o.result for o in outcomes] == [False]


class TestConsistencyProperty:
    @given(st.sampled_from(list(ComparisonOp)),
           st.integers(min_value=-10, max_value=10),
           st.integers(min_value=-10, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_repeated_comparison_is_consistent_after_fork(self, op, c1, c2):
        """Once a branch remembers `loc op c1`, re-asking the same question
        must not contradict the remembered answer (no false positives from
        inconsistent forking, Section 5.2)."""
        outcomes = resolve_comparison(ConstraintMap(), op, ERR, c1,
                                      left_location=REG3)
        for outcome in outcomes:
            repeated = resolve_comparison(outcome.constraints, op, ERR, c1,
                                          left_location=REG3)
            assert [o.result for o in repeated] == [outcome.result]

    @given(st.sampled_from(list(ComparisonOp)),
           st.integers(min_value=-10, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_every_branch_constraint_map_is_satisfiable(self, op, constant):
        outcomes = resolve_comparison(ConstraintMap(), op, ERR, constant,
                                      left_location=REG3)
        assert outcomes, "at least one branch must be feasible"
        for outcome in outcomes:
            assert outcome.constraints.satisfiable()
