#!/usr/bin/env python3
"""Fail the build on dead relative links in the repo's markdown docs.

Scans every tracked ``*.md`` file (or the paths given as arguments) for
inline markdown links and checks that each *relative* target exists on
disk, resolved against the linking file's directory.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``) are
ignored; a ``path#anchor`` link is checked for ``path`` only.

Exit status: 0 when every relative link resolves, 1 otherwise (one line
per dead link, ``file: target``).
"""

import re
import subprocess
import sys
from pathlib import Path

# Inline links only: [text](target).  Reference-style links are not used
# in this repo; images ![alt](target) are matched too via the optional !.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL = ("http://", "https://", "mailto:")

# Vendored paper-retrieval material, not repo documentation: its figure
# references point at assets that were never vendored.
EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def markdown_files(root: Path):
    tracked = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"], cwd=root,
        capture_output=True, text=True, check=True).stdout.split()
    return [root / name for name in tracked if name not in EXCLUDED]


def dead_links(path: Path, root: Path):
    dead = []
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        resolved = (path.parent / relative).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            dead.append((path, target))  # escapes the repo
            continue
        if not resolved.exists():
            dead.append((path, target))
    return dead


def main(argv):
    root = Path(__file__).resolve().parent.parent
    files = [Path(name).resolve() for name in argv[1:]]
    if files:
        # Explicit arguments may live anywhere (e.g. a test's tmp dir);
        # treat each file's own directory as its containment root.
        broken = [entry for path in files
                  for entry in dead_links(path, path.parent)]
    else:
        files = markdown_files(root)
        broken = [entry for path in files
                  for entry in dead_links(path, root)]
    for path, target in broken:
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        print(f"{shown}: {target}", file=sys.stderr)
    if broken:
        print(f"{len(broken)} dead relative link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
