"""Constraint tracking and the custom constraint solver (paper Section 5.2)."""

from .constraint import ComparisonOp, Constraint, Location, RelationalConstraint
from .constraint_set import Bound, ConstraintSet, IMPOSSIBLE, UnsatisfiableError, from_constraints
from .constraint_map import ConstraintMap
from .solver import relational_conflict

__all__ = [
    "ComparisonOp", "Constraint", "Location", "RelationalConstraint",
    "Bound", "ConstraintSet", "IMPOSSIBLE", "UnsatisfiableError",
    "from_constraints", "ConstraintMap", "relational_conflict",
]
