"""The ConstraintMap structure attached to every symbolic machine state.

Section 5.2 of the paper: *"A new structure called the ConstraintMap is added
to the machine state.  The ConstraintMap structure maps each register or
memory location containing err to a set of constraints that are satisfied by
the value in the location."*

The map also records relational constraints between two symbolic locations
(produced when both operands of a comparison hold ``err``) and exposes the
satisfiability query used by the model checker to prune infeasible branches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from .constraint import Constraint, Location, RelationalConstraint
from .constraint_set import ConstraintSet
from .solver import relational_conflict


class ConstraintMap:
    """Per-state mapping from symbolic locations to their constraint sets.

    Instances are treated as immutable: mutating operations return a new map
    sharing unmodified entries with the original, which keeps forking cheap.
    """

    __slots__ = ("_sets", "_relational", "_hash", "empty")

    def __init__(self,
                 sets: Optional[Dict[Location, ConstraintSet]] = None,
                 relational: FrozenSet[RelationalConstraint] = frozenset()) -> None:
        self._sets: Dict[Location, ConstraintSet] = dict(sets or {})
        self._relational: FrozenSet[RelationalConstraint] = relational
        self._hash: Optional[int] = None
        #: True when the map records nothing at all — the hot-path writes in
        #: the machine state skip constraint bookkeeping entirely then.
        self.empty: bool = not self._sets and not self._relational

    # ------------------------------------------------------------------ access

    def constraints_for(self, location: Location) -> ConstraintSet:
        """The constraint set currently known for *location* (may be empty)."""
        return self._sets.get(location, ConstraintSet())

    def relational(self) -> FrozenSet[RelationalConstraint]:
        return self._relational

    def tracked_locations(self) -> Tuple[Location, ...]:
        return tuple(self._sets.keys())

    def __contains__(self, location: Location) -> bool:
        return location in self._sets

    def __len__(self) -> int:
        return len(self._sets)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ConstraintMap)
                and self._sets == other._sets
                and self._relational == other._relational)

    def __hash__(self) -> int:
        # Maps are immutable-by-convention, so the hash is computed once;
        # every machine-state fingerprint includes it.
        value = self._hash
        if value is None:
            value = hash((frozenset(self._sets.items()), self._relational))
            self._hash = value
        return value

    def __reduce__(self):
        # Rebuild through __init__ on unpickling: the cached hash is salted
        # per process (string hashing) and must not travel between workers.
        return (ConstraintMap, (self._sets, self._relational))

    def __repr__(self) -> str:
        parts = [f"{loc!r}: {cset!r}" for loc, cset in sorted(
            self._sets.items(), key=lambda item: (item[0].kind, item[0].index))]
        if self._relational:
            parts.append("relational: " + ", ".join(
                repr(c) for c in sorted(self._relational, key=repr)))
        return "ConstraintMap(" + "; ".join(parts) + ")"

    # --------------------------------------------------------------- mutation

    def copy(self) -> "ConstraintMap":
        return ConstraintMap(self._sets, self._relational)

    def with_constraint(self, location: Location,
                        constraint: Constraint) -> "ConstraintMap":
        """Return a new map with *constraint* added for *location*."""
        new_sets = dict(self._sets)
        new_sets[location] = self.constraints_for(location).add(constraint)
        return ConstraintMap(new_sets, self._relational)

    def with_constraints(self, location: Location,
                         constraints: Iterable[Constraint]) -> "ConstraintMap":
        new_sets = dict(self._sets)
        new_sets[location] = self.constraints_for(location).add_all(constraints)
        return ConstraintMap(new_sets, self._relational)

    def with_relational(self,
                        constraint: RelationalConstraint) -> "ConstraintMap":
        """Return a new map recording a location-vs-location fact."""
        return ConstraintMap(self._sets,
                             self._relational | {constraint.normalized()})

    def without(self, location: Location) -> "ConstraintMap":
        """Drop every fact about *location* (it was overwritten by a concrete value)."""
        if location not in self._sets and not any(
                rel.left == location or rel.right == location
                for rel in self._relational):
            return self
        new_sets = {loc: cset for loc, cset in self._sets.items() if loc != location}
        new_relational = frozenset(
            rel for rel in self._relational
            if rel.left != location and rel.right != location)
        return ConstraintMap(new_sets, new_relational)

    def transfer(self, source: Location, destination: Location) -> "ConstraintMap":
        """Copy the constraints of *source* onto *destination* (``mov`` of err).

        The paper's abstraction would leave the destination unconstrained;
        transferring constraints for a plain copy is sound (a copy preserves
        the value exactly) and reduces false positives without affecting
        soundness, so we do it for register-to-register moves.
        """
        new_sets = dict(self._sets)
        new_sets[destination] = self.constraints_for(source)
        return ConstraintMap(new_sets, self._relational)

    # --------------------------------------------------------------- reasoning

    def satisfiable(self) -> bool:
        """Is the conjunction of every recorded constraint satisfiable?

        Per-location sets are checked exactly; relational constraints are
        checked by the light-weight conflict detector in
        :mod:`repro.constraints.solver`.
        """
        for cset in self._sets.values():
            if not cset.satisfiable():
                return False
        return not relational_conflict(self._relational, self._sets)

    def entails(self, location: Location, constraint: Constraint) -> bool:
        return self.constraints_for(location).entails(constraint)

    def refutes(self, location: Location, constraint: Constraint) -> bool:
        return self.constraints_for(location).refutes(constraint)

    def witness(self, location: Location) -> Optional[int]:
        """A concrete value consistent with everything known about *location*."""
        return self.constraints_for(location).witness()

    def describe(self) -> str:
        """Readable multi-line description used in reports and traces."""
        lines = []
        for location, cset in sorted(self._sets.items(),
                                     key=lambda item: (item[0].kind, item[0].index)):
            if not cset.is_unconstrained():
                lines.append(f"  {location!r} in {cset!r}")
        for rel in sorted(self._relational, key=repr):
            lines.append(f"  {rel!r}")
        return "\n".join(lines) if lines else "  (no constraints)"
