"""Light-weight relational reasoning for the custom constraint solver.

The paper's solver plays two roles (Section 3.2 and 5.2):

1. decide whether the conjunction of constraints accumulated along a forked
   path is satisfiable, truncating the search when it is not, and
2. eliminate redundant constraints.

Per-location constant constraints are solved exactly by
:class:`~repro.constraints.constraint_set.ConstraintSet`.  This module adds a
conservative checker for the *relational* constraints between two symbolic
locations (for example ``$(3) > $(4)`` recorded by the false branch of a loop
condition): it detects direct contradictions, antisymmetry violations and
cycles in the strict-order graph, plus inconsistencies between a relational
constraint and the constant bounds of its endpoints.  Being conservative is
safe — failing to detect an unsatisfiable combination merely leaves a
false-positive path alive, which the paper explicitly tolerates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from .constraint import ComparisonOp, Location, RelationalConstraint
from .constraint_set import ConstraintSet


def _bounds(cset: Optional[ConstraintSet]) -> Tuple[Optional[int], Optional[int]]:
    """Inclusive (low, high) bounds implied by a constraint set, if any."""
    if cset is None:
        return None, None
    simplified = cset.simplified()
    if not simplified.satisfiable():
        return 1, 0  # empty range
    if simplified.equal is not None:
        return simplified.equal, simplified.equal
    low = (simplified.lower.as_inclusive_lower()
           if simplified.lower is not None else None)
    high = (simplified.upper.as_inclusive_upper()
            if simplified.upper is not None else None)
    return low, high


def _pairwise_conflict(a: RelationalConstraint, b: RelationalConstraint) -> bool:
    """Do two relational constraints over the same location pair contradict?"""
    if {a.left, a.right} != {b.left, b.right}:
        return False
    second = b if (b.left == a.left and b.right == a.right) else \
        RelationalConstraint(b.right, b.op.flip(), b.left)
    incompatible = {
        ComparisonOp.EQ: {ComparisonOp.NE, ComparisonOp.GT, ComparisonOp.LT},
        ComparisonOp.NE: {ComparisonOp.EQ},
        ComparisonOp.GT: {ComparisonOp.EQ, ComparisonOp.LT, ComparisonOp.LE},
        ComparisonOp.LT: {ComparisonOp.EQ, ComparisonOp.GT, ComparisonOp.GE},
        ComparisonOp.GE: {ComparisonOp.LT},
        ComparisonOp.LE: {ComparisonOp.GT},
    }
    return second.op in incompatible[a.op]


def _bound_conflict(constraint: RelationalConstraint,
                    sets: Mapping[Location, ConstraintSet]) -> bool:
    """Does a relational constraint contradict its endpoints' constant bounds?"""
    left_low, left_high = _bounds(sets.get(constraint.left))
    right_low, right_high = _bounds(sets.get(constraint.right))
    op = constraint.op
    if op is ComparisonOp.GT:
        # left > right impossible if max(left) <= min(right)
        return (left_high is not None and right_low is not None
                and left_high <= right_low)
    if op is ComparisonOp.GE:
        return (left_high is not None and right_low is not None
                and left_high < right_low)
    if op is ComparisonOp.LT:
        return (left_low is not None and right_high is not None
                and left_low >= right_high)
    if op is ComparisonOp.LE:
        return (left_low is not None and right_high is not None
                and left_low > right_high)
    if op is ComparisonOp.EQ:
        if left_low is not None and right_high is not None and left_low > right_high:
            return True
        if left_high is not None and right_low is not None and left_high < right_low:
            return True
        return False
    if op is ComparisonOp.NE:
        # Contradiction only if both sides are pinned to the same single value.
        return (left_low is not None and left_low == left_high
                and right_low is not None and right_low == right_high
                and left_low == right_low)
    return False


def _strict_cycle(constraints: Iterable[RelationalConstraint]) -> bool:
    """Detect a cycle in the <=/< graph that contains at least one strict edge."""
    # Build edges meaning "left < right" (strict) or "left <= right".
    edges: Dict[Location, Set[Tuple[Location, bool]]] = {}

    def add_edge(small: Location, big: Location, strict: bool) -> None:
        edges.setdefault(small, set()).add((big, strict))

    for constraint in constraints:
        op = constraint.op
        if op is ComparisonOp.LT:
            add_edge(constraint.left, constraint.right, True)
        elif op is ComparisonOp.LE:
            add_edge(constraint.left, constraint.right, False)
        elif op is ComparisonOp.GT:
            add_edge(constraint.right, constraint.left, True)
        elif op is ComparisonOp.GE:
            add_edge(constraint.right, constraint.left, False)
        elif op is ComparisonOp.EQ:
            add_edge(constraint.left, constraint.right, False)
            add_edge(constraint.right, constraint.left, False)

    # DFS looking for a cycle with a strict edge.
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Location, int] = {}

    def dfs(node: Location, stack: Dict[Location, bool]) -> bool:
        color[node] = GRAY
        for successor, strict in edges.get(node, ()):
            if color.get(successor, WHITE) == GRAY:
                # Found a cycle: strict if any edge on the cycle is strict.
                if strict or any(stack[n] for n in _cycle_nodes(stack, successor)):
                    return True
            elif color.get(successor, WHITE) == WHITE:
                stack[successor] = strict
                if dfs(successor, stack):
                    return True
                del stack[successor]
        color[node] = BLACK
        return False

    def _cycle_nodes(stack: Dict[Location, bool], start: Location):
        seen = False
        for node in stack:
            if node == start:
                seen = True
            if seen:
                yield node

    for node in list(edges):
        if color.get(node, WHITE) == WHITE:
            if dfs(node, {node: False}):
                return True
    return False


def relational_conflict(constraints: FrozenSet[RelationalConstraint],
                        sets: Mapping[Location, ConstraintSet]) -> bool:
    """Conservatively decide whether the relational constraints are inconsistent.

    Returns True only when a genuine contradiction is found; returns False when
    consistency cannot be ruled out (which may leave false positives alive, as
    the paper allows).
    """
    constraint_list = list(constraints)
    for i, a in enumerate(constraint_list):
        if _bound_conflict(a, sets):
            return True
        for b in constraint_list[i + 1:]:
            if _pairwise_conflict(a, b):
                return True
    return _strict_cycle(constraint_list)
