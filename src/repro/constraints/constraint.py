"""Primitive constraints recorded by the comparison-handling sub-model.

When the program compares a location holding ``err`` with a concrete integer
and the execution forks, each branch must "remember" the outcome of the
comparison (Section 5.2).  The remembered facts are constraints of the form
``location <op> constant`` where ``<op>`` is one of the six comparison
operators.  Constraints between two symbolic locations are handled separately
by :mod:`repro.constraints.solver` as *relational* constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Location:
    """A storage location that may hold the symbolic ``err`` value.

    Locations identify either a register (``Location.register(3)``), a memory
    word (``Location.memory(1000)``) or the program counter.  They are the
    keys of the :class:`~repro.constraints.constraint_map.ConstraintMap`.
    """

    __slots__ = ("kind", "index")

    REGISTER = "reg"
    MEMORY = "mem"
    PC = "pc"

    def __init__(self, kind: str, index: int = 0) -> None:
        if kind not in (self.REGISTER, self.MEMORY, self.PC):
            raise ValueError(f"unknown location kind {kind!r}")
        self.kind = kind
        self.index = index

    @classmethod
    def register(cls, number: int) -> "Location":
        return cls(cls.REGISTER, number)

    @classmethod
    def memory(cls, address: int) -> "Location":
        return cls(cls.MEMORY, address)

    @classmethod
    def pc(cls) -> "Location":
        return cls(cls.PC, 0)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Location)
                and self.kind == other.kind and self.index == other.index)

    def __hash__(self) -> int:
        return hash((self.kind, self.index))

    def __repr__(self) -> str:
        if self.kind == self.REGISTER:
            return f"$({self.index})"
        if self.kind == self.MEMORY:
            return f"*({self.index})"
        return "PC"


class ComparisonOp(Enum):
    """The six comparison operators supported by the machine and detectors."""

    EQ = "=="
    NE = "=/="
    GT = ">"
    LT = "<"
    GE = ">="
    LE = "<="

    def negate(self) -> "ComparisonOp":
        """The operator describing the *false* branch of this comparison."""
        return _NEGATIONS[self]

    def flip(self) -> "ComparisonOp":
        """The operator obtained by swapping the two operands."""
        return _FLIPS[self]

    def evaluate(self, left: int, right: int) -> bool:
        """Evaluate the comparison on two concrete integers."""
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.GT:
            return left > right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.GE:
            return left >= right
        return left <= right

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOp":
        for op in cls:
            if op.value == symbol:
                return op
        aliases = {"!=": cls.NE, "=": cls.EQ}
        if symbol in aliases:
            return aliases[symbol]
        raise ValueError(f"unknown comparison operator {symbol!r}")


_NEGATIONS = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.GE: ComparisonOp.LT,
}

_FLIPS = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.GE: ComparisonOp.LE,
    ComparisonOp.LE: ComparisonOp.GE,
}


@dataclass(frozen=True)
class Constraint:
    """A single fact ``<op> constant`` about one symbolic location.

    Mirrors the paper's examples such as ``notGreaterThan(5) notEqualTo(2)
    greaterThan(0)``.
    """

    op: ComparisonOp
    constant: int

    def holds_for(self, value: int) -> bool:
        """Does a concrete *value* satisfy this constraint?"""
        return self.op.evaluate(value, self.constant)

    def __repr__(self) -> str:
        names = {
            ComparisonOp.EQ: "equalTo",
            ComparisonOp.NE: "notEqualTo",
            ComparisonOp.GT: "greaterThan",
            ComparisonOp.GE: "notLesserThan",
            ComparisonOp.LT: "lesserThan",
            ComparisonOp.LE: "notGreaterThan",
        }
        return f"{names[self.op]}({self.constant})"


@dataclass(frozen=True)
class RelationalConstraint:
    """A fact relating two symbolic locations, e.g. ``$(3) > $(4)``.

    The custom solver only performs light-weight contradiction detection on
    relational constraints (the paper's solver is similarly conservative); the
    main pruning power comes from the per-location constant constraints.
    """

    left: Location
    op: ComparisonOp
    right: Location

    def normalized(self) -> "RelationalConstraint":
        """Return an equivalent constraint with locations in canonical order."""
        key_left = (self.left.kind, self.left.index)
        key_right = (self.right.kind, self.right.index)
        if key_right < key_left:
            return RelationalConstraint(self.right, self.op.flip(), self.left)
        return self

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op.value} {self.right!r}"
