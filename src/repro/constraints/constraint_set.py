"""Per-location constraint sets and their satisfiability check.

A :class:`ConstraintSet` summarises every fact recorded so far about a single
location that holds ``err``:

* a lower bound (possibly strict),
* an upper bound (possibly strict),
* an optional forced equality, and
* a set of excluded values.

The representation directly supports the paper's example constraint set
``notGreaterThan(5) notEqualTo(2) greaterThan(0)`` ("any integer value
between 0 and 5 excluding 0 and 2 but including 5").  Adding a constraint
eliminates redundancies eagerly, and :meth:`ConstraintSet.satisfiable`
answers whether any integer can satisfy the whole set — the check the model
checker uses to prune false-positive branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from .constraint import ComparisonOp, Constraint


class UnsatisfiableError(Exception):
    """Raised when a constraint set is discovered to be unsatisfiable."""


@dataclass(frozen=True)
class Bound:
    """A one-sided bound on an integer value."""

    value: int
    strict: bool

    def as_inclusive_lower(self) -> int:
        """Smallest integer permitted by this bound when used as a lower bound."""
        return self.value + 1 if self.strict else self.value

    def as_inclusive_upper(self) -> int:
        """Largest integer permitted by this bound when used as an upper bound."""
        return self.value - 1 if self.strict else self.value


class ConstraintSet:
    """The set of constraints attached to one symbolic location.

    The set is immutable from the caller's perspective: :meth:`add` returns a
    new set, leaving the original untouched, so that forked machine states can
    share unmodified constraint sets safely.
    """

    __slots__ = ("lower", "upper", "equal", "excluded")

    def __init__(self, lower: Optional[Bound] = None, upper: Optional[Bound] = None,
                 equal: Optional[int] = None,
                 excluded: FrozenSet[int] = frozenset()) -> None:
        self.lower = lower
        self.upper = upper
        self.equal = equal
        self.excluded = excluded

    # ------------------------------------------------------------------ basics

    def copy(self) -> "ConstraintSet":
        return ConstraintSet(self.lower, self.upper, self.equal, self.excluded)

    def is_unconstrained(self) -> bool:
        return (self.lower is None and self.upper is None
                and self.equal is None and not self.excluded)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ConstraintSet)
                and self.lower == other.lower and self.upper == other.upper
                and self.equal == other.equal and self.excluded == other.excluded)

    def __hash__(self) -> int:
        return hash((self.lower, self.upper, self.equal, self.excluded))

    def __repr__(self) -> str:
        return "{" + " ".join(repr(c) for c in self.to_constraints()) + "}"

    # ------------------------------------------------------------------ adding

    def add(self, constraint: Constraint) -> "ConstraintSet":
        """Return a new set including *constraint* (may be unsatisfiable)."""
        lower, upper, equal = self.lower, self.upper, self.equal
        excluded = set(self.excluded)
        op, constant = constraint.op, constraint.constant

        if op is ComparisonOp.EQ:
            if equal is None:
                equal = constant
            elif equal != constant:
                return _IMPOSSIBLE
        elif op is ComparisonOp.NE:
            excluded.add(constant)
        elif op is ComparisonOp.GT:
            lower = _tighten_lower(lower, Bound(constant, strict=True))
        elif op is ComparisonOp.GE:
            lower = _tighten_lower(lower, Bound(constant, strict=False))
        elif op is ComparisonOp.LT:
            upper = _tighten_upper(upper, Bound(constant, strict=True))
        elif op is ComparisonOp.LE:
            upper = _tighten_upper(upper, Bound(constant, strict=False))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown comparison {op}")

        return ConstraintSet(lower, upper, equal,
                             frozenset(excluded)).simplified()

    def add_all(self, constraints: Iterable[Constraint]) -> "ConstraintSet":
        result = self
        for constraint in constraints:
            result = result.add(constraint)
        return result

    # --------------------------------------------------------------- reasoning

    def simplified(self) -> "ConstraintSet":
        """Drop redundant exclusions and fold single-point ranges to equalities."""
        lower, upper, equal = self.lower, self.upper, self.equal
        excluded = set(self.excluded)

        if equal is not None:
            # An equality subsumes bounds; keep them only to check consistency.
            if lower is not None and equal < lower.as_inclusive_lower():
                return _IMPOSSIBLE
            if upper is not None and equal > upper.as_inclusive_upper():
                return _IMPOSSIBLE
            if equal in excluded:
                return _IMPOSSIBLE
            return ConstraintSet(None, None, equal, frozenset())

        low = lower.as_inclusive_lower() if lower is not None else None
        high = upper.as_inclusive_upper() if upper is not None else None

        excluded = {value for value in excluded
                    if (low is None or value >= low) and (high is None or value <= high)}

        if low is not None and high is not None:
            if low > high:
                return _IMPOSSIBLE
            # Fold finite ranges that collapse to a single feasible value.
            if high - low <= len(excluded):
                feasible = [v for v in range(low, high + 1) if v not in excluded]
                if not feasible:
                    return _IMPOSSIBLE
                if len(feasible) == 1:
                    return ConstraintSet(None, None, feasible[0], frozenset())
        return ConstraintSet(lower, upper, None, frozenset(excluded))

    def satisfiable(self) -> bool:
        """Can any integer satisfy every constraint in the set?"""
        return self.simplified() is not _IMPOSSIBLE and not (
            self is _IMPOSSIBLE)

    def witness(self) -> Optional[int]:
        """Return some integer satisfying the set, or None if unsatisfiable."""
        simplified = self.simplified()
        if simplified is _IMPOSSIBLE:
            return None
        if simplified.equal is not None:
            return simplified.equal
        low = (simplified.lower.as_inclusive_lower()
               if simplified.lower is not None else None)
        high = (simplified.upper.as_inclusive_upper()
                if simplified.upper is not None else None)
        if low is None and high is None:
            candidate = 0
        elif low is None:
            candidate = high
        else:
            candidate = low
        step = 1 if high is None or low is not None else -1
        for _ in range(len(simplified.excluded) + 1):
            if candidate in simplified.excluded:
                candidate += step
                continue
            if low is not None and candidate < low:
                return None
            if high is not None and candidate > high:
                return None
            return candidate
        return None

    def admits(self, value: int) -> bool:
        """Does the concrete integer *value* satisfy the whole set?"""
        simplified = self.simplified()
        if simplified is _IMPOSSIBLE:
            return False
        if simplified.equal is not None:
            return value == simplified.equal
        if simplified.lower is not None and value < simplified.lower.as_inclusive_lower():
            return False
        if simplified.upper is not None and value > simplified.upper.as_inclusive_upper():
            return False
        return value not in simplified.excluded

    def entails(self, constraint: Constraint) -> bool:
        """Is *constraint* already implied by the set?

        Used to answer comparisons deterministically when possible (for
        example a detector re-checking a condition the branch already
        established), avoiding spurious forks.
        """
        simplified = self.simplified()
        if simplified is _IMPOSSIBLE:
            return True
        op, constant = constraint.op, constraint.constant
        if simplified.equal is not None:
            return op.evaluate(simplified.equal, constant)
        low = (simplified.lower.as_inclusive_lower()
               if simplified.lower is not None else None)
        high = (simplified.upper.as_inclusive_upper()
                if simplified.upper is not None else None)
        if op is ComparisonOp.GT:
            return low is not None and low > constant
        if op is ComparisonOp.GE:
            return low is not None and low >= constant
        if op is ComparisonOp.LT:
            return high is not None and high < constant
        if op is ComparisonOp.LE:
            return high is not None and high <= constant
        if op is ComparisonOp.NE:
            if constant in simplified.excluded:
                return True
            if low is not None and constant < low:
                return True
            if high is not None and constant > high:
                return True
            return False
        if op is ComparisonOp.EQ:
            return low is not None and high is not None and low == high == constant \
                and constant not in simplified.excluded
        return False

    def refutes(self, constraint: Constraint) -> bool:
        """Is *constraint* impossible given the set?"""
        return not self.add(constraint).satisfiable()

    # ----------------------------------------------------------------- exports

    def to_constraints(self) -> Tuple[Constraint, ...]:
        """Export the set as a tuple of primitive constraints (canonical order)."""
        constraints: List[Constraint] = []
        if self.equal is not None:
            constraints.append(Constraint(ComparisonOp.EQ, self.equal))
        if self.lower is not None:
            op = ComparisonOp.GT if self.lower.strict else ComparisonOp.GE
            constraints.append(Constraint(op, self.lower.value))
        if self.upper is not None:
            op = ComparisonOp.LT if self.upper.strict else ComparisonOp.LE
            constraints.append(Constraint(op, self.upper.value))
        for value in sorted(self.excluded):
            constraints.append(Constraint(ComparisonOp.NE, value))
        return tuple(constraints)


class _Impossible(ConstraintSet):
    """Sentinel constraint set admitting no value at all."""

    def add(self, constraint: Constraint) -> "ConstraintSet":
        return self

    def simplified(self) -> "ConstraintSet":
        return self

    def satisfiable(self) -> bool:
        return False

    def witness(self) -> Optional[int]:
        return None

    def admits(self, value: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "{unsatisfiable}"


_IMPOSSIBLE = _Impossible()

#: Public handle for the canonical unsatisfiable set.
IMPOSSIBLE = _IMPOSSIBLE


def _tighten_lower(current: Optional[Bound], new: Bound) -> Bound:
    if current is None:
        return new
    if new.as_inclusive_lower() > current.as_inclusive_lower():
        return new
    return current


def _tighten_upper(current: Optional[Bound], new: Bound) -> Bound:
    if current is None:
        return new
    if new.as_inclusive_upper() < current.as_inclusive_upper():
        return new
    return current


def from_constraints(constraints: Iterable[Constraint]) -> ConstraintSet:
    """Build a constraint set from primitive constraints."""
    return ConstraintSet().add_all(constraints)
