"""Length-prefixed message framing for the TCP broker protocol.

A message is a JSON *header* followed by zero or more opaque binary *blobs*:

    [4-byte big-endian header length][header JSON, utf-8]
    [4-byte big-endian blob length][blob bytes]            × header["blobs"]

The header carries the operation and its scalar arguments (indexes, tokens,
counts) in JSON so the wire format is inspectable and language-neutral; the
blobs carry pickled campaign objects (manifests, task payloads, results) the
broker server never needs to interpret — it stores and forwards bytes.
Keeping pickle out of the server is deliberate: the server can run on a host
without the ``repro`` package's workload modules, and a malformed client
cannot make the server unpickle anything.

Truncated or oversized frames raise :class:`ProtocolError`; a clean EOF at a
message boundary is reported as ``None`` by :func:`recv_message` so servers
can tell an orderly disconnect from a torn frame.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import List, Optional, Sequence, Tuple

#: Hard cap on any single frame; a length prefix beyond this is garbage
#: (or an attack), not a campaign payload.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Hard cap on blobs per message.  Senders batching an unbounded set (the
#: server's results op) must slice to this; the receiver rejects beyond it.
MAX_BLOBS = 64

_LENGTH = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """The peer sent a frame that is not valid broker protocol."""


class TruncatedFrame(ProtocolError):
    """The connection died mid-frame (peer crash or network loss).

    Distinct from other :class:`ProtocolError`\\ s because it is the one
    framing failure that is plausibly transient: a client may retry it on a
    fresh connection, whereas a malformed header or blob count is
    deterministic and retrying cannot help.
    """


def _recv_exact(sock: socket.socket, count: int,
                allow_eof: bool = False) -> Optional[bytes]:
    """Read exactly *count* bytes, or None on a clean EOF before byte one."""
    chunks: List[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(min(65536, count - received))
        if not chunk:
            if allow_eof and received == 0:
                return None
            raise TruncatedFrame(
                f"connection closed mid-frame ({received}/{count} bytes)")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def _recv_chunk(sock: socket.socket,
                allow_eof: bool = False) -> Optional[bytes]:
    prefix = _recv_exact(sock, _LENGTH.size, allow_eof=allow_eof)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte cap")
    return _recv_exact(sock, length) if length else b""


def send_message(sock: socket.socket, header: dict,
                 blobs: Sequence[bytes] = ()) -> None:
    """Send one framed message (header JSON plus its binary blobs)."""
    header = dict(header)
    header["blobs"] = len(blobs)
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_LENGTH.pack(len(encoded)), encoded]
    for blob in blobs:
        parts.append(_LENGTH.pack(len(blob)))
        parts.append(blob)
    sock.sendall(b"".join(parts))


def recv_message(sock: socket.socket,
                 allow_eof: bool = False,
                 ) -> Optional[Tuple[dict, List[bytes]]]:
    """Receive one framed message; None on clean EOF (if *allow_eof*)."""
    raw = _recv_chunk(sock, allow_eof=allow_eof)
    if raw is None:
        return None
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable message header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"message header must be an object, "
                            f"got {type(header).__name__}")
    blob_count = header.pop("blobs", 0)
    if (not isinstance(blob_count, int) or blob_count < 0
            or blob_count > MAX_BLOBS):
        raise ProtocolError(f"invalid blob count {blob_count!r}")
    blobs = []
    for _ in range(blob_count):
        blob = _recv_chunk(sock)
        assert blob is not None  # only the first chunk may report EOF
        blobs.append(blob)
    return header, blobs
