"""The socket-backed :class:`~repro.distributed.broker.Broker` client.

:class:`SocketBroker` speaks the framed protocol of :mod:`repro.net.framing`
to a :class:`~repro.net.server.BrokerServer` and implements the exact
contract of :class:`~repro.distributed.broker.FilesystemBroker`, so the
coordinator, the standalone worker loop and the whole-task strategy run
unchanged over TCP — ``--queue tcp://host:port`` instead of ``--queue DIR``.

Connection handling is deliberately simple: one persistent connection,
re-opened transparently when a call fails mid-flight.  Every operation is
safe to retry — the worst case is a ``claim`` whose response is lost on the
wire, which strands a server-side lease that expires and requeues like any
dead worker's claim.  Task and result payloads travel as pickle blobs the
server never interprets; corrupt payloads are detected on this side and the
offending task is settled away so the claim loop keeps making progress.
"""

from __future__ import annotations

import pickle
import socket
import time
from typing import Callable, List, Optional, Sequence, Set, Tuple

from .. import obs as _obs
from ..distributed.broker import Broker, CampaignManifest, ClaimedTask
from .framing import (ProtocolError, TruncatedFrame, recv_message,
                      send_message)


class BrokerConnectionError(ConnectionError):
    """The broker server could not be reached (after retries)."""


class BrokerOperationError(RuntimeError):
    """The broker server rejected or failed an operation."""


def parse_queue_url(url: str) -> Tuple[str, int]:
    """Parse a ``tcp://host:port`` queue URL into (host, port)."""
    if not url.startswith("tcp://"):
        raise ValueError(f"not a tcp:// queue URL: {url!r}")
    rest = url[len("tcp://"):].rstrip("/")
    host, separator, port_text = rest.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise ValueError(f"expected tcp://HOST:PORT, got {url!r}")
    port = int(port_text)
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in {url!r} (expected 1-65535)")
    return host, port


class SocketBroker(Broker):
    """A :class:`Broker` over one TCP connection (see the module docstring).

    *claim tokens* ride in :attr:`ClaimedTask.claim_path` — the field the
    filesystem broker uses for the claim file path — so the claimed-task
    handle stays backend-agnostic.
    """

    def __init__(self, url: str, lease_seconds: float = 60.0,
                 timeout: float = 60.0, connect_retries: int = 4) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.url = url
        self.host, self.port = parse_queue_url(url)
        self.lease_seconds = lease_seconds
        self.timeout = timeout
        self.connect_retries = connect_retries
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------- transport

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def __enter__(self) -> "SocketBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, header: dict, blobs: Sequence[bytes] = (),
              ) -> Tuple[dict, List[bytes]]:
        """One request/response round-trip, reconnecting on failure.

        Retries use a short linear backoff so a worker that races the
        broker's startup (or rides out its restart) attaches as soon as the
        port listens instead of dying on the first refused connection.
        """
        hub = _obs.get()
        started = time.monotonic() if hub.enabled else 0.0
        last_error: Optional[Exception] = None
        for attempt in range(self.connect_retries + 1):
            if attempt:
                time.sleep(min(2.0, 0.1 * (2 ** (attempt - 1))))
            try:
                sock = self._connect()
                send_message(sock, header, blobs)
                message = recv_message(sock)
            except ProtocolError as exc:
                # ProtocolError must precede OSError here (it is one): a
                # torn frame is plausibly transient — broker restart,
                # network blip — and falls through to the retry, but any
                # other framing failure is a deterministically malformed
                # response that no amount of retrying can fix.
                self.close()
                if not isinstance(exc, TruncatedFrame):
                    raise BrokerOperationError(
                        f"broker at {self.url} sent an invalid response to "
                        f"{header.get('op')!r}: {exc}") from exc
                last_error = exc
                continue
            except OSError as exc:
                self.close()
                last_error = exc
                continue
            assert message is not None
            response, response_blobs = message
            if "error" in response:
                raise BrokerOperationError(
                    f"broker rejected {header.get('op')!r}: {response['error']}")
            if hub.enabled:
                op = header.get("op")
                hub.count(f"net.ops.{op}")
                hub.observe(f"net.{op}.seconds",
                            time.monotonic() - started)
            return response, response_blobs
        raise BrokerConnectionError(
            f"broker at {self.url} unreachable: {last_error}") from last_error

    @staticmethod
    def _dumps(payload: object) -> bytes:
        return pickle.dumps(payload, protocol=4)

    # -------------------------------------------------------- coordinator side

    def publish_manifest(self, manifest: CampaignManifest) -> None:
        self._call({"op": "publish_manifest"}, [self._dumps(manifest)])

    def reset(self) -> None:
        self._call({"op": "reset"})

    def put_task(self, index: int, payload: object) -> None:
        self._call({"op": "put_task", "index": index},
                   [self._dumps(payload)])

    def close_queue(self, total_tasks: int) -> None:
        self._call({"op": "close_queue", "total": total_tasks})

    def total_tasks(self) -> Optional[int]:
        response, _ = self._call({"op": "stats"})
        return response["total"]

    def fetch_new_results(self, seen: Set[int]) -> List[Tuple[int, object]]:
        response, blobs = self._call({"op": "results", "seen": sorted(seen)})
        return [(index, pickle.loads(blob))
                for index, blob in zip(response["indexes"], blobs)]

    def discard_result(self, index: int) -> None:
        self._call({"op": "discard_result", "index": index})

    def requeue_expired(self) -> List[int]:
        response, _ = self._call({"op": "requeue_expired"})
        return response["indexes"]

    # ------------------------------------------------------------- worker side

    def load_manifest(self, timeout: Optional[float] = None,
                      poll_interval: float = 0.1) -> CampaignManifest:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            response, blobs = self._call({"op": "manifest"})
            if response["present"]:
                return pickle.loads(blobs[0])
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"no campaign manifest published at {self.url}")
            time.sleep(poll_interval)

    def claim_next(self, result_valid: Optional[Callable[[object], bool]]
                   = None) -> Optional[ClaimedTask]:
        while True:
            response, blobs = self._call(
                {"op": "claim", "validate": result_valid is not None,
                 "lease": self.lease_seconds})
            status = response["status"]
            if status == "empty":
                return None
            index, token = response["index"], response["token"]
            try:
                payload = pickle.loads(blobs[0])
            except Exception:
                # A torn/corrupt task payload: settle it away (quarantine)
                # so the claim loop keeps making progress on intact tasks.
                self._call({"op": "settle", "index": index, "token": token})
                continue
            if status == "conflict":
                # The index already has a result; honour the caller's
                # validator exactly like the filesystem claim loop does.
                settled = True
                try:
                    settled = bool(result_valid(pickle.loads(blobs[1])))
                except Exception:
                    settled = False  # unreadable result cannot settle a task
                if settled:
                    self._call({"op": "settle", "index": index,
                                "token": token})
                    continue
            return ClaimedTask(index=index, payload=payload, claim_path=token)

    def renew_lease(self, claim: ClaimedTask) -> None:
        self._call({"op": "renew", "index": claim.index,
                    "token": claim.claim_path, "lease": self.lease_seconds})

    def release(self, claim: ClaimedTask) -> None:
        self._call({"op": "release", "index": claim.index,
                    "token": claim.claim_path})

    def complete(self, claim: ClaimedTask, result_payload: object) -> None:
        self._call({"op": "complete", "index": claim.index,
                    "token": claim.claim_path},
                   [self._dumps(result_payload)])

    # ----------------------------------------------------------------- queries

    def telemetry(self) -> dict:
        """The broker's live telemetry status (queue depths, ops, leases)."""
        response, _ = self._call({"op": "telemetry"})
        return response

    def _stats(self) -> dict:
        response, _ = self._call({"op": "stats"})
        return response

    def pending_count(self) -> int:
        return self._stats()["pending"]

    def claimed_count(self) -> int:
        return self._stats()["claimed"]

    def results_count(self) -> int:
        return self._stats()["results"]

    def is_drained(self) -> bool:
        stats = self._stats()
        return stats["total"] is not None and stats["results"] >= stats["total"]
