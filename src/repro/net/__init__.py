"""Network campaign fabric: the TCP broker and its client.

``repro.net`` turns the distributed backend into a genuinely networked
service for hosts that share nothing but a route to one port:

* :class:`BrokerServer` — a stdlib-only threaded TCP server holding one
  campaign queue in memory (``repro broker --listen HOST:PORT``); payloads
  are opaque bytes, so the server never unpickles campaign objects;
* :class:`SocketBroker` — the client implementing the same
  :class:`~repro.distributed.broker.Broker` contract as the filesystem
  broker, so ``repro worker --queue tcp://host:port`` and ``repro analyze
  --backend distributed --queue tcp://…`` work unchanged;
* :mod:`repro.net.framing` — the length-prefixed JSON/pickle wire format.

Broker selection by queue URL lives in
:func:`repro.distributed.broker.open_broker`.
"""

from .client import (BrokerConnectionError, BrokerOperationError,
                     SocketBroker, parse_queue_url)
from .framing import ProtocolError, recv_message, send_message
from .server import BrokerServer, parse_listen_address

__all__ = [
    "BrokerConnectionError", "BrokerOperationError", "BrokerServer",
    "ProtocolError", "SocketBroker", "parse_listen_address",
    "parse_queue_url", "recv_message", "send_message",
]
