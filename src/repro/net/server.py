"""The TCP broker server (``repro broker --listen HOST:PORT``).

The server is the network twin of the shared queue directory: it holds one
campaign's manifest, pending tasks, claims and results in memory and exposes
the :class:`~repro.distributed.broker.Broker` operations over the framed
protocol of :mod:`repro.net.framing`.  Payloads are stored and returned as
opaque byte strings — the server never unpickles anything, so it can run
standalone on a host that shares nothing with the coordinator but a port.

Semantics mirror :class:`~repro.distributed.broker.FilesystemBroker`
operation for operation:

* a claim hands out the lowest pending index exactly once and starts a
  lease; leases are renewed by token and expire on the server's monotonic
  clock, returning the task to the pending queue;
* completion is idempotent — duplicate completions of a requeued task
  overwrite the result with byte-identical payloads and drop any live claim;
* a pending task whose index already has a result is *settled* (dropped)
  unless the claiming worker wants to validate the result itself, in which
  case the server answers ``conflict`` with both payloads and lets the
  worker either settle the claim or keep it.

Connections are served by one thread each, bounded by an idle timeout;
protocol errors close the connection without touching queue state, so a
half-written frame from a dying worker can never corrupt the campaign.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Dict, List, Optional, Tuple

from .framing import MAX_BLOBS, ProtocolError, recv_message, send_message

_TOKEN_LOCK = threading.Lock()
_TOKEN_COUNTER = [0]


def _new_token() -> str:
    with _TOKEN_LOCK:
        _TOKEN_COUNTER[0] += 1
        return f"claim-{_TOKEN_COUNTER[0]:08d}"


class _Claim:
    """A leased task held server-side: its payload, owner token, deadline."""

    __slots__ = ("payload", "token", "deadline")

    def __init__(self, payload: bytes, token: str, deadline: float) -> None:
        self.payload = payload
        self.token = token
        self.deadline = deadline


class _BrokerState:
    """One campaign's queue state; every method runs under the single lock."""

    def __init__(self, lease_seconds: float) -> None:
        self.lock = threading.Lock()
        self.default_lease = lease_seconds
        self.manifest: Optional[bytes] = None
        self.pending: Dict[int, bytes] = {}
        self.claimed: Dict[int, _Claim] = {}
        self.results: Dict[int, bytes] = {}
        self.total: Optional[int] = None

    # Callers hold self.lock for everything below.

    def requeue_expired(self, now: float) -> List[int]:
        expired = [index for index, claim in self.claimed.items()
                   if now > claim.deadline]
        for index in expired:
            self.pending[index] = self.claimed.pop(index).payload
        return sorted(expired)

    def claim(self, validate: bool, lease: float,
              now: float) -> Tuple[dict, List[bytes]]:
        self.requeue_expired(now)
        for index in sorted(self.pending):
            result = self.results.get(index)
            if result is not None and not validate:
                # A slow twin already delivered this task's result (requeue
                # race); drop the stale queue entry instead of re-running it.
                del self.pending[index]
                continue
            claim = _Claim(self.pending.pop(index), _new_token(), now + lease)
            self.claimed[index] = claim
            if result is not None:
                return ({"status": "conflict", "index": index,
                         "token": claim.token}, [claim.payload, result])
            return ({"status": "task", "index": index,
                     "token": claim.token}, [claim.payload])
        return ({"status": "empty"}, [])

    def drop_claim(self, index: int, token: str,
                   requeue: bool) -> bool:
        claim = self.claimed.get(index)
        if claim is None or claim.token != token:
            return False  # expired and requeued (or re-claimed): no-op
        del self.claimed[index]
        if requeue:
            self.pending[index] = claim.payload
        return True


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a loop of (request message, response message)."""

    def handle(self) -> None:  # pragma: no cover - exercised over TCP
        server: BrokerServer = self.server.broker  # type: ignore[attr-defined]
        self.request.settimeout(server.connection_timeout)
        try:
            while True:
                message = recv_message(self.request, allow_eof=True)
                if message is None:
                    return  # orderly disconnect
                header, blobs = message
                try:
                    response, out_blobs = server.dispatch(header, blobs)
                except ProtocolError:
                    raise
                except Exception as exc:  # surface op failures to the client
                    response, out_blobs = {"error": f"{type(exc).__name__}: "
                                                    f"{exc}"}, []
                send_message(self.request, response, out_blobs)
        except (ProtocolError, socket.timeout, OSError):
            return  # drop the connection; queue state is untouched


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class BrokerServer:
    """A standalone TCP broker for one campaign queue.

    Start it programmatically (``start()``/``stop()``, used by tests and by
    coordinators that own their broker) or serve it in the foreground from
    the CLI via :meth:`serve_forever`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_seconds: float = 60.0,
                 connection_timeout: float = 600.0) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.connection_timeout = connection_timeout
        self.state = _BrokerState(lease_seconds)
        self._server = _Server((host, port), _Handler)
        self._server.broker = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()
        #: Per-operation request counts, guarded by the state lock.
        self._op_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"tcp://{host}:{port}"

    def start(self) -> "BrokerServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="broker-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def request_stop(self) -> None:
        """Flag the serving loop to exit; returns immediately.

        ``socketserver.shutdown()`` blocks until the loop drains — which
        would deadlock a signal handler running on the serving thread — so
        the blocking call is handed to a helper thread.
        """
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def close(self) -> None:
        """Release the listening socket (after the serving loop exited)."""
        self._server.server_close()

    def stop(self) -> None:
        self._server.shutdown()
        self.close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- dispatch

    def dispatch(self, header: dict, blobs: List[bytes],
                 ) -> Tuple[dict, List[bytes]]:
        """Execute one operation against the queue state."""
        op = header.get("op")
        state = self.state
        now = time.monotonic()
        with state.lock:
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
            if op == "ping":
                return {"ok": True}, []
            if op == "telemetry":
                return self._telemetry_status(now), []
            if op == "publish_manifest":
                state.manifest = blobs[0]
                return {"ok": True}, []
            if op == "manifest":
                if state.manifest is None:
                    return {"present": False}, []
                return {"present": True}, [state.manifest]
            if op == "put_task":
                state.pending[int(header["index"])] = blobs[0]
                return {"ok": True}, []
            if op == "close_queue":
                state.total = int(header["total"])
                return {"ok": True}, []
            if op == "stats":
                return {"pending": len(state.pending),
                        "claimed": len(state.claimed),
                        "results": len(state.results),
                        "total": state.total}, []
            if op == "claim":
                lease = float(header.get("lease") or state.default_lease)
                return state.claim(bool(header.get("validate")), lease, now)
            if op == "renew":
                claim = state.claimed.get(int(header["index"]))
                held = claim is not None and claim.token == header["token"]
                if held:
                    lease = float(header.get("lease") or state.default_lease)
                    claim.deadline = now + lease
                return {"held": held}, []
            if op == "settle":
                state.drop_claim(int(header["index"]), header["token"],
                                 requeue=False)
                return {"ok": True}, []
            if op == "release":
                released = state.drop_claim(int(header["index"]),
                                            header["token"], requeue=True)
                return {"released": released}, []
            if op == "complete":
                index = int(header["index"])
                state.results[index] = blobs[0]
                # Mirror the filesystem broker: completion always clears the
                # live claim for the index, whichever twin holds it.
                state.claimed.pop(index, None)
                return {"ok": True}, []
            if op == "results":
                # Batched to the framing blob cap: a fast fleet can finish
                # more tasks between coordinator polls than one message may
                # carry, so the client drains the remainder on its next
                # fetch (the coordinator refetches immediately while fresh
                # results keep arriving).
                seen = set(header.get("seen", ()))
                fresh = sorted(index for index in state.results
                               if index not in seen)[:MAX_BLOBS]
                return ({"indexes": fresh},
                        [state.results[index] for index in fresh])
            if op == "discard_result":
                state.results.pop(int(header["index"]), None)
                return {"ok": True}, []
            if op == "requeue_expired":
                return {"indexes": state.requeue_expired(now)}, []
            if op == "reset":
                state.manifest = None
                state.pending.clear()
                state.claimed.clear()
                state.results.clear()
                state.total = None
                return {"ok": True}, []
        raise ProtocolError(f"unknown operation {op!r}")

    def _telemetry_status(self, now: float) -> dict:
        """Queue-depth gauges + op counts + live leases (lock held)."""
        state = self.state
        leases = [{"index": index, "expires_in": claim.deadline - now}
                  for index, claim in sorted(state.claimed.items())]
        return {"pending": len(state.pending),
                "claimed": len(state.claimed),
                "results": len(state.results),
                "total": state.total,
                "manifest": state.manifest is not None,
                "uptime_seconds": now - self._started_monotonic,
                "ops": dict(self._op_counts),
                "leases": leases}

    def stats_snapshot(self) -> dict:
        """The telemetry status, for in-process callers (heartbeats)."""
        now = time.monotonic()
        with self.state.lock:
            return self._telemetry_status(now)


def parse_listen_address(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` listen spec (HOST optional, defaults loopback)."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not port_text.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port_text)
