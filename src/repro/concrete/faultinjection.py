"""Concrete (random/exhaustive-value) fault-injection campaigns (Section 6.3).

The paper's validation campaign injects, for every instruction in tcas and
for every register used by that instruction, three extreme values of the
integer range plus three random values — roughly 6000 experiments, later
extended to 41000 — and classifies each run's outcome.  This module
reproduces that campaign on top of the concrete simulator:

* :class:`ValuePolicy` decides which concrete values are injected per
  location (extreme values + seeded random values, as in the paper);
* :class:`ConcreteCampaign` sweeps the injection points, runs every
  experiment and accumulates an outcome distribution (Table 2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..errors.injector import Injection, _register_injection_points
from ..isa.program import Program
from .simulator import ConcreteSimulator
from .stats import OutcomeDistribution, OutcomeLabeler, printed_value_labeler


#: 32-bit two's-complement extremes, as injected by the paper's campaign.
INT32_MAX = 2**31 - 1
INT32_MIN = -(2**31)


@dataclass
class ValuePolicy:
    """Which concrete values are injected into each fault location.

    The default mirrors the paper: three extreme values in the integer range
    (0, INT_MAX, INT_MIN) plus ``random_values`` values drawn uniformly from
    the 32-bit range with a fixed seed (so campaigns are reproducible).
    """

    extreme_values: Tuple[int, ...] = (0, INT32_MAX, INT32_MIN)
    random_values: int = 3
    seed: int = 2008  # year of the paper

    def values_for(self, injection: Injection) -> List[int]:
        seed = (f"{self.seed}:{injection.breakpoint_pc}:{injection.occurrence}:"
                f"{injection.target.kind}:{injection.target.index}")
        rng = random.Random(seed)
        values = list(self.extreme_values)
        for _ in range(self.random_values):
            values.append(rng.randint(INT32_MIN, INT32_MAX))
        return values


@dataclass
class ConcreteExperiment:
    """One executed concrete fault-injection experiment."""

    injection: Injection
    value: int
    label: str
    activated: bool


@dataclass
class ConcreteCampaignResult:
    """Aggregate result of a concrete campaign (the Table 2 data)."""

    distribution: OutcomeDistribution
    experiments: List[ConcreteExperiment] = field(default_factory=list)
    skipped: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_faults(self) -> int:
        return self.distribution.total

    def experiments_with_label(self, label: str) -> List[ConcreteExperiment]:
        return [experiment for experiment in self.experiments
                if experiment.label == label]

    def describe(self) -> str:
        lines = [self.distribution.format_table(),
                 f"  skipped (never activated) = {self.skipped}",
                 f"  elapsed seconds = {self.elapsed_seconds:.2f}"]
        return "\n".join(lines)


class ConcreteCampaign:
    """Exhaustive-by-instruction concrete fault-injection campaign."""

    def __init__(self, program: Program,
                 input_values: Sequence[int] = (),
                 memory: Optional[Dict[int, int]] = None,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 value_policy: Optional[ValuePolicy] = None,
                 register_policy: str = "used",
                 labeler: Optional[OutcomeLabeler] = None,
                 outcome_labels: Sequence[str] = ("0", "1", "2", "other",
                                                  "crash", "hang", "detected"),
                 max_steps: int = 200_000) -> None:
        self.program = program
        self.input_values = tuple(input_values)
        self.memory = dict(memory) if memory else {}
        self.detectors = detectors
        self.value_policy = value_policy or ValuePolicy()
        self.register_policy = register_policy
        self.labeler = labeler or printed_value_labeler()
        self.outcome_labels = tuple(outcome_labels)
        self.simulator = ConcreteSimulator(program, detectors, max_steps=max_steps)

    def enumerate_injections(self,
                             pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        """Register injections at every instruction (or the subset *pcs*)."""
        return _register_injection_points(self.program,
                                          policy=self.register_policy, pcs=pcs)

    def planned_experiments(self,
                            injections: Optional[Sequence[Injection]] = None
                            ) -> int:
        """Number of (injection, value) experiments the campaign would run."""
        if injections is None:
            injections = self.enumerate_injections()
        return sum(len(self.value_policy.values_for(injection))
                   for injection in injections)

    def run(self, injections: Optional[Sequence[Injection]] = None,
            keep_experiments: bool = True,
            max_experiments: Optional[int] = None) -> ConcreteCampaignResult:
        """Run the campaign and build the outcome distribution."""
        start = time.monotonic()
        if injections is None:
            injections = self.enumerate_injections()
        distribution = OutcomeDistribution(labels=self.outcome_labels)
        result = ConcreteCampaignResult(distribution=distribution)
        executed = 0
        for injection in injections:
            for value in self.value_policy.values_for(injection):
                if max_experiments is not None and executed >= max_experiments:
                    result.elapsed_seconds = time.monotonic() - start
                    return result
                run = self.simulator.run_with_injection(
                    injection, value, self.input_values, self.memory)
                executed += 1
                if not run.activated:
                    result.skipped += 1
                    continue
                label = self.labeler(run.state)
                distribution.record(label)
                if keep_experiments:
                    result.experiments.append(ConcreteExperiment(
                        injection=injection, value=value, label=label,
                        activated=run.activated))
        result.elapsed_seconds = time.monotonic() - start
        return result
