"""Outcome statistics for concrete fault-injection campaigns (Table 2).

Table 2 of the paper reports, for the tcas application, the distribution of
program outcomes over thousands of concrete register fault injections:
the fraction of runs printing 0, 1 or 2, printing something else, crashing
and hanging.  :class:`OutcomeDistribution` accumulates such counts for an
arbitrary set of outcome labels and renders the same style of table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..isa.values import is_err
from ..machine.state import MachineState, Status


#: Classifier: maps a terminal state to an outcome label (a table row).
OutcomeLabeler = Callable[[MachineState], str]


def printed_value_labeler(expected_values: Sequence[int] = (0, 1, 2),
                          position: int = -1) -> OutcomeLabeler:
    """Build the Table-2 style labeler.

    Rows are: one row per expected printable value (for tcas: ``0``, ``1``,
    ``2``), ``other`` for any other halted output, ``crash``, ``hang`` and
    ``detected``.  ``position`` selects which printed integer is the
    program's answer (the last one by default).
    """
    expected = tuple(expected_values)

    def labeler(state: MachineState) -> str:
        if state.status is Status.DETECTED:
            return "detected"
        if state.status is Status.EXCEPTION:
            return "crash"
        if state.status is Status.TIMEOUT:
            return "hang"
        printed = state.printed_integers()
        if not printed:
            return "other"
        value = printed[position]
        if is_err(value):
            return "other"
        if value in expected:
            return str(value)
        return "other"

    return labeler


@dataclass
class OutcomeDistribution:
    """Counts of outcomes keyed by label, with Table-2 style rendering."""

    labels: Tuple[str, ...]
    counts: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def __post_init__(self) -> None:
        for label in self.labels:
            self.counts.setdefault(label, 0)

    def record(self, label: str) -> None:
        if label not in self.counts:
            self.counts[label] = 0
        self.counts[label] += 1
        self.total += 1

    def count(self, label: str) -> int:
        return self.counts.get(label, 0)

    def percentage(self, label: str) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.count(label) / self.total

    def as_rows(self) -> List[Tuple[str, int, float]]:
        ordered = list(self.labels) + [label for label in self.counts
                                       if label not in self.labels]
        return [(label, self.count(label), self.percentage(label))
                for label in ordered]

    def format_table(self, title: str = "Program outcome distribution") -> str:
        lines = [title, f"  total faults = {self.total}"]
        lines.append(f"  {'outcome':<12} {'count':>8} {'percent':>9}")
        for label, count, percent in self.as_rows():
            lines.append(f"  {label:<12} {count:>8} {percent:>8.2f}%")
        return "\n".join(lines)

    def merge(self, other: "OutcomeDistribution") -> "OutcomeDistribution":
        merged = OutcomeDistribution(labels=self.labels)
        for label, count in self.counts.items():
            merged.counts[label] = merged.counts.get(label, 0) + count
        for label, count in other.counts.items():
            merged.counts[label] = merged.counts.get(label, 0) + count
        merged.total = self.total + other.total
        return merged


def tcas_outcome_labels() -> Tuple[str, ...]:
    """The row labels of Table 2."""
    return ("0", "1", "2", "other", "crash", "hang", "detected")
