"""Concrete functional simulator — the SimpleScalar substitute (Section 6.3).

The paper validates SymPLFIED's findings against a SimpleScalar simulator
augmented with the ability to inject concrete erroneous values into the
source and destination registers of every instruction.  This module provides
the equivalent facility for the SymPLFIED ISA: a fast, purely concrete
interpreter plus single-experiment fault injection (run to a breakpoint,
overwrite a register/memory word/PC with a concrete value, run to
termination, classify the outcome).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..errors.injector import Injection, apply_corruption
from ..isa.program import Program
from ..machine.decode import decoded_program
from ..machine.executor import run_concrete, run_concrete_until
from ..machine.state import MachineState, Status, initial_state
from ..core.outcomes import Outcome, classify


@dataclass
class ConcreteRun:
    """The result of one concrete execution (with or without a fault)."""

    state: MachineState
    injection: Optional[Injection] = None
    injected_value: Optional[int] = None
    activated: bool = True

    @property
    def output(self) -> Tuple:
        return self.state.output_values()

    def outcome(self, golden_output: Optional[Sequence] = None) -> Outcome:
        return classify(self.state, golden_output)


class ConcreteSimulator:
    """Executes programs concretely, optionally with a single injected fault."""

    def __init__(self, program: Program,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 max_steps: int = 200_000) -> None:
        self.program = program
        self.detectors = detectors
        self.max_steps = max_steps
        # Warm the decode cache up front: a simulator drives thousands of
        # short runs over one program, and decoding at construction keeps the
        # one-time cost out of the first experiment's timing.
        decoded_program(program)

    def fresh_state(self, input_values: Sequence[int] = (),
                    memory: Optional[Dict[int, int]] = None) -> MachineState:
        return initial_state(input_values=input_values, memory=memory)

    def run(self, input_values: Sequence[int] = (),
            memory: Optional[Dict[int, int]] = None) -> ConcreteRun:
        """Fault-free execution."""
        state = self.fresh_state(input_values, memory)
        run_concrete(self.program, state, self.detectors, self.max_steps)
        return ConcreteRun(state=state)

    def golden_output(self, input_values: Sequence[int] = (),
                      memory: Optional[Dict[int, int]] = None) -> Tuple:
        """Output of the fault-free run (raises if it does not halt cleanly)."""
        run = self.run(input_values, memory)
        if run.state.status is not Status.HALTED:
            raise RuntimeError(
                f"golden run did not halt: {run.state.status.value} "
                f"({run.state.exception})")
        return run.output

    def run_with_injection(self, injection: Injection, value: int,
                           input_values: Sequence[int] = (),
                           memory: Optional[Dict[int, int]] = None) -> ConcreteRun:
        """Inject a concrete *value* at the injection point and run to the end.

        Mirrors the augmented SimpleScalar flow: execute to the breakpoint,
        overwrite the target, continue.  If the breakpoint is never reached
        the run is reported with ``activated=False`` (the fault is latent).
        """
        state = self.fresh_state(input_values, memory)
        run_concrete_until(self.program, state, injection.breakpoint_pc,
                           occurrence=injection.occurrence,
                           detectors=self.detectors, max_steps=self.max_steps)
        activated = state.is_running and state.pc == injection.breakpoint_pc
        if activated:
            apply_corruption(state, injection.target, value)
            run_concrete(self.program, state, self.detectors, self.max_steps)
        return ConcreteRun(state=state, injection=injection,
                           injected_value=value, activated=activated)

    def run_with_spec(self, spec: Injection,
                      input_values: Sequence[int] = (),
                      memory: Optional[Dict[int, int]] = None) -> ConcreteRun:
        """Run one planned fault spec concretely.

        Unlike :meth:`run_with_injection`, the value written is whatever the
        spec itself prescribes: a burst applies every component, a bit-flip
        spec reads the live target and XORs ``1 << bit`` into it, a plain
        :class:`~repro.faults.FaultSpec` writes its ``value``.  The spec is
        applied through :func:`~repro.machine.executor.apply_fault_set` —
        the same code path the symbolic campaign uses — so parity studies
        compare identical corruptions, not merely identical addresses.
        """
        from ..machine.executor import apply_fault_set

        state = self.fresh_state(input_values, memory)
        run_concrete_until(self.program, state, spec.breakpoint_pc,
                           occurrence=spec.occurrence,
                           detectors=self.detectors, max_steps=self.max_steps)
        activated = state.is_running and state.pc == spec.breakpoint_pc
        if activated:
            apply_fault_set(state, (spec,))
            run_concrete(self.program, state, self.detectors, self.max_steps)
        return ConcreteRun(state=state, injection=spec, activated=activated)
