"""Symbolic-vs-concrete parity study (paper Section 6.3).

The paper validates SymPLFIED by comparing the outcome classes its one
symbolic ``err`` campaign predicts against the outcomes an augmented
SimpleScalar simulator observes when injecting thousands of concrete
values.  The claim under test is a *coverage* claim, not an equality
claim: every outcome class that any concrete corruption can produce at an
injection point must already appear in the symbolic campaign's outcome
set for that point — the reverse need not hold, because the symbolic
search also covers corruptions the concrete sample never drew.

This module runs both legs over the *same* injection points and the same
fault-application code path (:func:`~repro.machine.executor.apply_fault_set`):

* the symbolic leg prepares an ``err``-corrupted state per point and
  model-checks it under :func:`~repro.core.queries.any_outcome`, collecting
  the :class:`~repro.core.outcomes.OutcomeKind` of every terminal state;
* the concrete leg Monte-Carlo samples single-bit flips
  (:class:`~repro.faults.BitFlipFaultSpec`) of the same target at the same
  dynamic point and classifies each run.

Coverage is judged by :data:`SYMBOLIC_COVERS` — the abstraction mapping
between concrete outcome kinds and the symbolic kinds that subsume them —
plus one structural rule for hangs (see :func:`covers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.outcomes import classify
from ..core.queries import any_outcome
from ..core.search import BoundedModelChecker, SearchResultCache
from ..constraints import Location
from ..detectors import DetectorSet, EMPTY_DETECTORS
from ..errors.injector import Injection, prepare_injected_state
from ..faults.models import deterministic_sample
from ..faults.spec import BitFlipFaultSpec
from ..isa.program import Program
from ..machine.executor import ExecutionConfig, Executor
from ..machine.state import initial_state
from .simulator import ConcreteSimulator

#: Which symbolic outcome kinds cover a given concrete outcome kind.
#:
#: A concrete kind is always covered by the same symbolic kind.  Beyond
#: that, ``err-output`` covers concrete ``correct`` and ``incorrect``: the
#: symbolic machine prints the un-resolvable ``err`` where a concrete run
#: prints whatever the flipped bits resolved to — the golden value
#: included — so a printed ``err`` abstracts *any* printed resolution.
#: Crash and detected have no abstraction: they must match directly.
SYMBOLIC_COVERS: Dict[str, FrozenSet[str]] = {
    "correct": frozenset({"correct", "err-output"}),
    "incorrect": frozenset({"incorrect", "err-output"}),
    "err-output": frozenset({"err-output"}),
    "crash": frozenset({"crash"}),
    "hang": frozenset({"hang"}),
    "detected": frozenset({"detected"}),
}


def covers(concrete_kind: str, symbolic_kinds: FrozenSet[str],
           symbolic_complete: bool) -> bool:
    """Does the symbolic outcome set cover one concrete outcome kind?

    Applies :data:`SYMBOLIC_COVERS`, plus one structural rule: a concrete
    ``hang`` is also covered when the symbolic search did *not* complete —
    a search that exhausts its state budget on a looping lineage never
    reaches that lineage's watchdog-timeout terminal state, and the budget
    exhaustion itself is the symbolic signature of the hang.
    """
    if concrete_kind == "hang" and not symbolic_complete:
        return True
    accepted = SYMBOLIC_COVERS.get(concrete_kind, frozenset({concrete_kind}))
    return bool(accepted & symbolic_kinds)


@dataclass(frozen=True)
class ParityRow:
    """Parity verdict for one injection point."""

    breakpoint_pc: int
    occurrence: int
    target: str
    symbolic_kinds: FrozenSet[str]
    symbolic_complete: bool
    concrete_kinds: FrozenSet[str]
    flips: int
    uncovered: Tuple[str, ...]

    @property
    def covered(self) -> bool:
        return not self.uncovered


@dataclass
class ParityReport:
    """The full study: one :class:`ParityRow` per injection point."""

    rows: List[ParityRow] = field(default_factory=list)
    skipped: int = 0          # points never activated (breakpoint not reached)

    @property
    def covered_points(self) -> int:
        return sum(1 for row in self.rows if row.covered)

    @property
    def all_covered(self) -> bool:
        return all(row.covered for row in self.rows)

    def format_table(self) -> str:
        header = (f"{'point':<28} {'symbolic outcomes':<34} "
                  f"{'concrete (bit flips)':<28} verdict")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            point = f"pc={row.breakpoint_pc}#{row.occurrence} {row.target}"
            symbolic = ",".join(sorted(row.symbolic_kinds)) or "-"
            if not row.symbolic_complete:
                symbolic += " (incomplete)"
            concrete = ",".join(sorted(row.concrete_kinds)) or "-"
            concrete += f" [{row.flips} flips]"
            verdict = ("covered" if row.covered
                       else "UNCOVERED: " + ",".join(row.uncovered))
            lines.append(f"{point:<28} {symbolic:<34} {concrete:<28} {verdict}")
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        base = (f"parity: symbolic covers {self.covered_points}/"
                f"{len(self.rows)} injection points")
        if self.skipped:
            base += f" ({self.skipped} never activated)"
        if self.rows and self.all_covered:
            base += " — all concrete outcome classes covered"
        elif self.rows:
            missing = sorted({kind for row in self.rows
                              for kind in row.uncovered})
            base += f" — UNCOVERED: {', '.join(missing)}"
        return base


def _point_key(injection: Injection) -> Tuple[int, int, int, int]:
    target = injection.target
    return (injection.breakpoint_pc, injection.occurrence,
            target.kind, target.index)


def run_parity_study(program: Program,
                     injections: Sequence[Injection],
                     golden_output: Sequence,
                     input_values: Sequence[int] = (),
                     memory: Optional[Dict[int, int]] = None,
                     detectors: DetectorSet = EMPTY_DETECTORS,
                     word_bits: int = 32,
                     bits_per_point: Optional[int] = None,
                     seed: Optional[int] = None,
                     max_solutions: int = 10_000,
                     max_states: int = 50_000,
                     max_steps: int = 10_000) -> ParityReport:
    """Run both study legs over *injections* and tabulate coverage.

    Points are the distinct ``(breakpoint_pc, occurrence, target)`` triples
    of *injections* (bursts contribute one point per component), restricted
    to register and memory targets — a "bit flip of the PC" is not a
    hardware fault model the paper compares against.  ``bits_per_point``
    caps the Monte-Carlo sample per point through
    :func:`~repro.faults.deterministic_sample` (``None`` = exhaustive, all
    *word_bits* flips); the symbolic leg searches every terminal outcome
    under :func:`~repro.core.queries.any_outcome` with *max_solutions* /
    *max_states* caps.

    The symbolic leg runs with deduplication *disabled*: the checker's
    fingerprint dedup collapses an err-driven infinite loop into a cycle in
    the state graph before the lineage ever reaches the watchdog, so a
    deduplicating census would report a looping program as ``completed``
    with no ``hang`` terminal.  Un-deduplicated, the looping lineage steps
    until the symbolic watchdog fires and ``hang`` shows up as an ordinary
    terminal outcome — and if a budget cuts the search first, the
    incomplete-search rule of :func:`covers` takes over.  Both legs share
    *max_steps*, so the two watchdogs agree on what a hang is.
    """
    # -------------------------------------------------- injection points
    points: List[Injection] = []
    seen = set()
    for injection in injections:
        components = getattr(injection, "components", None) or (injection,)
        for component in components:
            if component.target.kind not in (Location.REGISTER,
                                             Location.MEMORY):
                continue
            key = _point_key(component)
            if key not in seen:
                seen.add(key)
                points.append(component)

    executor = Executor(program, detectors,
                        ExecutionConfig(max_steps=max_steps))
    checker = BoundedModelChecker(executor, max_solutions=max_solutions,
                                  max_states=max_states,
                                  deduplicate=False,
                                  result_cache=SearchResultCache())
    simulator = ConcreteSimulator(program, detectors, max_steps=max_steps)
    query = any_outcome()
    report = ParityReport()

    for injection in points:
        # ---------------------------------------------------- symbolic leg
        injected = prepare_injected_state(
            program, Injection(breakpoint_pc=injection.breakpoint_pc,
                               target=injection.target,
                               occurrence=injection.occurrence),
            initial_state(input_values=input_values, memory=memory),
            detectors=detectors, max_prefix_steps=max_steps)
        if injected is None:
            report.skipped += 1
            continue
        result = checker.search_single(injected, query)
        symbolic_kinds = frozenset(
            classify(solution.state, golden_output).kind.value
            for solution in result.solutions)

        # ---------------------------------------------------- concrete leg
        flips = [BitFlipFaultSpec(breakpoint_pc=injection.breakpoint_pc,
                                  occurrence=injection.occurrence,
                                  target=injection.target,
                                  model="bitflip", bit=bit)
                 for bit in range(word_bits)]
        if bits_per_point is not None:
            flips = deterministic_sample(flips, bits_per_point, seed=seed)
        concrete_kinds = set()
        for spec in flips:
            run = simulator.run_with_spec(spec, input_values=input_values,
                                          memory=memory)
            if run.activated:
                concrete_kinds.add(run.outcome(golden_output).kind.value)

        uncovered = tuple(sorted(
            kind for kind in concrete_kinds
            if not covers(kind, symbolic_kinds, result.completed)))
        report.rows.append(ParityRow(
            breakpoint_pc=injection.breakpoint_pc,
            occurrence=injection.occurrence,
            target=repr(injection.target),
            symbolic_kinds=symbolic_kinds,
            symbolic_complete=result.completed,
            concrete_kinds=frozenset(concrete_kinds),
            flips=len(flips),
            uncovered=uncovered))
    return report
