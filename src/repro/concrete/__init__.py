"""Concrete fault injection: the SimpleScalar-substitute simulator and campaign."""

from .simulator import ConcreteRun, ConcreteSimulator
from .faultinjection import (ConcreteCampaign, ConcreteCampaignResult,
                             ConcreteExperiment, INT32_MAX, INT32_MIN, ValuePolicy)
from .stats import (OutcomeDistribution, OutcomeLabeler, printed_value_labeler,
                    tcas_outcome_labels)

__all__ = [
    "ConcreteRun", "ConcreteSimulator",
    "ConcreteCampaign", "ConcreteCampaignResult", "ConcreteExperiment",
    "INT32_MAX", "INT32_MIN", "ValuePolicy",
    "OutcomeDistribution", "OutcomeLabeler", "printed_value_labeler",
    "tcas_outcome_labels",
]
