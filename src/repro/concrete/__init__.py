"""Concrete fault injection: the SimpleScalar-substitute simulator and campaign."""

from .simulator import ConcreteRun, ConcreteSimulator
from .faultinjection import (ConcreteCampaign, ConcreteCampaignResult,
                             ConcreteExperiment, INT32_MAX, INT32_MIN, ValuePolicy)
from .parity import (SYMBOLIC_COVERS, ParityReport, ParityRow, covers,
                     run_parity_study)
from .stats import (OutcomeDistribution, OutcomeLabeler, printed_value_labeler,
                    tcas_outcome_labels)

__all__ = [
    "ConcreteRun", "ConcreteSimulator",
    "ConcreteCampaign", "ConcreteCampaignResult", "ConcreteExperiment",
    "INT32_MAX", "INT32_MIN", "ValuePolicy",
    "SYMBOLIC_COVERS", "ParityReport", "ParityRow", "covers",
    "run_parity_study",
    "OutcomeDistribution", "OutcomeLabeler", "printed_value_labeler",
    "tcas_outcome_labels",
]
