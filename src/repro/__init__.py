"""SymPLFIED: Symbolic Program-Level Fault Injection and Error Detection (reproduction).

This package reproduces the framework of Pattabiraman, Nakka, Kalbarczyk and
Iyer, *SymPLFIED: Symbolic Program Level Fault Injection and Error Detection
Framework* (DSN 2008) as a pure-Python library:

* :mod:`repro.isa` -- the generic, MIPS-like assembly language;
* :mod:`repro.machine` -- the machine model (state + execution semantics);
* :mod:`repro.errors` -- the error model (symbolic ``err``, propagation,
  comparison forking, injection, Table-1 error classes);
* :mod:`repro.faults` -- pluggable fault models: picklable ``FaultSpec``
  injection spaces (register/memory/control/operand), enumerated or
  seed-sampled, carried unchanged by every execution backend;
* :mod:`repro.constraints` -- constraint tracking and the custom solver;
* :mod:`repro.detectors` -- the detector model (``CHECK`` / ``det(...)``);
* :mod:`repro.core` -- the symbolic engine: bounded model checking, outcome
  queries, fault-injection campaigns and search-task decomposition;
* :mod:`repro.concrete` -- the SimpleScalar-substitute concrete simulator and
  concrete fault-injection campaign;
* :mod:`repro.lang` -- the minic compiler used to express workloads;
* :mod:`repro.frontend` -- the MIPS translator and the query generator;
* :mod:`repro.programs` -- the workloads evaluated in the paper (factorial,
  tcas, replace, ...);
* :mod:`repro.analysis` -- reporting utilities used by the benchmarks.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
