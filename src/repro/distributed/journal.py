"""Append-only record journals (the durability layer of the backend).

Both halves of the distributed subsystem persist through the same tiny
abstraction: a :class:`RecordJournal` is a file of consecutively pickled
records, appended with a flush+fsync per record so that a killed process
loses at most the record it was writing.  Loading tolerates a truncated or
garbled tail (the signature of a crash mid-append) by returning every record
up to the corruption — which is exactly the resume semantics checkpointing
needs.
"""

from __future__ import annotations

import os
import pickle
from typing import IO, Iterator, List, Optional


class RecordJournal:
    """A crash-tolerant append-only log of pickled records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[bytes]] = None

    # --------------------------------------------------------------- appending

    def append(self, record: object) -> None:
        """Append one record, durably (flushed and fsynced).

        The first append truncates any corrupt tail left by an earlier kill:
        records written after garbage would be unreachable forever (loading
        stops at the corruption), so the journal must resume appending at
        the last intact offset to make durable progress across repeated
        kill/resume cycles.
        """
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            intact = self._intact_length()
            self._handle = open(self.path, "ab")
            if self._handle.tell() > intact:
                self._handle.truncate(intact)
                self._handle.seek(intact)
        pickle.dump(record, self._handle, protocol=4)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _intact_length(self) -> int:
        """Byte offset just past the last intact record."""
        if not os.path.exists(self.path):
            return 0
        offset = 0
        with open(self.path, "rb") as handle:
            while True:
                try:
                    pickle.load(handle)
                except (EOFError, pickle.UnpicklingError, AttributeError,
                        ValueError, IndexError):
                    return offset
                offset = handle.tell()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RecordJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- loading

    def records(self) -> Iterator[object]:
        """Yield every intact record; stop silently at a truncated tail."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return
                except (pickle.UnpicklingError, AttributeError, ValueError,
                        IndexError):
                    # A record cut off mid-write by a kill: everything before
                    # it is intact, nothing after it can be trusted.
                    return

    def load(self) -> List[object]:
        return list(self.records())

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def delete(self) -> None:
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)
