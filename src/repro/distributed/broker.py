"""Durable task brokering for distributed campaigns.

The broker is the only shared medium between the campaign coordinator and
its workers — the paper's cluster scheduler reduced to a contract of five
operations (publish manifest, enqueue task, claim task, complete task,
requeue expired claims).  :class:`FilesystemBroker` implements it on a
plain directory, so "a cluster" can be any set of processes (or machines,
over a shared filesystem) pointed at the same path; a socket- or
redis-backed broker only has to implement the same :class:`Broker`
interface to slot in.

Durability and atomicity on the filesystem:

* every file is written to a temporary name and published with
  ``os.replace`` — readers never observe partial pickles;
* a task is claimed by atomically renaming it from ``tasks/pending/`` into
  ``tasks/claimed/`` — exactly one worker can win the rename, which is the
  whole mutual-exclusion story;
* a claim is a lease: the worker refreshes the claimed file's mtime while
  it works, and the coordinator renames claims whose mtime has gone stale
  back into ``tasks/pending/`` — so a dead worker's tasks are re-run, while
  re-execution is harmless because every task is a pure function of the
  manifest (duplicate completions write byte-identical results).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from .. import obs as _obs
from ..parallel.spec import CacheSpec, CampaignSpec, QuerySpec, TaskSpec

_TASK_PREFIX = "task-"
_TASK_SUFFIX = ".pkl"


@dataclass
class CampaignManifest:
    """Everything a standalone worker needs to execute the campaign's tasks.

    *campaign_id* is a per-run nonce: workers echo it in every result, so a
    coordinator reusing a queue directory can tell this campaign's results
    from a previous campaign's stragglers.  *task_spec* carries the
    per-task caps for campaigns that ship whole search tasks (rather than
    injection chunks) through the broker.
    """

    campaign_spec: CampaignSpec
    query_spec: QuerySpec
    cache_spec: Optional[CacheSpec] = None
    campaign_id: str = ""
    task_spec: TaskSpec = TaskSpec()


@dataclass
class ClaimedTask:
    """A task this worker owns until it completes or its lease expires."""

    index: int
    payload: object
    claim_path: str


class Broker:
    """The coordinator/worker contract (see the module docstring).

    Lifecycle: the coordinator :meth:`reset`\\ s the queue, then
    :meth:`publish_manifest`\\ s the campaign identity and
    :meth:`put_task`\\ s injection chunks, finally sealing the queue with
    :meth:`close_queue`.  Workers :meth:`load_manifest`, then loop
    :meth:`claim_next` -> work (``renew_lease`` while busy) ->
    :meth:`complete`; the coordinator drains with
    :meth:`fetch_new_results` and :meth:`requeue_expired` until
    :meth:`is_drained`.

    Payloads are opaque pickles: task chunks carry
    :class:`~repro.faults.spec.FaultSpec` sequences (including composite
    :class:`~repro.faults.spec.BurstFaultSpec`\\ s) and must round-trip
    byte-faithfully — a broker may move bytes, never re-encode them.

    Every implementation must satisfy ``tests/test_broker_conformance.py``,
    the executable form of this contract; the suite runs against the
    filesystem and socket brokers and is the drop-in gate for any future
    backend (redis, …).
    """

    def publish_manifest(self, manifest: CampaignManifest) -> None:
        raise NotImplementedError

    def load_manifest(self, timeout: Optional[float] = None,
                      poll_interval: float = 0.1) -> CampaignManifest:
        raise NotImplementedError

    def reset(self) -> None:
        """Purge every artifact of a previous campaign from the queue."""
        raise NotImplementedError

    def put_task(self, index: int, payload: object) -> None:
        raise NotImplementedError

    def close_queue(self, total_tasks: int) -> None:
        raise NotImplementedError

    def total_tasks(self) -> Optional[int]:
        raise NotImplementedError

    def claim_next(self, result_valid: Optional[Callable[[object], bool]]
                   = None) -> Optional[ClaimedTask]:
        raise NotImplementedError

    def renew_lease(self, claim: ClaimedTask) -> None:
        raise NotImplementedError

    def release(self, claim: ClaimedTask) -> None:
        """Return a live claim to the pending queue without completing it.

        The graceful half of lease recovery: a worker shutting down (e.g.
        on SIGTERM) releases its claim so another worker picks the task up
        immediately instead of after lease expiry.  Releasing an
        already-expired or completed claim is a harmless no-op.
        """
        raise NotImplementedError

    def complete(self, claim: ClaimedTask, result_payload: object) -> None:
        raise NotImplementedError

    def fetch_new_results(self, seen: Set[int]) -> List[Tuple[int, object]]:
        raise NotImplementedError

    def discard_result(self, index: int) -> None:
        raise NotImplementedError

    def requeue_expired(self) -> List[int]:
        raise NotImplementedError

    def pending_count(self) -> int:
        raise NotImplementedError

    def claimed_count(self) -> int:
        raise NotImplementedError

    def results_count(self) -> int:
        raise NotImplementedError

    def is_drained(self) -> bool:
        """True once every enqueued task has a result."""
        total = self.total_tasks()
        return total is not None and self.results_count() >= total


class FilesystemBroker(Broker):
    """A :class:`Broker` on a shared directory (see the module docstring)."""

    def __init__(self, root: str, lease_seconds: float = 60.0) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.root = os.path.abspath(root)
        self.lease_seconds = lease_seconds
        self.pending_dir = os.path.join(self.root, "tasks", "pending")
        self.claimed_dir = os.path.join(self.root, "tasks", "claimed")
        self.results_dir = os.path.join(self.root, "results")
        self.manifest_path = os.path.join(self.root, "manifest.pkl")
        self.closed_path = os.path.join(self.root, "closed.pkl")
        for directory in (self.pending_dir, self.claimed_dir, self.results_dir):
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------ file helpers

    def _write_atomic(self, path: str, payload: object) -> None:
        directory = os.path.dirname(path)
        descriptor, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=4)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            raise

    @staticmethod
    def _read(path: str) -> object:
        with open(path, "rb") as handle:
            return pickle.load(handle)

    @staticmethod
    def _task_filename(index: int) -> str:
        return f"{_TASK_PREFIX}{index:08d}{_TASK_SUFFIX}"

    @staticmethod
    def _task_index(filename: str) -> Optional[int]:
        if not (filename.startswith(_TASK_PREFIX)
                and filename.endswith(_TASK_SUFFIX)):
            return None
        digits = filename[len(_TASK_PREFIX):-len(_TASK_SUFFIX)]
        return int(digits) if digits.isdigit() else None

    def _task_files(self, directory: str) -> List[Tuple[int, str]]:
        try:
            names = os.listdir(directory)
        except FileNotFoundError:  # pragma: no cover - deleted queue dir
            return []
        tasks = []
        for name in names:
            index = self._task_index(name)
            if index is not None:
                tasks.append((index, os.path.join(directory, name)))
        return sorted(tasks)

    # -------------------------------------------------------- coordinator side

    def publish_manifest(self, manifest: CampaignManifest) -> None:
        self._write_atomic(self.manifest_path, manifest)

    def reset(self) -> None:
        """Purge every artifact of a previous campaign from the queue.

        A queue directory serves one campaign at a time; the coordinator
        resets it before enqueueing so stale tasks and results from an
        earlier run cannot leak into this run's merge.
        """
        for path in (self.manifest_path, self.closed_path):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        for directory in (self.pending_dir, self.claimed_dir,
                          self.results_dir):
            for _, path in self._task_files(directory):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass

    def put_task(self, index: int, payload: object) -> None:
        self._write_atomic(os.path.join(self.pending_dir,
                                        self._task_filename(index)), payload)

    def close_queue(self, total_tasks: int) -> None:
        """Declare the task set complete (workers may drain and exit)."""
        self._write_atomic(self.closed_path, {"total_tasks": total_tasks})

    def total_tasks(self) -> Optional[int]:
        if not os.path.exists(self.closed_path):
            return None
        return self._read(self.closed_path)["total_tasks"]

    def fetch_new_results(self, seen: Set[int]) -> List[Tuple[int, object]]:
        """Load results that appeared since *seen* (which is not mutated)."""
        fresh = []
        for index, path in self._task_files(self.results_dir):
            if index not in seen:
                fresh.append((index, self._read(path)))
        return fresh

    def discard_result(self, index: int) -> None:
        """Drop a result file (e.g. one a stale worker wrote for a previous
        campaign) so the task can be re-run."""
        try:
            os.remove(os.path.join(self.results_dir,
                                   self._task_filename(index)))
        except FileNotFoundError:
            pass

    def requeue_expired(self) -> List[int]:
        """Return expired claims to the pending queue (dead-worker recovery)."""
        now = time.time()
        requeued = []
        for index, path in self._task_files(self.claimed_dir):
            try:
                age = now - os.stat(path).st_mtime
            except FileNotFoundError:
                continue  # completed or re-claimed concurrently
            if age <= self.lease_seconds:
                continue
            try:
                os.rename(path, os.path.join(self.pending_dir,
                                             self._task_filename(index)))
            except FileNotFoundError:
                continue
            requeued.append(index)
        if requeued:
            hub = _obs.get()
            if hub.enabled:
                hub.count("broker.requeued", len(requeued))
        return requeued

    # ------------------------------------------------------------- worker side

    def load_manifest(self, timeout: Optional[float] = None,
                      poll_interval: float = 0.1) -> CampaignManifest:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not os.path.exists(self.manifest_path):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"no campaign manifest appeared in {self.root!r}")
            time.sleep(poll_interval)
        return self._read(self.manifest_path)

    def claim_next(self, result_valid: Optional[Callable[[object], bool]]
                   = None) -> Optional[ClaimedTask]:
        """Atomically claim one pending task, or None if none are claimable.

        *result_valid* decides whether an existing result file really
        settles its task (workers pass a campaign-id check, so a stale
        result left by a previous campaign in a reused queue directory
        cannot swallow a live task).  Without it, any result counts.
        Results are only inspected for indexes that still have a pending
        twin — the rare requeue-race leftover — never for the common case,
        so claiming stays O(pending) rather than O(all results).
        """
        for index, pending_path in self._task_files(self.pending_dir):
            claim_path = os.path.join(self.claimed_dir,
                                      self._task_filename(index))
            result_path = os.path.join(self.results_dir,
                                       self._task_filename(index))
            if os.path.exists(result_path):
                settled = True
                if result_valid is not None:
                    try:
                        settled = bool(result_valid(self._read(result_path)))
                    except FileNotFoundError:
                        settled = False  # discarded concurrently
                if settled:
                    # A slow twin already delivered this task's result
                    # (requeue race); drop the stale queue entry instead of
                    # re-running it.
                    try:
                        os.remove(pending_path)
                    except FileNotFoundError:
                        pass
                    continue
            try:
                # The rename preserves the pending file's mtime, which may be
                # older than the lease (tasks can queue for a while); start
                # the lease clock *before* moving the file into claimed/ so
                # a concurrent requeue scan can never see a freshly claimed
                # task as already expired.
                os.utime(pending_path)
                os.rename(pending_path, claim_path)
            except FileNotFoundError:
                continue  # another worker won the rename
            try:
                payload = self._read(claim_path)
            except FileNotFoundError:
                continue  # extreme stall: the claim expired and was requeued
            except Exception:
                # A torn or corrupt task payload (publishes are atomic, so
                # only external interference produces one): quarantine it
                # under a name the task scan ignores, so the claim loop
                # keeps making progress on intact tasks.
                try:
                    os.rename(claim_path, claim_path + ".corrupt")
                except FileNotFoundError:  # pragma: no cover - racing twin
                    pass
                continue
            hub = _obs.get()
            if hub.enabled:
                hub.count("broker.claims")
            return ClaimedTask(index=index, payload=payload,
                               claim_path=claim_path)
        return None

    def renew_lease(self, claim: ClaimedTask) -> None:
        try:
            os.utime(claim.claim_path)
            hub = _obs.get()
            if hub.enabled:
                hub.count("broker.lease_renewals")
        except FileNotFoundError:
            pass  # lease expired and was requeued; completion is still safe

    def release(self, claim: ClaimedTask) -> None:
        try:
            os.rename(claim.claim_path,
                      os.path.join(self.pending_dir,
                                   self._task_filename(claim.index)))
        except FileNotFoundError:
            pass  # already expired/requeued or completed: nothing to return

    def complete(self, claim: ClaimedTask, result_payload: object) -> None:
        self._write_atomic(os.path.join(self.results_dir,
                                        self._task_filename(claim.index)),
                           result_payload)
        try:
            os.remove(claim.claim_path)
        except FileNotFoundError:
            pass
        hub = _obs.get()
        if hub.enabled:
            hub.count("broker.completes")

    # ----------------------------------------------------------------- queries

    def pending_count(self) -> int:
        return len(self._task_files(self.pending_dir))

    def claimed_count(self) -> int:
        return len(self._task_files(self.claimed_dir))

    def results_count(self) -> int:
        return len(self._task_files(self.results_dir))


#: Queue-locator schemes :func:`open_broker` understands.
KNOWN_QUEUE_SCHEMES: Tuple[str, ...] = ("tcp",)


def validate_queue_locator(queue: str) -> str:
    """Validate a ``--queue`` locator, raising ``ValueError`` with a
    one-line message on an unknown scheme or a malformed ``tcp://`` URL.

    A locator with a ``scheme://`` prefix must use a known scheme — a typo
    like ``tpc://host:1`` or an unsupported ``redis://…`` must fail up
    front, not be silently treated as a *directory name* for the
    filesystem broker.  Plain paths pass through untouched.
    """
    if "://" in queue:
        scheme = queue.split("://", 1)[0]
        if scheme not in KNOWN_QUEUE_SCHEMES:
            raise ValueError(
                f"unknown queue scheme {scheme!r} in {queue!r}; expected a "
                f"broker directory path or tcp://HOST:PORT")
        from ..net.client import parse_queue_url  # deferred: net imports us
        parse_queue_url(queue)
    return queue


def open_broker(queue: str, lease_seconds: float = 60.0) -> Broker:
    """Open the broker a queue locator names.

    ``tcp://host:port`` connects a :class:`~repro.net.SocketBroker` to a
    ``repro broker`` server; anything else is a shared queue directory for
    :class:`FilesystemBroker`.  Every consumer of ``--queue`` (coordinator,
    worker, CLI) resolves the locator through this one function, so a new
    backend scheme is a one-line addition here (plus its entry in
    :data:`KNOWN_QUEUE_SCHEMES`).  Raises ``ValueError`` on an unknown
    scheme or malformed URL (see :func:`validate_queue_locator`).
    """
    validate_queue_locator(queue)
    if queue.startswith("tcp://"):
        from ..net import SocketBroker  # deferred: repro.net imports us
        return SocketBroker(queue, lease_seconds=lease_seconds)
    return FilesystemBroker(queue, lease_seconds=lease_seconds)


def enqueue_campaign(broker: Broker, manifest: CampaignManifest,
                     payloads: Sequence[Tuple[int, object]]) -> None:
    """Publish a campaign: manifest first, tasks second, then close.

    The ordering matters for workers that race the coordinator: they block
    on the manifest, never observe tasks without one, and treat the queue as
    open-ended until the closing record states the total task count.
    """
    broker.publish_manifest(manifest)
    for index, payload in payloads:
        broker.put_task(index, payload)
    broker.close_queue(len(payloads))
