"""The distributed campaign backend (coordinator side).

:class:`DistributedExecutionStrategy` plugs into the same
:class:`~repro.core.campaign.ExecutionStrategy` seam as the serial and pool
backends, but executes the sweep through a broker: the injection sweep is
chunked exactly like the pool's, each chunk is enqueued as a durable task,
standalone ``repro worker`` processes (spawned locally by default, or
attached externally to the same queue) claim and execute them, and the
coordinator merges results back in submission order — so a distributed
:class:`~repro.core.campaign.CampaignResult` is identical (solutions,
outcomes, ordering) to the serial one, with only wall-clock fields
differing.

:class:`DistributedTaskStrategy` is the same coordination loop behind the
:class:`~repro.core.tasks.TaskExecutionStrategy` seam: entire paper-style
search tasks — with their per-task error/wall-clock caps — flow through the
broker instead of raw injection chunks, and the merged
:class:`~repro.core.tasks.TaskResult` list matches
:class:`~repro.core.tasks.SerialTaskStrategy` byte for byte (timing fields
aside).

The queue locator decides the transport: a directory path uses the durable
:class:`~repro.distributed.broker.FilesystemBroker`; ``tcp://host:port``
connects to a ``repro broker`` server, so coordinator and workers need not
share any filesystem.

Fault tolerance: worker death is handled twice over — expired leases return
the dead worker's claims to the queue (any surviving worker re-runs them),
and the coordinator respawns locally-spawned workers up to a restart
budget.  Every task is a pure function of the manifest, so re-execution is
invisible in the results.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs as _obs
from ..core.campaign import (CampaignResult, ExecutionStrategy,
                             InjectionResult, ProgressCallback,
                             SymbolicCampaign)
from ..core.queries import SearchQuery
from ..core.search import CacheStatistics
from ..core.tasks import (SearchTask, TaskCampaignReport,
                          TaskExecutionStrategy, TaskResult, TaskRunner,
                          chunk_injections, default_chunk_size)
from ..errors.injector import Injection
from ..parallel.runner import _check_query_consistency, _merge_cache_statistics
from ..parallel.spec import CacheSpec, CampaignSpec, QuerySpec, TaskSpec
from .backoff import Backoff
from .broker import (CampaignManifest, FilesystemBroker, enqueue_campaign,
                     open_broker)


def note_worker_snapshot(worker_stats: Dict[str, CacheStatistics],
                         worker_name: str, stats: CacheStatistics) -> None:
    """Keep the *latest* cumulative snapshot per worker.

    Cache counters are monotonic per process, but unlike the pool (whose
    ``imap_unordered`` yields in completion order) broker results are
    fetched in index order — a requeued low-index chunk can deliver a
    worker's newest snapshot before an older one attached to a higher
    index.  Last-write-wins would then undercount, so keep the snapshot
    with the largest counter total instead.
    """
    previous = worker_stats.get(worker_name)
    if previous is None or (stats.lookups + stats.stores + stats.evictions
                            >= previous.lookups + previous.stores
                            + previous.evictions):
        worker_stats[worker_name] = stats


@dataclass
class DistributedConfig:
    """Tunable parameters of the distributed backend.

    Attributes:
        workers: standalone worker processes to spawn locally; ``0`` means
            none — external workers pointed at *queue_dir* do all the work.
        chunk_size: injections per task; ``None`` picks the pool's heuristic.
        queue_dir: queue locator — a broker directory, or ``tcp://host:port``
            for a running ``repro broker`` server.  ``None`` uses a private
            temporary directory (removed after the run).  Required when
            ``workers=0``, since external workers must be able to find the
            queue.
        lease_seconds: how long a claimed task may go without a lease
            renewal before it is considered orphaned and requeued.
        poll_interval: coordinator/worker base polling granularity; idle
            polling decays exponentially from here (see
            :class:`~repro.distributed.backoff.Backoff`).
        wall_clock_timeout: overall safety bound on the run (None = none).
        max_worker_restarts: how many times dead local workers are replaced
            before the coordinator gives up.
        cache: worker search-result cache recipe (e.g. a shared cache).
    """

    workers: int = 2
    chunk_size: Optional[int] = None
    queue_dir: Optional[str] = None
    lease_seconds: float = 60.0
    poll_interval: float = 0.05
    wall_clock_timeout: Optional[float] = None
    max_worker_restarts: Optional[int] = None
    cache: Optional[CacheSpec] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.workers == 0 and self.queue_dir is None:
            raise ValueError("workers=0 (external workers) requires an "
                             "explicit queue_dir they can attach to")
        if self.lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be positive, got {self.lease_seconds}")

    def resolve_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return default_chunk_size(total, max(1, self.workers))

    def restart_budget(self) -> int:
        if self.max_worker_restarts is not None:
            return self.max_worker_restarts
        return max(2, self.workers * 3)


class _LocalWorkerPool:
    """Locally spawned ``repro worker`` subprocesses, with respawn-on-death."""

    def __init__(self, queue: str, log_dir: str,
                 config: DistributedConfig) -> None:
        self.queue = queue
        self.config = config
        self.log_dir = log_dir
        os.makedirs(self.log_dir, exist_ok=True)
        self._procs: List[subprocess.Popen] = []
        self._logs: Dict[int, str] = {}
        self._spawned = 0
        self.restarts = 0

    def _spawn_one(self) -> None:
        log_path = os.path.join(self.log_dir, f"worker-{self._spawned:03d}.log")
        command = [
            sys.executable, "-m", "repro", "worker",
            "--queue", self.queue,
            "--poll-interval", str(self.config.poll_interval),
            "--lease-seconds", str(self.config.lease_seconds),
            # Orphan guard: if the coordinator dies, workers drain what they
            # can and stop once nothing has been claimable for a while.
            "--max-idle", str(max(60.0, self.config.lease_seconds * 3)),
        ]
        with open(log_path, "ab") as log:
            process = subprocess.Popen(command, stdout=log, stderr=log)
        self._logs[process.pid] = log_path
        self._procs.append(process)
        self._spawned += 1

    def spawn(self, count: int) -> None:
        for _ in range(count):
            self._spawn_one()

    def reap_and_respawn(self) -> None:
        """Drop exited workers; replace them while the restart budget lasts."""
        alive = []
        died = 0
        for process in self._procs:
            if process.poll() is None:
                alive.append(process)
            else:
                died += 1
        self._procs = alive
        for _ in range(died):
            if self.restarts >= self.config.restart_budget():
                break
            self._spawn_one()
            self.restarts += 1

    def alive_count(self) -> int:
        return sum(1 for process in self._procs if process.poll() is None)

    def shutdown(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        for process in self._procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait()

    def log_tails(self, max_bytes: int = 2000) -> str:
        tails = []
        for pid, path in self._logs.items():
            try:
                with open(path, "rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    handle.seek(max(0, handle.tell() - max_bytes))
                    text = handle.read().decode("utf-8", "replace").strip()
            except OSError:
                continue
            if text:
                tails.append(f"--- worker pid {pid} ({path}):\n{text}")
        return "\n".join(tails) or "(worker logs empty)"


class _BrokerCoordinator:
    """The campaign-driving loop shared by both broker-backed strategies.

    Owns the queue's lifecycle for one run: resolve the locator (private
    temporary directory, shared directory, or ``tcp://`` URL), reset and
    publish the campaign, spawn/respawn local workers, fetch results in
    index order with idle backoff, requeue expired leases, and reject
    stragglers from a previous campaign that reused the queue.
    """

    def __init__(self, config: DistributedConfig,
                 retain_results: bool = True) -> None:
        self.config = config
        #: When False, result bodies are handed to ``on_merged`` and then
        #: dropped (a None placeholder keeps the dedup/ordering bookkeeping
        #: intact) — the streaming-ingestion mode of the results warehouse.
        self.retain_results = retain_results
        self.requeued_tasks: List[int] = []
        self.worker_stats: Dict[str, CacheStatistics] = {}

    def run(self, campaign: SymbolicCampaign, query_spec: QuerySpec,
            payloads: List[object], task_spec: TaskSpec,
            on_merged: Optional[Callable[[int, object], None]] = None,
            ) -> Dict[int, object]:
        """Drive *payloads* through the broker; return index → result body."""
        config = self.config
        owns_queue_dir = config.queue_dir is None
        is_remote = (config.queue_dir is not None
                     and config.queue_dir.startswith("tcp://"))
        queue = config.queue_dir or tempfile.mkdtemp(prefix="repro-queue-")
        # Local workers need somewhere for their logs even when the queue
        # itself is a TCP URL with no directory behind it.
        log_dir = (tempfile.mkdtemp(prefix="repro-worker-logs-") if is_remote
                   else os.path.join(queue, "workers"))
        try:
            return self._drive(queue, log_dir, campaign, query_spec,
                               payloads, task_spec, on_merged)
        finally:
            if owns_queue_dir:
                shutil.rmtree(queue, ignore_errors=True)
            if is_remote:
                shutil.rmtree(log_dir, ignore_errors=True)

    def _drive(self, queue: str, log_dir: str, campaign: SymbolicCampaign,
               query_spec: QuerySpec, payloads: List[object],
               task_spec: TaskSpec,
               on_merged: Optional[Callable[[int, object], None]],
               ) -> Dict[int, object]:
        config = self.config
        broker = open_broker(queue, lease_seconds=config.lease_seconds)
        # A queue serves one campaign at a time: purge whatever a previous
        # run left behind, and tag this run so stragglers of the old
        # campaign (workers still finishing an old claim) cannot be
        # mistaken for this campaign's results.
        campaign_id = os.urandom(8).hex()
        broker.reset()
        # Manifest and full task set are durable before any worker starts, so
        # workers never observe a half-published campaign.
        with _obs.get().span("broker.publish", campaign=campaign_id,
                             tasks=len(payloads)):
            enqueue_campaign(
                broker,
                CampaignManifest(
                    campaign_spec=CampaignSpec.from_campaign(campaign),
                    query_spec=query_spec,
                    cache_spec=config.cache,
                    campaign_id=campaign_id,
                    task_spec=task_spec),
                list(enumerate(payloads)))

        pool: Optional[_LocalWorkerPool] = None
        if config.workers > 0:
            pool = _LocalWorkerPool(queue, log_dir, config)
            pool.spawn(min(config.workers, len(payloads)))

        merged: Dict[int, object] = {}
        deadline = (None if config.wall_clock_timeout is None
                    else time.monotonic() + config.wall_clock_timeout)
        idle = Backoff(config.poll_interval, metric="coordinator.idle")
        try:
            while len(merged) < len(payloads):
                fresh = broker.fetch_new_results(seen=set(merged))
                for index, payload in fresh:
                    result_campaign_id, result_index, body, snapshot = payload
                    if result_campaign_id != campaign_id:
                        # A straggler from a previous campaign completed an
                        # old claim after our reset: drop its result and
                        # re-enqueue our task (the straggler's complete()
                        # may have consumed our claim for this index).
                        broker.discard_result(index)
                        if index < len(payloads):
                            broker.put_task(index, payloads[index])
                        continue
                    assert result_index == index
                    merged[index] = body if self.retain_results else None
                    worker_name, stats, telemetry = snapshot
                    note_worker_snapshot(self.worker_stats, worker_name, stats)
                    _obs.get().absorb(telemetry)
                    if on_merged is not None:
                        on_merged(index, body)
                if fresh:
                    idle.reset()
                    continue  # drain eagerly before sleeping again
                requeued = broker.requeue_expired()
                if requeued:
                    self.requeued_tasks.extend(requeued)
                    hub = _obs.get()
                    if hub.enabled:
                        hub.event("broker.requeue", tasks=requeued)
                        if not isinstance(broker, FilesystemBroker):
                            # The filesystem broker counts its own requeues
                            # in-process; a remote (TCP) broker's happen
                            # server-side, so account for them here.
                            hub.count("broker.requeued", len(requeued))
                if pool is not None:
                    pool.reap_and_respawn()
                    if (pool.alive_count() == 0 and len(merged) < len(payloads)
                            # Not a failure if the last worker finished the
                            # queue and exited between our fetch and now.
                            and broker.results_count() < len(payloads)):
                        raise RuntimeError(
                            f"all distributed workers exited with "
                            f"{len(payloads) - len(merged)} of "
                            f"{len(payloads)} tasks unfinished (restart "
                            f"budget {config.restart_budget()} spent); "
                            f"worker logs:\n{pool.log_tails()}")
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"distributed campaign exceeded its "
                        f"{config.wall_clock_timeout}s wall-clock budget with "
                        f"{len(payloads) - len(merged)} tasks outstanding")
                idle.sleep()
        finally:
            if pool is not None:
                pool.shutdown()
        return merged

    def cache_statistics(self) -> CacheStatistics:
        return _merge_cache_statistics(self.worker_stats)


class DistributedExecutionStrategy(ExecutionStrategy):
    """Execute a campaign's sweep through a broker (see module docstring)."""

    name = "distributed"

    def __init__(self, query_spec: QuerySpec,
                 config: Optional[DistributedConfig] = None) -> None:
        self.query_spec = query_spec
        self.config = config or DistributedConfig()
        #: Aggregated per-worker SearchResultCache counters of the last run.
        self.cache_statistics: Optional[CacheStatistics] = None
        #: Tasks that were requeued after a lease expired (for diagnostics).
        self.requeued_tasks: List[int] = []

    def run(self, campaign: SymbolicCampaign,
            injections: Sequence[Injection], query: SearchQuery,
            progress: Optional[ProgressCallback] = None,
            ) -> List[InjectionResult]:
        _check_query_consistency(query, self.query_spec)
        self.cache_statistics = None
        self.requeued_tasks = []
        injections = list(injections)
        if not injections:
            self.cache_statistics = CacheStatistics()
            return []

        chunks = chunk_injections(
            injections, self.config.resolve_chunk_size(len(injections)))
        done_injections = 0

        def on_merged(index: int, results: List[InjectionResult]) -> None:
            nonlocal done_injections
            for injection, result in zip(chunks[index], results):
                self.emit_result(injection, result)
            done_injections += len(results)
            if progress is not None and results:
                progress(done_injections, len(injections), results[-1])

        coordinator = _BrokerCoordinator(self.config,
                                         retain_results=self.retain_results)
        merged = coordinator.run(campaign, self.query_spec, chunks,
                                 TaskSpec(), on_merged=on_merged)
        self.requeued_tasks = coordinator.requeued_tasks
        self.cache_statistics = coordinator.cache_statistics()
        if not self.retain_results:
            return []
        # Deterministic merge: flatten in chunk-submission order.
        return [result for index in sorted(merged)
                for result in merged[index]]


class DistributedTaskStrategy(TaskExecutionStrategy):
    """Ship whole search tasks — the paper's cluster unit — through a broker.

    The distributed counterpart of :class:`~repro.parallel.runner.
    ParallelTaskStrategy`: each :class:`~repro.core.tasks.SearchTask`
    becomes one broker task, workers run it under the manifest's per-task
    caps (taken from the coordinating :class:`~repro.core.tasks.
    TaskRunner`), and the merged :class:`TaskResult` list is returned in
    submission order — identical, timing fields aside, to
    :class:`~repro.core.tasks.SerialTaskStrategy` over the same tasks.
    """

    name = "distributed"

    def __init__(self, query_spec: QuerySpec,
                 config: Optional[DistributedConfig] = None) -> None:
        self.query_spec = query_spec
        self.config = config or DistributedConfig()
        self.cache_statistics: Optional[CacheStatistics] = None
        self.requeued_tasks: List[int] = []

    def run(self, runner: TaskRunner, tasks: Sequence[SearchTask],
            query: SearchQuery,
            progress: Optional[Callable[[int, int, TaskResult], None]] = None,
            ) -> List[TaskResult]:
        _check_query_consistency(query, self.query_spec)
        self.cache_statistics = None
        self.requeued_tasks = []
        tasks = list(tasks)
        if not tasks:
            self.cache_statistics = CacheStatistics()
            return []

        merged_count = 0

        def on_merged(index: int, result: TaskResult) -> None:
            nonlocal merged_count
            merged_count += 1
            if progress is not None:
                progress(merged_count, len(tasks), result)

        coordinator = _BrokerCoordinator(self.config,
                                         retain_results=self.retain_results)
        merged = coordinator.run(runner.campaign, self.query_spec, tasks,
                                 TaskSpec.from_runner(runner),
                                 on_merged=on_merged)
        self.requeued_tasks = coordinator.requeued_tasks
        self.cache_statistics = coordinator.cache_statistics()
        if not self.retain_results:
            return []
        return [merged[index] for index in sorted(merged)]


def run_campaign_distributed(campaign: SymbolicCampaign,
                             query_spec: QuerySpec,
                             injections: Optional[Sequence[Injection]] = None,
                             config: Optional[DistributedConfig] = None,
                             progress: Optional[ProgressCallback] = None,
                             ) -> CampaignResult:
    """Run a symbolic campaign on the distributed backend.

    The one-call equivalent of ``campaign.run(query, strategy=
    DistributedExecutionStrategy(...))``, mirroring
    :func:`~repro.parallel.runner.run_campaign_parallel`.
    """
    query = query_spec.build()
    strategy = DistributedExecutionStrategy(query_spec, config)
    return campaign.run(query, injections=injections, progress=progress,
                        strategy=strategy)


def run_tasks_distributed(runner: TaskRunner, tasks: Sequence[SearchTask],
                          query_spec: QuerySpec,
                          config: Optional[DistributedConfig] = None,
                          progress: Optional[Callable[[int, int, TaskResult],
                                                      None]] = None,
                          ) -> TaskCampaignReport:
    """Run decomposed search tasks through a broker (the paper's cluster).

    Mirrors :func:`~repro.parallel.runner.run_tasks_parallel` for the
    distributed backend.
    """
    query = query_spec.build()
    strategy = DistributedTaskStrategy(query_spec, config)
    return runner.run(tasks, query, progress=progress, strategy=strategy)
