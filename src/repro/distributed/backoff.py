"""Capped exponential backoff for the idle polling loops.

The coordinator's result-fetch loop and the worker's claim loop both poll a
broker.  A fixed ``time.sleep(poll_interval)`` either burns CPU (and, over
TCP, broker round-trips) when the queue stays quiet, or adds latency when it
is busy.  :class:`Backoff` gives both loops the standard shape: sleep the
base interval after the first miss, double on every further miss up to a
cap, and reset to the base the moment there is work — so pickup stays as
fast as before under load while an idle worker's polling rate decays
geometrically.
"""

from __future__ import annotations

import time
from typing import Optional

from .. import obs as _obs


class Backoff:
    """Exponentially growing sleep between polls, reset on activity.

    *metric* names the loop for telemetry: each sleep counts one
    ``<metric>.waits`` and ``<metric>.wait_seconds`` on the hub, so a
    starved queue (lots of idle waiting) is distinguishable from a hung
    worker (no signal at all) in the campaign's event log.
    """

    def __init__(self, initial: float, cap: Optional[float] = None,
                 factor: float = 2.0, metric: Optional[str] = None) -> None:
        if initial <= 0:
            raise ValueError(f"initial must be positive, got {initial}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        #: Default cap: two orders of growth, bounded by one second so
        #: drain/shutdown detection never lags a human-noticeable amount.
        self.cap = max(initial, min(1.0, initial * 32)
                       if cap is None else cap)
        self.initial = initial
        self.factor = factor
        self.current = initial
        self.metric = metric

    def reset(self) -> None:
        """There was work: next idle sleep starts from the base again."""
        self.current = self.initial

    def peek(self) -> float:
        """The duration the next :meth:`sleep` will wait."""
        return self.current

    def sleep(self) -> float:
        """Sleep the current interval, grow it, and return what was slept."""
        interval = self.current
        time.sleep(interval)
        self.current = min(self.cap, self.current * self.factor)
        if self.metric is not None:
            hub = _obs.get()
            if hub.enabled:
                hub.count(f"{self.metric}.waits")
                hub.count(f"{self.metric}.wait_seconds", interval)
        return interval
