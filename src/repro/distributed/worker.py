"""The standalone campaign worker (``repro worker --queue DIR``).

A worker is the distributed counterpart of one pool process: it loads the
campaign manifest from the broker, rebuilds the campaign, query and cache
once with the existing :mod:`repro.parallel.worker` machinery, then claims
and executes injection chunks until the queue is drained.  Between
injections it renews the lease on its claim so the coordinator can tell a
slow worker from a dead one.

Workers are stateless and interchangeable: any number can be pointed at the
same queue directory, from any machine sharing it, started before or after
the coordinator.  Exit conditions: the queue is drained (normal), or
nothing has been claimable for ``max_idle_seconds`` (stale queue guard).
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..parallel.worker import initialize_worker, run_injection_chunk
from .broker import ClaimedTask, FilesystemBroker


@dataclass
class WorkerConfig:
    """Tunables of one standalone worker."""

    queue_dir: str
    poll_interval: float = 0.1
    #: Give up when nothing was claimable for this long (None = wait forever).
    max_idle_seconds: Optional[float] = None
    #: Wait at most this long for the coordinator's manifest to appear.
    manifest_timeout: Optional[float] = 120.0
    lease_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}")


@contextlib.contextmanager
def _lease_renewal(broker: FilesystemBroker, claim: ClaimedTask,
                   lease_seconds: float) -> Iterator[None]:
    """Refresh the claim's lease from a background thread while it runs.

    A single symbolic search can outlast the lease (there is no
    per-injection wall-clock cap by default), and the executing thread
    cannot renew mid-search — so a daemon thread touches the claim every
    third of the lease, keeping slow-but-alive workers distinguishable from
    dead ones and avoiding duplicate chunk execution.
    """
    stop = threading.Event()

    def renew_loop() -> None:
        while not stop.wait(lease_seconds / 3.0):
            broker.renew_lease(claim)

    thread = threading.Thread(target=renew_loop, daemon=True,
                              name="lease-renewal")
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join()


def run_worker(config: WorkerConfig,
               on_task: Optional[Callable[[int, int], None]] = None) -> int:
    """Drain tasks from the queue; return the number of chunks executed.

    *on_task* is called as ``on_task(index, injections)`` after each
    completed chunk (the CLI uses it for progress reporting).
    """
    # Standalone workers are each their own MainProcess; give the process a
    # unique name so per-worker cache snapshots aggregate correctly (the
    # pool's snapshot machinery keys counters by process name).
    multiprocessing.current_process().name = f"repro-worker-{os.getpid()}"
    broker = FilesystemBroker(config.queue_dir,
                              lease_seconds=config.lease_seconds)
    manifest = broker.load_manifest(timeout=config.manifest_timeout,
                                    poll_interval=config.poll_interval)
    initialize_worker(manifest.campaign_spec, manifest.query_spec,
                      cache_spec=manifest.cache_spec)
    def result_is_ours(payload: object) -> bool:
        return payload and payload[0] == manifest.campaign_id

    executed = 0
    idle_since = time.monotonic()
    while True:
        claim = broker.claim_next(result_valid=result_is_ours)
        if claim is None:
            if broker.is_drained():
                break
            # Recovery is decentralised: idle workers also return orphaned
            # claims to the queue, so the run finishes even if the
            # coordinator (the other requeuer) is gone.
            broker.requeue_expired()
            if (config.max_idle_seconds is not None
                    and time.monotonic() - idle_since > config.max_idle_seconds):
                break
            time.sleep(config.poll_interval)
            continue
        idle_since = time.monotonic()
        # Revalidate the manifest before executing: a coordinator may have
        # reset this queue directory and published a new campaign while we
        # idled (e.g. the previous coordinator was killed).  Executing the
        # claim under the stale context would produce results the new
        # coordinator rejects, re-enqueueing the task forever.
        try:
            current = broker.load_manifest(timeout=0,
                                           poll_interval=config.poll_interval)
        except TimeoutError:
            break  # the queue was dissolved under us
        if current.campaign_id != manifest.campaign_id:
            manifest = current
            initialize_worker(manifest.campaign_spec, manifest.query_spec,
                              cache_spec=manifest.cache_spec)
        with _lease_renewal(broker, claim, config.lease_seconds):
            index, results, snapshot = run_injection_chunk(
                (claim.index, claim.payload))
        # Results are tagged with the manifest's campaign id so a
        # coordinator reusing this queue directory can reject stragglers
        # from a previous campaign.
        broker.complete(claim, (manifest.campaign_id, index, results,
                                snapshot))
        executed += 1
        if on_task is not None:
            on_task(index, len(results))
    return executed
