"""The standalone campaign worker (``repro worker --queue DIR|tcp://…``).

A worker is the distributed counterpart of one pool process: it loads the
campaign manifest from the broker, rebuilds the campaign, query and cache
once with the existing :mod:`repro.parallel.worker` machinery, then claims
and executes work units until the queue is drained.  A unit is either an
injection chunk (the coordinator's default) or a whole
:class:`~repro.core.tasks.SearchTask` with the manifest's per-task caps —
the worker dispatches on the claimed payload, so one worker fleet serves
both campaign granularities.  Between work units it renews the lease on its
claim so the coordinator can tell a slow worker from a dead one.

Workers are stateless and interchangeable: any number can be pointed at the
same queue — a shared directory or a ``tcp://`` broker — from any machine,
started before or after the coordinator.  Exit conditions: a queue this
worker saw live is drained (normal — a queue *already* drained at attach
time is a previous campaign's leftover, and the worker waits for the next
reset instead), nothing has been claimable for ``max_idle_seconds``
(stale queue guard), or a stop was requested (e.g. ``SIGTERM``) — in which
case the worker finishes the unit it is executing, publishes its result,
releases any still-unstarted claim, and exits cleanly instead of stranding
a lease until expiry.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from .. import obs as _obs
from ..core.tasks import SearchTask
from ..parallel.worker import (initialize_worker, run_injection_chunk,
                               run_search_task)
from .backoff import Backoff
from .broker import Broker, ClaimedTask, open_broker


@dataclass
class WorkerConfig:
    """Tunables of one standalone worker."""

    #: Queue locator: a shared directory, or ``tcp://host:port``.
    queue_dir: str
    poll_interval: float = 0.1
    #: Give up when nothing was claimable for this long (None = wait forever).
    max_idle_seconds: Optional[float] = None
    #: Wait at most this long for the coordinator's manifest to appear.
    manifest_timeout: Optional[float] = 120.0
    lease_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}")


@contextlib.contextmanager
def _lease_renewal(broker: Broker, claim: ClaimedTask,
                   lease_seconds: float) -> Iterator[None]:
    """Refresh the claim's lease from a background thread while it runs.

    A single symbolic search can outlast the lease (there is no
    per-injection wall-clock cap by default), and the executing thread
    cannot renew mid-search — so a daemon thread touches the claim every
    third of the lease, keeping slow-but-alive workers distinguishable from
    dead ones and avoiding duplicate chunk execution.
    """
    stop = threading.Event()

    def renew_loop() -> None:
        while not stop.wait(lease_seconds / 3.0):
            broker.renew_lease(claim)

    thread = threading.Thread(target=renew_loop, daemon=True,
                              name="lease-renewal")
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join()


def _await_manifest(broker: Broker, config: WorkerConfig,
                    stopping: Callable[[], bool]):
    """Wait for a campaign manifest, honouring stop requests and backoff.

    Returns None when a stop was requested first; raises
    :class:`TimeoutError` when ``manifest_timeout`` elapses without one.
    """
    deadline = (None if config.manifest_timeout is None
                else time.monotonic() + config.manifest_timeout)
    wait = Backoff(config.poll_interval, metric="worker.manifest_wait")
    while not stopping():
        try:
            return broker.load_manifest(timeout=0)
        except TimeoutError:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"no campaign manifest appeared at {config.queue_dir!r}"
                ) from None
            wait.sleep()
    return None


def _execute(claim: ClaimedTask):
    """Run one claimed work unit, dispatching on its payload shape.

    Whole search tasks ship as :class:`SearchTask` payloads and return one
    :class:`~repro.core.tasks.TaskResult`; injection chunks ship as plain
    injection tuples and return the chunk's result list.  Both come back as
    ``(index, body, cache snapshot)``.
    """
    if isinstance(claim.payload, SearchTask):
        return run_search_task((claim.index, claim.payload))
    return run_injection_chunk((claim.index, claim.payload))


def _crash_cleanup(broker: Broker, claim: ClaimedTask,
                   exc: BaseException) -> None:
    """Crash-path cleanup: hand the claim back, log a structured event.

    Without this, only a SIGTERM releases claims — an unhandled exception
    would strand the lease until expiry and leave no trace of why.
    """
    released = False
    try:
        broker.release(claim)
        released = True
    except Exception:
        pass  # the broker may be the thing that just failed
    record = {
        "event": "worker.crash",
        "task": claim.index,
        "error": type(exc).__name__,
        "message": str(exc),
        "claim_released": released,
        "pid": os.getpid(),
    }
    _obs.get().event("worker.crash", index=claim.index,
                     error=type(exc).__name__, message=str(exc),
                     released=released)
    print(json.dumps(record, sort_keys=True), file=sys.stderr)


def run_worker(config: WorkerConfig,
               on_task: Optional[Callable[[int, int], None]] = None,
               should_stop: Optional[Callable[[], bool]] = None) -> int:
    """Drain tasks from the queue; return the number of work units executed.

    *on_task* is called as ``on_task(index, size)`` after each completed
    unit (the CLI uses it for progress reporting).  *should_stop* is polled
    between units — and once more between claiming and executing — so a
    signal handler can request a graceful exit: the current unit always
    finishes and publishes, an unstarted claim is released back to the
    queue, and no lease is left to expire.
    """
    # Standalone workers are each their own MainProcess; give the process a
    # unique name so per-worker cache snapshots aggregate correctly (the
    # pool's snapshot machinery keys counters by process name).
    multiprocessing.current_process().name = f"repro-worker-{os.getpid()}"
    stopping = should_stop or (lambda: False)
    # The CLI may have attached its own --telemetry sink before calling us;
    # worker initialisation replaces the hub (see activate_worker), so the
    # sink is captured here and re-attached after every (re)initialisation.
    own_sink = getattr(_obs.get(), "sink", None)
    broker = open_broker(config.queue_dir,
                         lease_seconds=config.lease_seconds)
    manifest = _await_manifest(broker, config, stopping)
    if manifest is None:
        return 0  # stopped while waiting for a campaign to appear

    def initialize(manifest) -> None:
        initialize_worker(manifest.campaign_spec, manifest.query_spec,
                          max_errors_per_task=manifest.task_spec
                          .max_errors_per_task,
                          wall_clock_per_task=manifest.task_spec
                          .wall_clock_per_task,
                          cache_spec=manifest.cache_spec)
        if own_sink is not None:
            _obs.attach_sink(own_sink)

    initialize(manifest)

    def result_is_ours(payload: object) -> bool:
        return payload and payload[0] == manifest.campaign_id

    executed = 0
    idle_since = time.monotonic()
    idle = Backoff(config.poll_interval, metric="worker.idle")
    # Only a drain this worker saw happen is an exit signal.  A queue that
    # is *already* drained at attach time is a previous campaign's leftover
    # state (brokers serve one campaign at a time, and the next coordinator
    # resets before enqueueing): exiting on it would strand the upcoming
    # campaign without workers, so wait for the reset instead — bounded by
    # ``max_idle_seconds`` like any other idle wait.
    saw_live_queue = False
    while not stopping():
        claim_started = time.monotonic()
        claim = broker.claim_next(result_valid=result_is_ours)
        hub = _obs.get()
        if hub.enabled:
            if claim is not None:
                hub.timed_event("broker.claim",
                                time.monotonic() - claim_started,
                                index=claim.index)
            else:
                hub.count("broker.claim.empty")
        if claim is None:
            if broker.is_drained():
                if saw_live_queue:
                    break
            else:
                saw_live_queue = True
            # Recovery is decentralised: idle workers also return orphaned
            # claims to the queue, so the run finishes even if the
            # coordinator (the other requeuer) is gone.
            broker.requeue_expired()
            if (config.max_idle_seconds is not None
                    and time.monotonic() - idle_since > config.max_idle_seconds):
                break
            idle.sleep()
            continue
        idle.reset()
        idle_since = time.monotonic()
        saw_live_queue = True
        if stopping():
            # The stop request raced our claim and nothing ran yet: hand
            # the task straight back instead of stranding it under a lease.
            broker.release(claim)
            break
        # Revalidate the manifest before executing: a coordinator may have
        # reset this queue directory and published a new campaign while we
        # idled (e.g. the previous coordinator was killed).  Executing the
        # claim under the stale context would produce results the new
        # coordinator rejects, re-enqueueing the task forever.
        try:
            current = broker.load_manifest(timeout=0,
                                           poll_interval=config.poll_interval)
        except TimeoutError:
            break  # the queue was dissolved under us
        if current.campaign_id != manifest.campaign_id:
            manifest = current
            initialize(manifest)
        try:
            with _lease_renewal(broker, claim, config.lease_seconds):
                with _obs.get().span("worker.unit", index=claim.index):
                    index, body, snapshot = _execute(claim)
            # Results are tagged with the manifest's campaign id so a
            # coordinator reusing this queue directory can reject
            # stragglers from a previous campaign.
            with _obs.get().span("broker.complete", index=claim.index):
                broker.complete(claim, (manifest.campaign_id, index, body,
                                        snapshot))
        except BaseException as exc:
            _crash_cleanup(broker, claim, exc)
            raise
        executed += 1
        if on_task is not None:
            size = len(body) if isinstance(body, list) else len(body.results)
            on_task(index, size)
    return executed
