"""Campaign checkpoint/resume on top of the record journal.

``repro analyze --checkpoint PATH`` journals every completed
:class:`~repro.core.campaign.InjectionResult` as the sweep progresses;
``--resume`` reloads the journal, skips the already-completed injections and
merges old and new results back into enumeration order — so a campaign
killed mid-sweep finishes with results identical to an uninterrupted run.

The journal is strategy-agnostic: :class:`CheckpointingStrategy` wraps any
:class:`~repro.core.campaign.ExecutionStrategy` (serial, pool or
distributed) and taps its per-result sink, appending each result the moment
the executing backend reports it.  A header record pins the campaign
identity (program, error class, query) so a journal cannot silently resume
a different experiment.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Dict, List, Optional, Sequence

from .. import obs as _obs
from ..core.campaign import (ExecutionStrategy, InjectionResult,
                             ProgressCallback, SymbolicCampaign)
from ..core.queries import SearchQuery
from ..errors.injector import Injection
from .journal import RecordJournal

_HEADER = "header"
_RESULT = "result"
_TELEMETRY = "telemetry"


def injection_key(injection: Injection) -> str:
    """Stable cross-process identity of an injection experiment."""
    return injection.label()


def campaign_header(campaign: SymbolicCampaign, query: SearchQuery) -> Dict:
    """The campaign identity a journal is pinned to.

    Everything that changes what an individual search returns must be here:
    journaled results computed under one configuration must never merge
    with fresh results computed under another (resuming with, say, a
    different ``--max-states`` would otherwise silently break the
    "identical to an uninterrupted run" guarantee).
    """
    # Error class, fault model and detectors are pinned by content digest:
    # a count or type name would accept a journal recorded under a
    # *different* detector file.  A spurious digest mismatch (these are
    # best-effort canonical) fails loudly toward refusing the resume,
    # never toward a wrong merge.
    semantics = hashlib.sha256(pickle.dumps(
        (campaign.error_class, campaign.fault_model, campaign.detectors),
        protocol=4)).hexdigest()
    return {
        "program": campaign.program.name,
        "error_class": type(campaign.error_class).__name__,
        "fault_model": (None if campaign.fault_model is None
                        else campaign.fault_model.name),
        "isa": campaign.isa,
        "query": query.description,
        "input_values": tuple(campaign.input_values),
        "search_caps": (campaign.max_solutions_per_injection,
                        campaign.max_states_per_injection,
                        campaign.wall_clock_per_injection,
                        campaign.deduplicate_states),
        "execution_config": repr(campaign.execution_config),
        "semantics_digest": semantics,
    }


class CheckpointJournal:
    """Injection-keyed view over a :class:`RecordJournal`."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._journal = RecordJournal(path)
        #: Whether an intact header record was seen by load_completed().
        self._header_loaded = False
        #: Trace id journaled by a telemetry-enabled run (None otherwise).
        self.journaled_trace: Optional[str] = None

    def exists(self) -> bool:
        return self._journal.exists()

    def delete(self) -> None:
        self._journal.delete()

    def close(self) -> None:
        self._journal.close()

    def load_completed(self, expect_header: Optional[Dict] = None,
                       ) -> Dict[str, InjectionResult]:
        """Map injection key -> journaled result, verifying the header."""
        completed: Dict[str, InjectionResult] = {}
        header: Optional[Dict] = None
        for record in self._journal.records():
            tag = record[0]
            if tag == _HEADER:
                header = record[1]
                if expect_header is not None and header != expect_header:
                    raise ValueError(
                        f"checkpoint journal {self.path!r} belongs to a "
                        f"different campaign: journal header {header!r} vs "
                        f"current campaign {expect_header!r}")
            elif tag == _RESULT:
                completed[record[1]] = record[2]
            elif tag == _TELEMETRY:
                self.journaled_trace = record[1]
        self._header_loaded = header is not None
        return completed

    def ensure_header(self, header: Dict) -> None:
        """Write the identity header unless an intact one was loaded.

        File existence is not enough: a kill during the very first append
        can leave a journal whose header record is garbage, and without a
        header the campaign-identity guard would be silently disabled for
        the rest of the journal's life (the append path truncates the
        corrupt tail before writing).
        """
        if not self._header_loaded:
            self._journal.append((_HEADER, header))
            self._header_loaded = True

    def ensure_trace(self, trace_id: str) -> None:
        """Persist the campaign's trace id once, as its own record.

        The identity header is compared with strict equality on resume, so
        the trace rides a separate ``telemetry`` record: telemetry-off runs
        write no such record and their journal bytes are unchanged, while a
        resumed telemetry run finds the original trace here and joins it.
        """
        if self.journaled_trace is None:
            self._journal.append((_TELEMETRY, trace_id))
            self.journaled_trace = trace_id

    def append_result(self, injection: Injection,
                      result: InjectionResult) -> None:
        self._journal.append((_RESULT, injection_key(injection), result))


class CheckpointingStrategy(ExecutionStrategy):
    """Wrap any execution strategy with journal-backed checkpoint/resume."""

    name = "checkpoint"

    def __init__(self, inner: ExecutionStrategy, journal_path: str,
                 resume: bool = False) -> None:
        self.inner = inner
        self.journal_path = journal_path
        self.resume = resume
        #: Injections satisfied from the journal on the last run.
        self.skipped = 0

    @property
    def cache_statistics(self):
        """Delegate to the wrapped backend (for ``--progress`` reporting)."""
        return getattr(self.inner, "cache_statistics", None)

    def run(self, campaign: SymbolicCampaign,
            injections: Sequence[Injection], query: SearchQuery,
            progress: Optional[ProgressCallback] = None,
            ) -> List[InjectionResult]:
        header = campaign_header(campaign, query)
        journal = CheckpointJournal(self.journal_path)
        if self.resume:
            completed = journal.load_completed(expect_header=header)
        else:
            journal.delete()  # a fresh run starts a fresh journal
            completed = {}
        injections = list(injections)
        pending = [injection for injection in injections
                   if injection_key(injection) not in completed]
        self.skipped = len(injections) - len(pending)
        journal.ensure_header(header)
        hub = _obs.get()
        if hub.enabled:
            # Resume under the original run's trace so both halves of the
            # sweep share one trace id in the event log; first runs journal
            # theirs for any future resume.
            if journal.journaled_trace is not None:
                hub.adopt_trace(journal.journaled_trace)
            journal.ensure_trace(hub.trace_id)

        previous_sink = self.inner.result_sink

        def journaling_sink(injection: Injection,
                            result: InjectionResult) -> None:
            journal.append_result(injection, result)
            if previous_sink is not None:
                previous_sink(injection, result)
            self.emit_result(injection, result)

        try:
            self.inner.result_sink = journaling_sink
            fresh = (self.inner.run(campaign, pending, query,
                                    progress=progress) if pending else [])
        finally:
            self.inner.result_sink = previous_sink
            journal.close()

        by_key = dict(completed)
        for injection, result in zip(pending, fresh):
            by_key[injection_key(injection)] = result
        return [by_key[injection_key(injection)] for injection in injections]
