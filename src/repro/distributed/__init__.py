"""Distributed campaign execution: the paper's cluster runs, for real.

Where :mod:`repro.parallel` shards a sweep across a single host's worker
pool, this package distributes it through a durable broker to standalone
``repro worker`` processes — on the same machine or on any machine sharing
the queue directory — with checkpoint/resume riding on the same journal
layer.

Public surface:

* :class:`FilesystemBroker` / :class:`Broker` / :class:`CampaignManifest` —
  the durable task queue and the contract a socket/redis broker would
  implement;
* :class:`DistributedConfig` / :class:`DistributedExecutionStrategy` /
  :func:`run_campaign_distributed` — the coordinator, plugging into the
  ``ExecutionStrategy`` seam of :class:`~repro.core.campaign.
  SymbolicCampaign`;
* :class:`WorkerConfig` / :func:`run_worker` — the standalone worker loop
  behind ``repro worker --queue DIR``;
* :class:`CheckpointJournal` / :class:`CheckpointingStrategy` — campaign
  checkpoint/resume for any backend;
* :class:`RecordJournal` — the crash-tolerant append-only log underneath.
"""

from .broker import Broker, CampaignManifest, ClaimedTask, FilesystemBroker
from .checkpoint import (CheckpointJournal, CheckpointingStrategy,
                         campaign_header, injection_key)
from .journal import RecordJournal
from .strategy import (DistributedConfig, DistributedExecutionStrategy,
                       run_campaign_distributed)
from .worker import WorkerConfig, run_worker

__all__ = [
    "Broker", "CampaignManifest", "CheckpointJournal",
    "CheckpointingStrategy", "ClaimedTask", "DistributedConfig",
    "DistributedExecutionStrategy", "FilesystemBroker", "RecordJournal",
    "WorkerConfig", "campaign_header", "injection_key",
    "run_campaign_distributed", "run_worker",
]
