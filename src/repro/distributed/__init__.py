"""Distributed campaign execution: the paper's cluster runs, for real.

Where :mod:`repro.parallel` shards a sweep across a single host's worker
pool, this package distributes it through a durable broker to standalone
``repro worker`` processes — over a shared queue directory, or over TCP via
:mod:`repro.net` for hosts that share nothing but a port — with
checkpoint/resume riding on the same journal layer.

Public surface:

* :class:`FilesystemBroker` / :class:`Broker` / :class:`CampaignManifest` /
  :func:`open_broker` — the durable task queue, the contract every backend
  implements (the socket broker lives in :mod:`repro.net`), and the queue
  locator resolver (directory path or ``tcp://host:port``);
* :class:`DistributedConfig` / :class:`DistributedExecutionStrategy` /
  :func:`run_campaign_distributed` — the coordinator, plugging into the
  ``ExecutionStrategy`` seam of :class:`~repro.core.campaign.
  SymbolicCampaign`;
* :class:`DistributedTaskStrategy` / :func:`run_tasks_distributed` — whole
  paper-style search tasks (with per-task caps) through the broker, behind
  the ``TaskExecutionStrategy`` seam of :class:`~repro.core.tasks.
  TaskRunner`;
* :class:`WorkerConfig` / :func:`run_worker` — the standalone worker loop
  behind ``repro worker --queue DIR|tcp://…``;
* :class:`Backoff` — capped exponential backoff shared by the idle polling
  loops;
* :class:`CheckpointJournal` / :class:`CheckpointingStrategy` — campaign
  checkpoint/resume for any backend;
* :class:`RecordJournal` — the crash-tolerant append-only log underneath.
"""

from .backoff import Backoff
from .broker import (Broker, CampaignManifest, ClaimedTask, FilesystemBroker,
                     open_broker)
from .checkpoint import (CheckpointJournal, CheckpointingStrategy,
                         campaign_header, injection_key)
from .journal import RecordJournal
from .strategy import (DistributedConfig, DistributedExecutionStrategy,
                       DistributedTaskStrategy, run_campaign_distributed,
                       run_tasks_distributed)
from .worker import WorkerConfig, run_worker

__all__ = [
    "Backoff", "Broker", "CampaignManifest", "CheckpointJournal",
    "CheckpointingStrategy", "ClaimedTask", "DistributedConfig",
    "DistributedExecutionStrategy", "DistributedTaskStrategy",
    "FilesystemBroker", "RecordJournal", "WorkerConfig", "campaign_header",
    "injection_key", "open_broker", "run_campaign_distributed",
    "run_tasks_distributed", "run_worker",
]
