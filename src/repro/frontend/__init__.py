"""Front-end tools: the ISA frontends (MIPS, RV32IM) and the query generator.

Importing this package registers the built-in frontends in
:data:`repro.isa.registry.ISA_FRONTENDS`; :func:`repro.isa.registry.get_frontend`
does that import lazily, so looking a frontend up by name is enough.
"""

from ..isa.registry import ISA_FRONTENDS, register_frontend
from .mips import (MIPS_ABI, MIPS_FRONTEND, MIPS_REGISTERS, MipsFrontend,
                   MipsTranslationError, MipsTranslator, translate_mips)
from .riscv import (RISCV_ABI, RISCV_FRONTEND, RISCV_REGISTERS, RiscvFrontend,
                    RiscvTranslationError, translate_riscv)
from .querygen import (GeneratedQuery, QUERY_KINDS, generate, generate_campaign,
                       generate_query)

for _frontend in (MIPS_FRONTEND, RISCV_FRONTEND):
    if _frontend.name not in ISA_FRONTENDS:
        register_frontend(_frontend)

__all__ = [
    "MIPS_ABI", "MIPS_FRONTEND", "MIPS_REGISTERS", "MipsFrontend",
    "MipsTranslationError", "MipsTranslator", "translate_mips",
    "RISCV_ABI", "RISCV_FRONTEND", "RISCV_REGISTERS", "RiscvFrontend",
    "RiscvTranslationError", "translate_riscv",
    "GeneratedQuery", "QUERY_KINDS", "generate", "generate_campaign",
    "generate_query",
]
