"""Front-end tools: the MIPS translator and the query generator."""

from .mips import MIPS_REGISTERS, MipsTranslationError, MipsTranslator, translate_mips
from .querygen import (GeneratedQuery, QUERY_KINDS, generate, generate_campaign,
                       generate_query)

__all__ = [
    "MIPS_REGISTERS", "MipsTranslationError", "MipsTranslator", "translate_mips",
    "GeneratedQuery", "QUERY_KINDS", "generate", "generate_campaign",
    "generate_query",
]
