"""Query generator (paper Section 5, "Supporting Tools").

The paper ships a query generator so that programmers can explore the
behaviour of a program under *pre-defined* hardware error categories without
writing any formal specifications.  :func:`generate_query` builds the search
query (the predicate over final states) and :func:`generate_campaign` couples
it with the corresponding error class, producing a ready-to-run
:class:`~repro.core.campaign.SymbolicCampaign` for a workload.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..core.campaign import SymbolicCampaign
from ..core.queries import (SearchQuery, any_outcome, crashed, hung,
                            incorrect_output, latent_err, output_contains_err,
                            printed_value_other_than, undetected_failure)
from ..errors.models import ErrorClass, error_class
from ..faults.models import FaultModel
from ..faults.models import fault_model as resolve_fault_model
from ..machine.executor import ExecutionConfig
from ..programs.base import Workload


#: The outcome categories a query can target.
QUERY_KINDS: Tuple[str, ...] = (
    "err-output",           # some printed value is the symbolic err
    "incorrect-output",     # halted with an output different from the golden run
    "wrong-final-value",    # halted with a final printed value other than expected
    "crash",                # terminated with an exception
    "hang",                 # watchdog timeout
    "undetected-failure",   # any failure not caught by a detector
    "latent-err",           # err persists somewhere in the final state
    "any-outcome",          # every terminal state (the parity-study census)
)


@dataclass(frozen=True)
class GeneratedQuery:
    """A generated query plus the error class it is meant to sweep."""

    query: SearchQuery
    error_class: ErrorClass
    kind: str
    error_class_name: str

    def describe(self) -> str:
        return (f"search for `{self.query.description}` under "
                f"{self.error_class_name} errors")


def generate_query(kind: str,
                   golden_output: Optional[Sequence] = None,
                   expected_value: Optional[int] = None) -> SearchQuery:
    """Build the search predicate for one of the pre-defined query kinds."""
    if kind == "err-output":
        return output_contains_err()
    if kind == "incorrect-output":
        if golden_output is None:
            raise ValueError("incorrect-output queries need the golden output")
        return incorrect_output(golden_output)
    if kind == "wrong-final-value":
        if expected_value is None:
            raise ValueError("wrong-final-value queries need the expected value")
        return printed_value_other_than(expected_value)
    if kind == "crash":
        return crashed()
    if kind == "hang":
        return hung()
    if kind == "undetected-failure":
        if golden_output is None:
            raise ValueError("undetected-failure queries need the golden output")
        return undetected_failure(golden_output)
    if kind == "latent-err":
        return latent_err()
    if kind == "any-outcome":
        return any_outcome()
    raise ValueError(f"unknown query kind {kind!r}; available: {QUERY_KINDS}")


def generate(kind: str, error_category: str = "register",
             golden_output: Optional[Sequence] = None,
             expected_value: Optional[int] = None) -> GeneratedQuery:
    """Generate a (query, error class) pair from pre-defined categories."""
    query = generate_query(kind, golden_output=golden_output,
                           expected_value=expected_value)
    return GeneratedQuery(query=query, error_class=error_class(error_category),
                          kind=kind, error_class_name=error_category)


def generate_campaign(workload: Workload,
                      kind: str = "wrong-final-value",
                      error_category: Optional[str] = None,
                      fault_model: Optional[Union[str, FaultModel]] = None,
                      expected_value: Optional[int] = None,
                      execution_config: Optional[ExecutionConfig] = None,
                      **campaign_options) -> Tuple[SymbolicCampaign, SearchQuery]:
    """Build a ready-to-run symbolic campaign for a workload.

    ``expected_value`` defaults to the last integer printed by the golden run
    (which is what the tcas experiment uses).  *fault_model* — a
    :class:`~repro.faults.models.FaultModel` or a registry name
    (``"register"``, ``"memory"``, ``"control"``, ``"operand"``) — plans
    the sweep through the pluggable fault subsystem.

    .. deprecated:: passing *error_category* explicitly is deprecated in
       favour of *fault_model* (the :mod:`repro.faults` registry is the one
       planner); leaving it ``None`` keeps the historical register sweep.
    """
    if error_category is not None:
        warnings.warn(
            "error_category= is deprecated; plan sweeps with fault_model= "
            "(the repro.faults registry, e.g. fault_model=\"register\") "
            "instead", DeprecationWarning, stacklevel=2)
    else:
        error_category = "register"
    golden = workload.golden_output()
    if expected_value is None:
        printed = [item for item in golden if isinstance(item, int)]
        expected_value = printed[-1] if printed else None
    generated = generate(kind, error_category, golden_output=golden,
                         expected_value=expected_value)
    if isinstance(fault_model, str):
        fault_model = resolve_fault_model(fault_model)
    config = execution_config or ExecutionConfig(
        max_steps=workload.recommended_max_steps)
    campaign = SymbolicCampaign(
        workload.program,
        input_values=workload.default_input,
        memory=workload.data_segment,
        detectors=workload.detectors,
        error_class=generated.error_class,
        fault_model=fault_model,
        execution_config=config,
        isa=workload.isa,
        **campaign_options)
    return campaign, generated.query
