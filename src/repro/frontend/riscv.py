"""RISC-V front-end: translate an RV32IM assembly subset into the SymPLFIED ISA.

This is the second architecture behind the pluggable frontend seam: the
``"rv32im"`` :class:`~repro.isa.registry.IsaFrontend` accepts the RV32IM
user-level integer subset — ALU register/immediate forms (including the M
extension's ``mul``/``div``/``rem``), ``lw``/``sw`` displacement addressing,
the ``slt`` family, branches, ``jal``/``jalr``, the ``li``/``mv``/``nop``
pseudo-instructions — and the RARS-style ``ecall`` read/print/exit
conventions (``a7`` = 5, 1, 10/93).

Register mapping.  SymPLFIED hardwires register 31 as the link register of
``jal`` and the minic ABI uses $29 as the stack pointer, whereas RISC-V links
through ``ra`` (x1) and stacks on ``sp`` (x2).  The frontend therefore maps
registers by number *except* for the swaps 1<->31 and 2<->29: ``ra`` is
SymPLFIED $31, ``sp`` is $29, and in exchange ``t6`` (x31) lands on $1 and
``t4`` (x29) on $2.  $1/``t6`` doubles as the scratch register for expanded
compare-and-branch pseudos, exactly like ``$at`` on the MIPS side.

Like the MIPS frontend, translation is line-by-line and label-preserving, and
:meth:`emit` only produces spellings the translator maps 1:1 back (RARS-style
``seq``/``sgt``/... set pseudos, immediate third operands for ops without a
native I-form), so ``translate(emit(program))`` reproduces the exact
instruction sequence — injection sweeps stay address-meaningful across
retargeting.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction, make
from ..isa.program import Program, ProgramBuilder
from ..isa.registry import IsaAbi, IsaFrontend
from .common import escape_string, strip_comment, unescape_string


class RiscvTranslationError(ValueError):
    """Raised when an RV32IM line cannot be translated."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


#: ABI register names in x0..x31 order.
_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

#: x-number <-> SymPLFIED register number: identity except the two swaps
#: that align ra/sp with SymPLFIED's hardwired $31 link and $29 stack slots.
_NUMBER_SWAPS = {1: 31, 31: 1, 2: 29, 29: 2}


def _symplfied_number(x_number: int) -> int:
    return _NUMBER_SWAPS.get(x_number, x_number)


#: RISC-V register names (ABI and xN spellings) -> SymPLFIED register numbers.
RISCV_REGISTERS: Dict[str, int] = {}
#: SymPLFIED register numbers -> canonical ABI names (for emission).
RISCV_REGISTER_NAMES: Dict[int, str] = {}
for _x, _abi_name in enumerate(_ABI_NAMES):
    _mapped = _symplfied_number(_x)
    RISCV_REGISTERS[_abi_name] = _mapped
    RISCV_REGISTERS[f"x{_x}"] = _mapped
    RISCV_REGISTER_NAMES[_mapped] = _abi_name
RISCV_REGISTERS["fp"] = RISCV_REGISTERS["s0"]

#: SymPLFIED register numbers the translator watches for ecall conventions.
_A0 = RISCV_REGISTERS["a0"]
_A7 = RISCV_REGISTERS["a7"]

#: RARS/spike-proxy ecall services the frontend understands.
_ECALL_SERVICES = {
    1: "print",    # print integer in a0
    5: "read",     # read integer into a0
    10: "halt",    # exit
    93: "halt",    # Linux-style exit
}

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:")
_DISPLACEMENT_RE = re.compile(r"^(-?\d+)\(([A-Za-z][A-Za-z0-9]*|x\d+)\)$")

#: Three-register RV32IM ops -> SymPLFIED opcodes.  As on the MIPS side, a
#: literal last operand selects the immediate pseudo-op form (``i`` suffix).
_RRR_MAP = {
    "add": "add", "sub": "sub", "mul": "mult", "div": "div", "divu": "div",
    "rem": "mod", "remu": "mod", "and": "and", "or": "or", "xor": "xor",
    "slt": "setlt", "sltu": "setlt",
    # RARS set pseudo-ops, also what emit() uses for the seteq family.
    "seq": "seteq", "sne": "setne", "sgt": "setgt", "sgtu": "setgt",
    "sge": "setge", "sle": "setle",
}

#: Register-immediate RV32IM ops -> SymPLFIED opcodes.
_RRI_MAP = {
    "addi": "addi", "andi": "andi", "ori": "ori", "xori": "xori",
    "slli": "slli", "srli": "srli", "slti": "setlti", "sltiu": "setlti",
}

#: Compare-and-branch pseudos -> the setcc used before the ``bne $1 0``.
_COMPARE_BRANCHES = {
    "blt": "setlt", "bltu": "setlt", "bge": "setge", "bgeu": "setge",
    "bgt": "setgt", "bgtu": "setgt", "ble": "setle", "bleu": "setle",
}
_ZERO_COMPARE_BRANCHES = {
    "bltz": "setlt", "bgez": "setge", "bgtz": "setgt", "blez": "setle",
}

#: SymPLFIED opcode -> RV32IM mnemonic for register-register-register forms.
_RRR_EMIT = {
    "add": "add", "sub": "sub", "mult": "mul", "div": "div", "mod": "rem",
    "and": "and", "or": "or", "xor": "xor",
    "seteq": "seq", "setne": "sne", "setgt": "sgt", "setlt": "slt",
    "setge": "sge", "setle": "sle",
}

#: SymPLFIED opcode -> RV32IM mnemonic for register-register-immediate forms.
_RRI_EMIT = {
    "addi": "addi", "subi": "sub", "multi": "mul", "divi": "div",
    "modi": "rem", "andi": "andi", "ori": "ori", "xori": "xori",
    "slli": "slli", "srli": "srli",
    "seteqi": "seq", "setnei": "sne", "setgti": "sgt", "setlti": "slti",
    "setgei": "sge", "setlei": "sle",
}


def _sanitize_label(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", label)


def _parse_register(token: str, line_number: int) -> int:
    name = token.strip().lower()
    if name not in RISCV_REGISTERS:
        raise RiscvTranslationError(f"unknown RISC-V register {token!r}",
                                    line_number)
    return RISCV_REGISTERS[name]


def _is_register(token: str) -> bool:
    return token.strip().lower() in RISCV_REGISTERS


def _parse_immediate(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise RiscvTranslationError(f"bad immediate {token!r}",
                                    line_number) from None


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


#: Calling convention of the RV32IM user-level subset the frontend accepts.
RISCV_ABI = IsaAbi(
    stack_pointer="sp",
    return_address="ra",
    return_value="a0",
    argument_registers=("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"),
    caller_saved=("t0", "t1", "t2", "t3", "t4", "t5", "t6"),
    notes="ra (x1) maps to SymPLFIED $31, sp (x2) to $29; t6/t4 take the "
          "freed $1/$2 slots. $1 (t6) is the scratch register of expanded "
          "compare-and-branch pseudos.",
)


class RiscvFrontend(IsaFrontend):
    """The ``"rv32im"`` ISA frontend: RV32IM subset <-> SymPLFIED programs."""

    name = "rv32im"
    description = "RISC-V RV32IM user-level integer subset (RARS conventions)"
    registers = RISCV_REGISTERS
    abi = RISCV_ABI

    # ------------------------------------------------------------- translate

    def translate(self, source: str, name: str = "rv32im") -> Program:
        builder = ProgramBuilder(name=name)
        in_text_segment = True
        # Value of the last ``li a7, N`` still pending at this point, used to
        # resolve ``ecall``.  Reset at labels (a jump may land with any a7)
        # and whenever a7 is rewritten by anything else.
        pending_a7: Optional[int] = None
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = strip_comment(raw_line).strip()
            if not line:
                continue
            if line.startswith("."):
                directive = line.split()[0]
                if directive == ".data":
                    in_text_segment = False
                elif directive in (".text", ".section"):
                    in_text_segment = directive == ".text" or ".text" in line
                continue
            if not in_text_segment:
                continue
            while True:
                match = _LABEL_RE.match(line)
                if match is None:
                    break
                builder.label(_sanitize_label(match.group(1)))
                pending_a7 = None
                line = line[match.end():].strip()
            if not line:
                continue
            instructions = self._translate_instruction(line, line_number,
                                                       pending_a7)
            pending_a7 = self._next_pending_a7(instructions, pending_a7)
            for instruction in instructions:
                builder.emit(instruction, source=raw_line.strip())
        return builder.build()

    @staticmethod
    def _next_pending_a7(instructions: Sequence[Instruction],
                         pending_a7: Optional[int]) -> Optional[int]:
        for instruction in instructions:
            if (instruction.opcode == "li" and instruction.operands[0] == _A7):
                pending_a7 = instruction.operands[1]
            elif (instruction.opcode == "addi"
                    and instruction.operands[0] == _A7
                    and instruction.operands[1] == 0):
                pending_a7 = instruction.operands[2]
            elif _A7 in instruction.registers_written():
                pending_a7 = None
        return pending_a7

    # ----------------------------------------------------------- single lines

    def _translate_instruction(self, line: str, line_number: int,
                               pending_a7: Optional[int]) -> List[Instruction]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""

        if mnemonic in ("prints", "throw"):
            text = unescape_string(operand_text)
            if text is None:
                raise RiscvTranslationError(
                    f'{mnemonic} expects a double-quoted string, got '
                    f'{operand_text.strip()!r}', line_number)
            return [make(mnemonic, text)]

        operands = _split_operands(operand_text)

        if mnemonic in _RRR_MAP:
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            last = operands[2]
            if _is_register(last):
                return [make(_RRR_MAP[mnemonic], rd, rs,
                             _parse_register(last, line_number))]
            # RARS-style immediate pseudo-op form, e.g. ``sub t0, t1, 1``.
            return [make(_RRR_MAP[mnemonic] + "i", rd, rs,
                         _parse_immediate(last, line_number))]

        if mnemonic in ("sll", "srl"):
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            if _is_register(operands[2]):
                raise RiscvTranslationError(
                    f"{mnemonic} with a register shift amount is not "
                    "supported; use an immediate shift", line_number)
            return [make(mnemonic + "i", rd, rs,
                         _parse_immediate(operands[2], line_number))]

        if mnemonic in _RRI_MAP:
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            imm = _parse_immediate(operands[2], line_number)
            return [make(_RRI_MAP[mnemonic], rd, rs, imm)]

        if mnemonic == "mv":
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            return [make("mov", rd, rs)]
        if mnemonic == "neg":
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            return [make("sub", rd, 0, rs)]
        if mnemonic in ("seqz", "snez"):
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            opcode = "seteqi" if mnemonic == "seqz" else "setnei"
            return [make(opcode, rd, rs, 0)]

        if mnemonic in ("li", "la", "lui"):
            rd = _parse_register(operands[0], line_number)
            imm = _parse_immediate(operands[1], line_number)
            return [make("li", rd, imm)]

        if mnemonic in ("lw", "lh", "lhu", "lb", "lbu"):
            rt = _parse_register(operands[0], line_number)
            base, offset = self._parse_displacement(operands[1], line_number)
            return [make("ldi", rt, base, offset)]
        if mnemonic in ("sw", "sh", "sb"):
            rt = _parse_register(operands[0], line_number)
            base, offset = self._parse_displacement(operands[1], line_number)
            return [make("sti", rt, base, offset)]

        if mnemonic in ("beq", "bne"):
            return self._translate_branch(operands, line_number,
                                          equal=mnemonic == "beq")
        if mnemonic in ("beqz", "bnez"):
            rs = _parse_register(operands[0], line_number)
            label = _sanitize_label(operands[1])
            opcode = "beq" if mnemonic == "beqz" else "bne"
            return [make(opcode, rs, 0, label)]
        if mnemonic in _COMPARE_BRANCHES:
            rs = _parse_register(operands[0], line_number)
            rt = _parse_register(operands[1], line_number)
            label = _sanitize_label(operands[2])
            return [make(_COMPARE_BRANCHES[mnemonic], 1, rs, rt),
                    make("bne", 1, 0, label)]
        if mnemonic in _ZERO_COMPARE_BRANCHES:
            rs = _parse_register(operands[0], line_number)
            label = _sanitize_label(operands[1])
            return [make(_ZERO_COMPARE_BRANCHES[mnemonic], 1, rs, 0),
                    make("bne", 1, 0, label)]

        if mnemonic == "j":
            return [make("jmp", _sanitize_label(operands[0]))]
        if mnemonic == "jal":
            if len(operands) == 1:
                return [make("jal", _sanitize_label(operands[0]))]
            rd = _parse_register(operands[0], line_number)
            label = _sanitize_label(operands[1])
            if rd == 0:
                return [make("jmp", label)]
            if rd == RISCV_REGISTERS["ra"]:
                return [make("jal", label)]
            raise RiscvTranslationError(
                "jal may only link through ra (or x0 for a plain jump); "
                f"got {operands[0]!r}", line_number)
        if mnemonic == "jalr":
            return self._translate_jalr(operands, line_number)
        if mnemonic == "jr":
            return [make("jr", _parse_register(operands[0], line_number))]
        if mnemonic == "ret":
            return [make("jr", RISCV_REGISTERS["ra"])]

        if mnemonic == "nop":
            return [make("nop")]

        if mnemonic == "ecall":
            service = _ECALL_SERVICES.get(pending_a7) if pending_a7 is not None \
                else None
            if service == "read":
                return [make("read", _A0)]
            if service == "print":
                return [make("print", _A0)]
            if service == "halt":
                return [make("halt")]
            raise RiscvTranslationError(
                "ecall needs a preceding `li a7, N` selecting a supported "
                "service (1=print, 5=read, 10/93=exit); alternatively use the "
                "read/print/exit pseudo-instructions", line_number)

        # SymPLFIED-native pseudo-instructions, mirroring the MIPS frontend.
        if mnemonic == "read":
            return [make("read", _parse_register(operands[0], line_number))]
        if mnemonic == "print":
            return [make("print", _parse_register(operands[0], line_number))]
        if mnemonic == "check":
            return [make("check", _parse_immediate(operands[0], line_number))]
        if mnemonic in ("halt", "exit"):
            return [make("halt")]

        raise RiscvTranslationError(
            f"unsupported RV32IM instruction {mnemonic!r}", line_number)

    def _translate_branch(self, operands: Sequence[str], line_number: int,
                          equal: bool) -> List[Instruction]:
        rs = _parse_register(operands[0], line_number)
        label = _sanitize_label(operands[2])
        second = operands[1]
        if _is_register(second):
            rt = _parse_register(second, line_number)
            compare = "seteq" if equal else "setne"
            return [make(compare, 1, rs, rt), make("bne", 1, 0, label)]
        immediate = _parse_immediate(second, line_number)
        opcode = "beq" if equal else "bne"
        return [make(opcode, rs, immediate, label)]

    def _translate_jalr(self, operands: Sequence[str],
                        line_number: int) -> List[Instruction]:
        # Supported non-linking forms: ``jalr x0, rs, 0`` and ``jalr x0, 0(rs)``.
        if len(operands) == 1:
            raise RiscvTranslationError(
                "linking jalr is not supported (SymPLFIED has no "
                "register-indirect call); use `jalr x0, rs, 0` for a plain "
                "indirect jump or `ret` to return", line_number)
        rd = _parse_register(operands[0], line_number)
        if rd != 0:
            raise RiscvTranslationError(
                "jalr may only discard its link (rd = x0); SymPLFIED has no "
                "register-indirect call", line_number)
        if len(operands) == 2:
            match = _DISPLACEMENT_RE.match(operands[1].replace(" ", ""))
            if match is None or int(match.group(1)) != 0:
                raise RiscvTranslationError(
                    f"bad jalr operand {operands[1]!r} (only offset 0 is "
                    "supported)", line_number)
            return [make("jr", _parse_register(match.group(2), line_number))]
        if _parse_immediate(operands[2], line_number) != 0:
            raise RiscvTranslationError(
                "jalr offsets other than 0 are not supported", line_number)
        return [make("jr", _parse_register(operands[1], line_number))]

    @staticmethod
    def _parse_displacement(token: str, line_number: int) -> Tuple[int, int]:
        match = _DISPLACEMENT_RE.match(token.replace(" ", ""))
        if match is None:
            raise RiscvTranslationError(f"bad address operand {token!r}",
                                        line_number)
        offset = int(match.group(1))
        base = _parse_register(match.group(2), line_number)
        return base, offset

    # ------------------------------------------------------------------ emit

    def emit_instruction(self, instruction: Instruction) -> str:
        opcode = instruction.opcode
        ops = instruction.operands

        def reg(number: int) -> str:
            return RISCV_REGISTER_NAMES[number]

        if opcode in _RRR_EMIT:
            return f"{_RRR_EMIT[opcode]} {reg(ops[0])}, {reg(ops[1])}, {reg(ops[2])}"
        if opcode in _RRI_EMIT:
            return f"{_RRI_EMIT[opcode]} {reg(ops[0])}, {reg(ops[1])}, {ops[2]}"
        if opcode == "mov":
            return f"mv {reg(ops[0])}, {reg(ops[1])}"
        if opcode == "li":
            return f"li {reg(ops[0])}, {ops[1]}"
        if opcode == "ldi":
            return f"lw {reg(ops[0])}, {ops[2]}({reg(ops[1])})"
        if opcode == "sti":
            return f"sw {reg(ops[0])}, {ops[2]}({reg(ops[1])})"
        if opcode in ("beq", "bne"):
            if ops[1] == 0:
                return f"{opcode}z {reg(ops[0])}, {ops[2]}"
            return f"{opcode} {reg(ops[0])}, {ops[1]}, {ops[2]}"
        if opcode == "jmp":
            return f"j {ops[0]}"
        if opcode == "jal":
            return f"jal {ops[0]}"
        if opcode == "jr":
            return f"jr {reg(ops[0])}"
        if opcode in ("read", "print"):
            return f"{opcode} {reg(ops[0])}"
        if opcode in ("prints", "throw"):
            return f"{opcode} {escape_string(ops[0])}"
        if opcode == "check":
            return f"check {ops[0]}"
        if opcode in ("halt", "nop"):
            return opcode
        raise RiscvTranslationError(
            f"cannot emit SymPLFIED opcode {opcode!r} as RV32IM")


#: The registered ``"rv32im"`` frontend instance.
RISCV_FRONTEND = RiscvFrontend()


def translate_riscv(source: str, name: str = "rv32im") -> Program:
    """Convenience wrapper: translate RV32IM *source* into a program."""
    return RISCV_FRONTEND.translate(source, name=name)
