"""MIPS front-end: translate a MIPS assembly subset into the SymPLFIED ISA.

The paper's supporting tools include a translator from the target
architecture's assembly (MIPS in the prototype) into SymPLFIED's own assembly
language, so that real compiler output can be analysed.  This module provides
that front-end for a practical subset of the MIPS32 user-level integer ISA:
arithmetic/logic (register and immediate forms), ``lw``/``sw`` with
displacement addressing, ``slt``-family comparisons, branches, ``j``/``jal``/
``jr``, ``move``/``li``/``nop`` pseudo-instructions, and ``syscall``-based
read/print/exit conventions (SPIM services 1, 5 and 10).

The translation is line-by-line and label-preserving: each MIPS instruction
maps to one or a few SymPLFIED instructions, so code addresses stay in the
same order and error-injection sweeps over the translated program remain
meaningful.

Since the ISA registry refactor the module exports :class:`MipsFrontend`, an
:class:`~repro.isa.registry.IsaFrontend` registered as ``"mips"`` that also
*emits* SymPLFIED programs back as MIPS assembly.  Emission sticks to forms
the translator maps 1:1 (SPIM-style ``seq``/``sne``/``sgt``/``sge``/``sle``
set pseudo-ops, immediate third operands for ``sub``/``mul``/``div``/``rem``),
so ``translate(emit(program))`` reproduces the exact instruction sequence and
label table — retargeting never moves an injection address.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction, make
from ..isa.program import Program, ProgramBuilder
from ..isa.registry import IsaAbi, IsaFrontend
from .common import escape_string, strip_comment, unescape_string


class MipsTranslationError(ValueError):
    """Raised when a MIPS line cannot be translated."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


_REGISTER_TABLE = {
    0: ("zero",), 1: ("at",), 2: ("v0",), 3: ("v1",),
    4: ("a0",), 5: ("a1",), 6: ("a2",), 7: ("a3",),
    8: ("t0",), 9: ("t1",), 10: ("t2",), 11: ("t3",),
    12: ("t4",), 13: ("t5",), 14: ("t6",), 15: ("t7",),
    16: ("s0",), 17: ("s1",), 18: ("s2",), 19: ("s3",),
    20: ("s4",), 21: ("s5",), 22: ("s6",), 23: ("s7",),
    24: ("t8",), 25: ("t9",), 26: ("k0",), 27: ("k1",),
    28: ("gp",), 29: ("sp",), 30: ("fp", "s8"), 31: ("ra",),
}

#: MIPS register names -> architectural register numbers.
MIPS_REGISTERS: Dict[str, int] = {}
#: Architectural register numbers -> canonical MIPS names (for emission).
MIPS_REGISTER_NAMES: Dict[int, str] = {}
for _number, _names in _REGISTER_TABLE.items():
    MIPS_REGISTER_NAMES[_number] = _names[0]
    for _name in _names:
        MIPS_REGISTERS[_name] = _number
for _n in range(32):
    MIPS_REGISTERS[str(_n)] = _n


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:")
_DISPLACEMENT_RE = re.compile(r"^(-?\d+)\(\$([A-Za-z0-9]+)\)$")

#: Three-register MIPS ops -> SymPLFIED opcodes.  When the last operand is an
#: immediate instead of a register (the SPIM/MARS pseudo-op forms, e.g.
#: ``sub $t0, $t1, 1``), the translator appends ``i`` to the SymPLFIED
#: opcode, so every entry here also covers the immediate form.
_RRR_MAP = {
    "add": "add", "addu": "add", "sub": "sub", "subu": "sub",
    "mul": "mult", "div": "div", "divu": "div", "rem": "mod", "remu": "mod",
    "and": "and", "or": "or", "xor": "xor",
    "slt": "setlt", "sltu": "setlt", "sgt": "setgt", "sge": "setge",
    "sle": "setle", "seq": "seteq", "sne": "setne",
}

#: Register-immediate MIPS ops -> SymPLFIED opcodes.
_RRI_MAP = {
    "addi": "addi", "addiu": "addi", "andi": "andi", "ori": "ori",
    "xori": "xori", "sll": "slli", "srl": "srli",
    "slti": "setlti", "sltiu": "setlti",
}

#: SymPLFIED opcode -> MIPS mnemonic for register-register-register forms.
_RRR_EMIT = {
    "add": "add", "sub": "sub", "mult": "mul", "div": "div", "mod": "rem",
    "and": "and", "or": "or", "xor": "xor",
    "seteq": "seq", "setne": "sne", "setgt": "sgt", "setlt": "slt",
    "setge": "sge", "setle": "sle",
}

#: SymPLFIED opcode -> MIPS mnemonic for register-register-immediate forms.
#: Opcodes without a native MIPS immediate form fall back to the SPIM-style
#: pseudo-op spelling (mnemonic with a literal third operand), which the
#: translator maps straight back through :data:`_RRR_MAP`.
_RRI_EMIT = {
    "addi": "addi", "subi": "sub", "multi": "mul", "divi": "div",
    "modi": "rem", "andi": "andi", "ori": "ori", "xori": "xori",
    "slli": "sll", "srli": "srl",
    "seteqi": "seq", "setnei": "sne", "setgti": "sgt", "setlti": "slti",
    "setgei": "sge", "setlei": "sle",
}


def _sanitize_label(label: str) -> str:
    """SymPLFIED labels allow only [A-Za-z0-9_]; keep MIPS labels readable."""
    return re.sub(r"[^A-Za-z0-9_]", "_", label)


def _parse_register(token: str, line_number: int) -> int:
    name = token.lstrip("$").lower()
    if name not in MIPS_REGISTERS:
        raise MipsTranslationError(f"unknown MIPS register {token!r}", line_number)
    return MIPS_REGISTERS[name]


def _parse_immediate(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise MipsTranslationError(f"bad immediate {token!r}", line_number) from None


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


#: Calling convention of the MIPS o32 user-level subset the frontend accepts.
MIPS_ABI = IsaAbi(
    stack_pointer="$sp",
    return_address="$ra",
    return_value="$v0",
    argument_registers=("$a0", "$a1", "$a2", "$a3"),
    caller_saved=("$t0", "$t1", "$t2", "$t3", "$t4",
                  "$t5", "$t6", "$t7", "$t8", "$t9"),
    notes="MIPS numbering matches SymPLFIED 1:1 ($zero=$0, $sp=$29, $ra=$31).",
)


class MipsFrontend(IsaFrontend):
    """The ``"mips"`` ISA frontend: MIPS32 subset <-> SymPLFIED programs."""

    name = "mips"
    description = "MIPS32 user-level integer subset (SPIM conventions)"
    registers = MIPS_REGISTERS
    abi = MIPS_ABI

    # ------------------------------------------------------------- translate

    def translate(self, source: str, name: str = "mips") -> Program:
        builder = ProgramBuilder(name=name)
        in_text_segment = True
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = strip_comment(raw_line).strip()
            if not line:
                continue
            if line.startswith("."):
                directive = line.split()[0]
                if directive == ".data":
                    in_text_segment = False
                elif directive == ".text":
                    in_text_segment = True
                continue
            if not in_text_segment:
                continue
            while True:
                match = _LABEL_RE.match(line)
                if match is None:
                    break
                builder.label(_sanitize_label(match.group(1)))
                line = line[match.end():].strip()
            if not line:
                continue
            for instruction in self._translate_instruction(line, line_number):
                builder.emit(instruction, source=raw_line.strip())
        return builder.build()

    # ----------------------------------------------------------- single lines

    def _translate_instruction(self, line: str,
                               line_number: int) -> List[Instruction]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""

        # String-carrying pseudo-ops are parsed before comma-splitting so the
        # literal may contain commas.
        if mnemonic in ("prints", "throw"):
            text = unescape_string(operand_text)
            if text is None:
                raise MipsTranslationError(
                    f'{mnemonic} expects a double-quoted string, got '
                    f'{operand_text.strip()!r}', line_number)
            return [make(mnemonic, text)]

        operands = _split_operands(operand_text)

        if mnemonic in _RRR_MAP:
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            last = operands[2]
            if last.startswith("$"):
                return [make(_RRR_MAP[mnemonic], rd, rs,
                             _parse_register(last, line_number))]
            # SPIM/MARS-style immediate pseudo-op form, e.g. ``sub $1, $2, 1``.
            return [make(_RRR_MAP[mnemonic] + "i", rd, rs,
                         _parse_immediate(last, line_number))]

        if mnemonic in _RRI_MAP:
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            imm = _parse_immediate(operands[2], line_number)
            return [make(_RRI_MAP[mnemonic], rd, rs, imm)]

        if mnemonic in ("move", "mov"):
            rd = _parse_register(operands[0], line_number)
            rs = _parse_register(operands[1], line_number)
            return [make("mov", rd, rs)]

        if mnemonic in ("li", "la"):
            rd = _parse_register(operands[0], line_number)
            imm = _parse_immediate(operands[1], line_number)
            return [make("li", rd, imm)]

        if mnemonic in ("lw", "lb", "lbu", "lh", "lhu"):
            rt = _parse_register(operands[0], line_number)
            base, offset = self._parse_displacement(operands[1], line_number)
            return [make("ldi", rt, base, offset)]

        if mnemonic in ("sw", "sb", "sh"):
            rt = _parse_register(operands[0], line_number)
            base, offset = self._parse_displacement(operands[1], line_number)
            return [make("sti", rt, base, offset)]

        if mnemonic == "beq":
            return self._translate_branch(operands, line_number, equal=True)
        if mnemonic == "bne":
            return self._translate_branch(operands, line_number, equal=False)
        if mnemonic in ("beqz", "bnez"):
            rs = _parse_register(operands[0], line_number)
            label = _sanitize_label(operands[1])
            opcode = "beq" if mnemonic == "beqz" else "bne"
            return [make(opcode, rs, 0, label)]
        if mnemonic in ("blez", "bgtz", "bltz", "bgez"):
            rs = _parse_register(operands[0], line_number)
            label = _sanitize_label(operands[1])
            compare = {"blez": "setle", "bgtz": "setgt",
                       "bltz": "setlt", "bgez": "setge"}[mnemonic]
            return [make(compare, 1, rs, 0), make("bne", 1, 0, label)]

        if mnemonic in ("j", "b"):
            return [make("jmp", _sanitize_label(operands[0]))]
        if mnemonic == "jal":
            return [make("jal", _sanitize_label(operands[0]))]
        if mnemonic == "jr":
            return [make("jr", _parse_register(operands[0], line_number))]

        if mnemonic == "nop":
            return [make("nop")]

        if mnemonic == "syscall":
            # SPIM conventions: $v0 selects the service.  The translation
            # cannot inspect $v0 statically, so syscalls are only supported
            # when annotated by the immediately preceding ``li $v0, N``;
            # the common pattern is handled by translate() callers that use
            # explicit read/print/halt pseudo-ops instead.
            raise MipsTranslationError(
                "bare syscall is ambiguous; use the read/print/exit "
                "pseudo-instructions instead", line_number)

        # SymPLFIED-native pseudo-instructions accepted inside MIPS sources so
        # that translated programs can perform OS-independent I/O.
        if mnemonic == "read":
            return [make("read", _parse_register(operands[0], line_number))]
        if mnemonic == "print":
            return [make("print", _parse_register(operands[0], line_number))]
        if mnemonic == "check":
            return [make("check", _parse_immediate(operands[0], line_number))]
        if mnemonic in ("halt", "exit"):
            return [make("halt")]

        raise MipsTranslationError(f"unsupported MIPS instruction {mnemonic!r}",
                                   line_number)

    def _translate_branch(self, operands: Sequence[str], line_number: int,
                          equal: bool) -> List[Instruction]:
        rs = _parse_register(operands[0], line_number)
        label = _sanitize_label(operands[2])
        second = operands[1]
        if second.startswith("$"):
            rt = _parse_register(second, line_number)
            # register-register branch: compare then branch on the result
            compare = "seteq" if equal else "setne"
            return [make(compare, 1, rs, rt), make("bne", 1, 0, label)]
        immediate = _parse_immediate(second, line_number)
        opcode = "beq" if equal else "bne"
        return [make(opcode, rs, immediate, label)]

    @staticmethod
    def _parse_displacement(token: str, line_number: int) -> Tuple[int, int]:
        match = _DISPLACEMENT_RE.match(token.replace(" ", ""))
        if match is None:
            raise MipsTranslationError(f"bad address operand {token!r}", line_number)
        offset = int(match.group(1))
        base = _parse_register(match.group(2), line_number)
        return base, offset

    # ------------------------------------------------------------------ emit

    def emit_instruction(self, instruction: Instruction) -> str:
        opcode = instruction.opcode
        ops = instruction.operands
        def reg(number: int) -> str:
            return "$" + MIPS_REGISTER_NAMES[number]

        if opcode in _RRR_EMIT:
            return f"{_RRR_EMIT[opcode]} {reg(ops[0])}, {reg(ops[1])}, {reg(ops[2])}"
        if opcode in _RRI_EMIT:
            return f"{_RRI_EMIT[opcode]} {reg(ops[0])}, {reg(ops[1])}, {ops[2]}"
        if opcode == "mov":
            return f"move {reg(ops[0])}, {reg(ops[1])}"
        if opcode == "li":
            return f"li {reg(ops[0])}, {ops[1]}"
        if opcode == "ldi":
            return f"lw {reg(ops[0])}, {ops[2]}({reg(ops[1])})"
        if opcode == "sti":
            return f"sw {reg(ops[0])}, {ops[2]}({reg(ops[1])})"
        if opcode in ("beq", "bne"):
            return f"{opcode} {reg(ops[0])}, {ops[1]}, {ops[2]}"
        if opcode == "jmp":
            return f"j {ops[0]}"
        if opcode == "jal":
            return f"jal {ops[0]}"
        if opcode == "jr":
            return f"jr {reg(ops[0])}"
        if opcode in ("read", "print"):
            return f"{opcode} {reg(ops[0])}"
        if opcode in ("prints", "throw"):
            return f"{opcode} {escape_string(ops[0])}"
        if opcode == "check":
            return f"check {ops[0]}"
        if opcode in ("halt", "nop"):
            return opcode
        raise MipsTranslationError(
            f"cannot emit SymPLFIED opcode {opcode!r} as MIPS")


#: The registered ``"mips"`` frontend instance.
MIPS_FRONTEND = MipsFrontend()


class MipsTranslator:
    """Translate MIPS assembly text into a SymPLFIED :class:`Program`.

    Compatibility wrapper kept from before the ISA registry refactor; new
    code should use ``get_frontend("mips")`` / :data:`MIPS_FRONTEND`.
    """

    def __init__(self, name: str = "mips") -> None:
        self.name = name

    def translate(self, source: str) -> Program:
        return MIPS_FRONTEND.translate(source, name=self.name)


def translate_mips(source: str, name: str = "mips") -> Program:
    """Convenience wrapper: translate MIPS *source* into a program."""
    return MIPS_FRONTEND.translate(source, name=name)
