"""Shared text helpers for the assembly frontends.

Both built-in frontends (MIPS, RV32IM) use ``#`` line comments and
double-quoted string literals for the SymPLFIED-native ``prints``/``throw``
pseudo-instructions, so comment stripping has to be string-aware and the
escape conventions must round-trip through :meth:`IsaFrontend.emit`.
"""

from __future__ import annotations

import re
from typing import Optional

_STRING_LITERAL_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')
_ESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def strip_comment(line: str, comment_char: str = "#") -> str:
    """Drop a trailing ``#`` comment, ignoring ``#`` inside string literals."""
    in_string = False
    escaped = False
    for index, char in enumerate(line):
        if escaped:
            escaped = False
        elif char == "\\" and in_string:
            escaped = True
        elif char == '"':
            in_string = not in_string
        elif char == comment_char and not in_string:
            return line[:index]
    return line


def escape_string(text: str) -> str:
    """Render *text* as a double-quoted assembly string literal."""
    body = (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t"))
    return f'"{body}"'


def unescape_string(token: str) -> Optional[str]:
    """Parse a double-quoted literal; ``None`` when *token* is not one."""
    match = _STRING_LITERAL_RE.match(token.strip())
    if match is None:
        return None
    return _ESCAPE_RE.sub(lambda m: _UNESCAPES.get(m.group(1), m.group(1)),
                          match.group(1))
