"""Program container and loader for SymPLFIED assembly programs.

A :class:`Program` is an immutable sequence of instructions together with a
label table mapping symbolic labels to code addresses.  Code addresses are
simply instruction indices (0-based), which is how the machine model's
program counter addresses code.

The loader semantics follow the paper's machine-model assumptions
(Section 5.1):

* fetching from an address outside ``[0, len(code))`` raises an *illegal
  instruction* condition (handled by the executor),
* program instructions are immutable and cannot be overwritten,
* the set of valid code addresses is fixed at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .instructions import Instruction, InvalidInstructionError, is_control_transfer


class ProgramError(ValueError):
    """Raised for malformed programs (duplicate labels, unknown targets...)."""


@dataclass(frozen=True)
class Program:
    """An assembled program: code, labels and optional per-line metadata.

    Attributes:
        code: tuple of instructions, indexed by code address.
        labels: mapping from label name to code address.
        source_lines: optional mapping from code address to the original
            source line (used in traces and reports).
        name: human-readable program name.
    """

    code: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    source_lines: Dict[int, str] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        for label, address in self.labels.items():
            if not (0 <= address <= len(self.code)):
                raise ProgramError(f"label {label!r} points outside the program")
        self._validate_targets()

    def _validate_targets(self) -> None:
        for address, instruction in enumerate(self.code):
            try:
                instruction.validate()
            except InvalidInstructionError as exc:
                raise ProgramError(f"address {address}: {exc}") from exc
            for operand, kind in zip(instruction.operands, instruction.spec.signature):
                if kind.value == "label" and operand not in self.labels:
                    raise ProgramError(
                        f"address {address}: unknown label {operand!r} "
                        f"in {instruction.render()}")

    # ------------------------------------------------------------------ access

    def __len__(self) -> int:
        return len(self.code)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.code)

    def __getitem__(self, address: int) -> Instruction:
        return self.code[address]

    def is_valid_address(self, address: object) -> bool:
        """True if *address* is a valid code address for fetching."""
        return isinstance(address, int) and not isinstance(address, bool) \
            and 0 <= address < len(self.code)

    def fetch(self, address: int) -> Optional[Instruction]:
        """Return the instruction at *address*, or None if out of range."""
        if self.is_valid_address(address):
            return self.code[address]
        return None

    def resolve(self, label: str) -> int:
        """Return the code address of *label*."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"unknown label {label!r}") from None

    def label_addresses(self) -> Tuple[int, ...]:
        """All code addresses that carry a label (sorted, deduplicated)."""
        return tuple(sorted(set(self.labels.values())))

    def labels_at(self, address: int) -> Tuple[str, ...]:
        """Labels attached to a given code address."""
        return tuple(sorted(name for name, addr in self.labels.items() if addr == address))

    def control_transfer_targets(self) -> Tuple[int, ...]:
        """Addresses that are statically reachable as control-transfer targets.

        Used by the control-error sub-model when the fork domain is
        restricted to "plausible" targets instead of every code address.
        """
        targets = set(self.labels.values())
        for address, instruction in enumerate(self.code):
            if is_control_transfer(instruction):
                if address + 1 < len(self.code):
                    targets.add(address + 1)  # return points / fall-through
        return tuple(sorted(t for t in targets if 0 <= t < len(self.code)))

    def source_line(self, address: int) -> str:
        """Original assembly text for the instruction at *address*."""
        return self.source_lines.get(address, self.code[address].render())

    def render(self) -> str:
        """Render the whole program back to assembly text."""
        by_address: Dict[int, List[str]] = {}
        for label, address in self.labels.items():
            by_address.setdefault(address, []).append(label)
        lines: List[str] = []
        for address, instruction in enumerate(self.code):
            for label in sorted(by_address.get(address, [])):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.render()}")
        for label in sorted(by_address.get(len(self.code), [])):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (f"{self.name}: {len(self.code)} instructions, "
                f"{len(self.labels)} labels")


class ProgramBuilder:
    """Incremental builder used by the assembler and the minic code generator."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._source_lines: Dict[int, str] = {}
        self._pending_labels: List[str] = []

    def __len__(self) -> int:
        return len(self._code)

    @property
    def next_address(self) -> int:
        return len(self._code)

    def label(self, name: str) -> None:
        """Attach *name* to the next emitted instruction."""
        if name in self._labels or name in self._pending_labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._pending_labels.append(name)

    def emit(self, instruction: Instruction, source: Optional[str] = None) -> int:
        """Append an instruction, returning its code address."""
        address = len(self._code)
        for name in self._pending_labels:
            self._labels[name] = address
        self._pending_labels.clear()
        self._code.append(instruction)
        if source is not None:
            self._source_lines[address] = source
        return address

    def extend(self, instructions: Iterable[Instruction]) -> None:
        for instruction in instructions:
            self.emit(instruction)

    def has_label(self, name: str) -> bool:
        return name in self._labels or name in self._pending_labels

    def build(self) -> Program:
        """Finalise the program.

        Trailing labels are attached to the end-of-code address, which is
        legal for branch targets that fall off the end (the executor treats a
        fetch from that address as program termination by convention only if
        a ``halt`` was executed; otherwise it is an illegal instruction).
        """
        labels = dict(self._labels)
        for name in self._pending_labels:
            labels[name] = len(self._code)
        return Program(code=tuple(self._code), labels=labels,
                       source_lines=dict(self._source_lines), name=self.name)
