"""Value domain for the SymPLFIED machine.

The machine operates on two kinds of values:

* ordinary (unbounded) Python integers, and
* the single abstract error symbol ``ERR``.

The paper (Section 3.2) collapses *every* erroneous value -- single- and
multi-bit corruptions of registers, memory words, bus transfers and
functional-unit outputs -- into one symbolic constant ``err``.  States are
therefore distinguished by *where* the error lives, not by which concrete
value it took, which is what keeps the search space tractable.

This module defines the ``ErrValue`` sentinel, the ``Value`` union used in
type annotations throughout the code base, and small helpers shared by the
machine model, the error-propagation rules and the detector runtime.
"""

from __future__ import annotations

from typing import Union


class ErrValue:
    """The abstract symbol ``err`` representing any erroneous value.

    A single shared instance, :data:`ERR`, is used everywhere.  Equality is
    identity-based on purpose: asking whether ``err == err`` is a
    *non-deterministic* question in SymPLFIED (handled by the comparison
    sub-model), so ``ErrValue`` deliberately refuses to answer it through
    Python's ``==`` by always comparing by identity.
    """

    __slots__ = ()

    _instance: "ErrValue" = None

    def __new__(cls) -> "ErrValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "err"

    def __str__(self) -> str:
        return "err"

    def __hash__(self) -> int:
        return hash("SymPLFIED-err")

    def __deepcopy__(self, memo) -> "ErrValue":
        return self

    def __copy__(self) -> "ErrValue":
        return self


#: The single error symbol shared by the whole framework.
ERR = ErrValue()

#: A machine value: an unbounded integer or the error symbol.
Value = Union[int, ErrValue]


def is_err(value: Value) -> bool:
    """Return True if *value* is the abstract error symbol."""
    return value is ERR


def is_concrete(value: Value) -> bool:
    """Return True if *value* is an ordinary integer."""
    return isinstance(value, int) and not isinstance(value, bool) and value is not ERR


def require_concrete(value: Value, context: str = "value") -> int:
    """Return *value* as an int, raising ``TypeError`` if it is ``err``.

    Used in code paths that must never see a symbolic value (for example the
    concrete SimpleScalar-substitute simulator).
    """
    if is_err(value):
        raise TypeError(f"symbolic err encountered where a concrete {context} is required")
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{context} must be an int, got {type(value).__name__}")
    return value


def format_value(value: Value) -> str:
    """Human-readable rendering used by traces and output streams."""
    return "err" if is_err(value) else str(value)
