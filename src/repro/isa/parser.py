"""Assembler for the SymPLFIED generic assembly language.

The accepted syntax follows the paper's examples (Figures 2 and 3):

.. code-block:: text

    1  ori $2 $0 #1        -- initial product p = 1
    2  read $1             -- read i from input
    loop: setgt $5 $3 $4   -- start of loop
       beq $5 0 exit
       prints "Factorial = "
       halt

* Registers are written ``$n`` with ``0 <= n < 32``.
* Immediates may be written ``#value`` or as a bare (possibly negative)
  integer.
* Labels are identifiers followed by ``:`` and may precede an instruction on
  the same line or stand alone on their own line.
* Comments start with ``--``, ``;`` or ``//`` and run to end of line.
* Commas between operands are optional.
* Leading line numbers (as printed in the paper's figures) are ignored.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instructions import (INSTRUCTION_SET, Instruction, NUM_REGISTERS,
                           OperandKind)
from .program import Program, ProgramBuilder, ProgramError


class AssemblyError(ValueError):
    """Raised when assembly source cannot be parsed."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_COMMENT_RE = re.compile(r"--|;|//")
_LABEL_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*:")
_LINE_NUMBER_RE = re.compile(r"^\s*\d+\s+")
_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")      |
        (?P<register>\$\d+)                |
        (?P<immediate>\#?-?\d+)            |
        (?P<identifier>[A-Za-z_][A-Za-z0-9_]*) |
        (?P<comma>,)
    )
    """,
    re.VERBOSE,
)


def _strip_comment(line: str) -> str:
    in_string = False
    i = 0
    while i < len(line):
        char = line[i]
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if line.startswith("--", i) or line.startswith("//", i) or char == ";":
                return line[:i]
        i += 1
    return line


def _tokenize(text: str, line_number: int) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise AssemblyError(f"cannot parse {text[position:]!r}", line_number)
        position = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                if kind != "comma":
                    tokens.append((kind, value))
                break
    return tokens


def _parse_operand(kind: OperandKind, token_kind: str, token: str,
                   opcode: str, line_number: int):
    if kind is OperandKind.REGISTER:
        if token_kind != "register":
            raise AssemblyError(
                f"{opcode}: expected a register, got {token!r}", line_number)
        register = int(token[1:])
        if not 0 <= register < NUM_REGISTERS:
            raise AssemblyError(f"{opcode}: register {token} out of range", line_number)
        return register
    if kind is OperandKind.IMMEDIATE:
        if token_kind != "immediate":
            raise AssemblyError(
                f"{opcode}: expected an immediate, got {token!r}", line_number)
        return int(token.lstrip("#"))
    if kind is OperandKind.LABEL:
        if token_kind != "identifier":
            raise AssemblyError(
                f"{opcode}: expected a label, got {token!r}", line_number)
        return token
    if kind is OperandKind.STRING:
        if token_kind != "string":
            raise AssemblyError(
                f"{opcode}: expected a string literal, got {token!r}", line_number)
        body = token[1:-1]
        return body.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    raise AssemblyError(f"unsupported operand kind {kind}", line_number)


def parse_instruction(text: str, line_number: int = 0) -> Instruction:
    """Parse a single instruction (without label) from *text*."""
    tokens = _tokenize(text, line_number)
    if not tokens:
        raise AssemblyError("empty instruction", line_number)
    kind, mnemonic = tokens[0]
    if kind != "identifier":
        raise AssemblyError(f"expected an opcode, got {mnemonic!r}", line_number)
    opcode = mnemonic.lower()
    spec = INSTRUCTION_SET.get(opcode)
    if spec is None:
        raise AssemblyError(f"unknown opcode {opcode!r}", line_number)
    operand_tokens = tokens[1:]
    if len(operand_tokens) != len(spec.signature):
        raise AssemblyError(
            f"{opcode} expects {len(spec.signature)} operands, "
            f"got {len(operand_tokens)}", line_number)
    operands = tuple(
        _parse_operand(kind, token_kind, token, opcode, line_number)
        for kind, (token_kind, token) in zip(spec.signature, operand_tokens))
    return Instruction(opcode, operands)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    builder = ProgramBuilder(name=name)
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        line = _LINE_NUMBER_RE.sub("", line)
        while True:
            label_match = _LABEL_RE.match(line)
            if label_match is None:
                break
            try:
                builder.label(label_match.group(1))
            except ProgramError as exc:
                raise AssemblyError(str(exc), line_number) from exc
            line = line[label_match.end():]
        line = line.strip()
        if not line:
            continue
        instruction = parse_instruction(line, line_number)
        builder.emit(instruction, source=raw_line.strip())
    try:
        return builder.build()
    except ProgramError as exc:
        raise AssemblyError(str(exc)) from exc


def assemble_lines(lines: List[str], name: str = "program") -> Program:
    """Convenience wrapper assembling a list of source lines."""
    return assemble("\n".join(lines), name=name)
