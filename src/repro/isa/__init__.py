"""Generic SymPLFIED assembly language: values, instructions, programs, assembler."""

from .values import ERR, ErrValue, Value, format_value, is_concrete, is_err, require_concrete
from .instructions import (
    ARITHMETIC_RRI,
    ARITHMETIC_RRR,
    COMPARE_RRI,
    COMPARE_RRR,
    Category,
    INSTRUCTION_SET,
    Instruction,
    InstructionSpec,
    InvalidInstructionError,
    NUM_REGISTERS,
    OperandKind,
    RETURN_ADDRESS_REGISTER,
    STACK_POINTER_REGISTER,
    ZERO_REGISTER,
    is_control_transfer,
    make,
    reads_memory,
    writes_memory,
)
from .program import Program, ProgramBuilder, ProgramError
from .parser import AssemblyError, assemble, assemble_lines, parse_instruction
from .registry import (ISA_FRONTENDS, IsaAbi, IsaFrontend, available_isas,
                       get_frontend, register_frontend, retarget_program)

__all__ = [
    "ERR", "ErrValue", "Value", "format_value", "is_concrete", "is_err",
    "require_concrete",
    "ARITHMETIC_RRI", "ARITHMETIC_RRR", "COMPARE_RRI", "COMPARE_RRR",
    "Category", "INSTRUCTION_SET", "Instruction", "InstructionSpec",
    "InvalidInstructionError", "NUM_REGISTERS", "OperandKind",
    "RETURN_ADDRESS_REGISTER", "STACK_POINTER_REGISTER", "ZERO_REGISTER",
    "is_control_transfer", "make", "reads_memory", "writes_memory",
    "Program", "ProgramBuilder", "ProgramError",
    "AssemblyError", "assemble", "assemble_lines", "parse_instruction",
    "ISA_FRONTENDS", "IsaAbi", "IsaFrontend", "available_isas",
    "get_frontend", "register_frontend", "retarget_program",
]
