"""Instruction set of the generic SymPLFIED assembly language.

The language mirrors the one used in the paper (Section 3.1 / Section 5): a
small RISC-style, MIPS-like instruction set with

* three-operand register arithmetic and comparison setters,
* immediate variants,
* load/store with base register + offset addressing,
* branches, an unconditional jump, a call/return pair (``jal`` / ``jr``),
* native input/output instructions (``read``, ``print``, ``prints``) so that
  programs can be analysed independently of an operating system, and
* special instructions ``halt``, ``throw`` and the detector hook ``check``.

Each opcode has an :class:`InstructionSpec` describing its operand signature,
its semantic category and which register operands it reads/writes.  The error
model and the fault-injection campaigns use this metadata to decide where
errors can be injected ("only the registers used by the instruction",
Section 6.2 optimisation) and how decode errors can transform an instruction
(Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple, Union


#: Number of general-purpose registers in the machine model.
NUM_REGISTERS = 32

#: Register conventionally hard-wired to zero.
ZERO_REGISTER = 0

#: Register used by ``jal`` to store the return address (MIPS ``$ra``).
RETURN_ADDRESS_REGISTER = 31

#: Register used by convention as the stack pointer by the minic compiler.
STACK_POINTER_REGISTER = 29


class Category(Enum):
    """Semantic category of an instruction (used by the error model)."""

    ARITHMETIC = "arithmetic"
    COMPARE = "compare"
    MOVE = "move"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    JUMP_REGISTER = "jump_register"
    IO_READ = "io_read"
    IO_WRITE = "io_write"
    CHECK = "check"
    SPECIAL = "special"


class OperandKind(Enum):
    """Kind of a single instruction operand."""

    REGISTER = "reg"
    IMMEDIATE = "imm"
    LABEL = "label"
    STRING = "str"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one opcode.

    Attributes:
        opcode: mnemonic string.
        signature: operand kinds, in order.
        category: semantic category.
        reads: indices (into the operand tuple) of register operands that are
            read by the instruction.
        writes: indices of register operands that are written.
        implicit_writes: architectural registers written that do not appear
            as operands (for example ``$31`` for ``jal``).
    """

    opcode: str
    signature: Tuple[OperandKind, ...]
    category: Category
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    implicit_writes: Tuple[int, ...] = ()


Operand = Union[int, str]


def _spec(opcode: str, sig: str, category: Category, reads=(), writes=(),
          implicit_writes=()) -> InstructionSpec:
    kinds = {
        "r": OperandKind.REGISTER,
        "i": OperandKind.IMMEDIATE,
        "l": OperandKind.LABEL,
        "s": OperandKind.STRING,
    }
    signature = tuple(kinds[c] for c in sig)
    return InstructionSpec(opcode, signature, category, tuple(reads), tuple(writes),
                           tuple(implicit_writes))


#: Three-register arithmetic opcodes and the binary operator they denote.
ARITHMETIC_RRR = ("add", "sub", "mult", "div", "mod", "and", "or", "xor")

#: Register-register-immediate arithmetic opcodes.
ARITHMETIC_RRI = ("addi", "subi", "multi", "divi", "modi", "ori", "andi",
                  "xori", "slli", "srli")

#: Comparison setters (register-register-register form).
COMPARE_RRR = ("seteq", "setne", "setgt", "setlt", "setge", "setle")

#: Comparison setters (immediate form).
COMPARE_RRI = ("seteqi", "setnei", "setgti", "setlti", "setgei", "setlei")

_COMPARE_BASE_OPCODES = frozenset(COMPARE_RRR)


def compare_base_opcode(opcode: str) -> str:
    """Strip the immediate suffix from a comparison-setter mnemonic.

    ``seteqi`` -> ``seteq``, ``setlt`` -> ``setlt``.  The single place where
    the immediate/register spelling of a comparison is normalised — shared by
    the symbolic and the concrete interpreter so the two cannot drift.
    """
    if opcode.endswith("i") and opcode not in _COMPARE_BASE_OPCODES:
        return opcode[:-1]
    return opcode


def _build_instruction_table() -> Dict[str, InstructionSpec]:
    table: Dict[str, InstructionSpec] = {}

    for op in ARITHMETIC_RRR:
        table[op] = _spec(op, "rrr", Category.ARITHMETIC, reads=(1, 2), writes=(0,))
    for op in ARITHMETIC_RRI:
        table[op] = _spec(op, "rri", Category.ARITHMETIC, reads=(1,), writes=(0,))
    for op in COMPARE_RRR:
        table[op] = _spec(op, "rrr", Category.COMPARE, reads=(1, 2), writes=(0,))
    for op in COMPARE_RRI:
        table[op] = _spec(op, "rri", Category.COMPARE, reads=(1,), writes=(0,))

    table["mov"] = _spec("mov", "rr", Category.MOVE, reads=(1,), writes=(0,))
    table["li"] = _spec("li", "ri", Category.MOVE, writes=(0,))

    table["ldi"] = _spec("ldi", "rri", Category.LOAD, reads=(1,), writes=(0,))
    table["sti"] = _spec("sti", "rri", Category.STORE, reads=(0, 1))

    table["beq"] = _spec("beq", "ril", Category.BRANCH, reads=(0,))
    table["bne"] = _spec("bne", "ril", Category.BRANCH, reads=(0,))
    table["jmp"] = _spec("jmp", "l", Category.JUMP)
    table["jal"] = _spec("jal", "l", Category.CALL,
                         implicit_writes=(RETURN_ADDRESS_REGISTER,))
    table["jr"] = _spec("jr", "r", Category.JUMP_REGISTER, reads=(0,))

    table["read"] = _spec("read", "r", Category.IO_READ, writes=(0,))
    table["print"] = _spec("print", "r", Category.IO_WRITE, reads=(0,))
    table["prints"] = _spec("prints", "s", Category.IO_WRITE)

    table["check"] = _spec("check", "i", Category.CHECK)
    table["halt"] = _spec("halt", "", Category.SPECIAL)
    table["nop"] = _spec("nop", "", Category.SPECIAL)
    table["throw"] = _spec("throw", "s", Category.SPECIAL)
    return table


#: Mapping opcode -> specification for every instruction in the ISA.
INSTRUCTION_SET: Dict[str, InstructionSpec] = _build_instruction_table()


class InvalidInstructionError(ValueError):
    """Raised when an instruction is malformed with respect to the ISA."""


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Operands are stored positionally; their interpretation is given by the
    opcode's :class:`InstructionSpec`.  Register operands are integers in
    ``[0, NUM_REGISTERS)``, immediates are Python ints, label and string
    operands are ``str``.
    """

    opcode: str
    operands: Tuple[Operand, ...] = ()

    @property
    def spec(self) -> InstructionSpec:
        return INSTRUCTION_SET[self.opcode]

    def validate(self) -> None:
        """Check the instruction against the ISA, raising on malformation."""
        spec = INSTRUCTION_SET.get(self.opcode)
        if spec is None:
            raise InvalidInstructionError(f"unknown opcode {self.opcode!r}")
        if len(self.operands) != len(spec.signature):
            raise InvalidInstructionError(
                f"{self.opcode} expects {len(spec.signature)} operands, "
                f"got {len(self.operands)}")
        for operand, kind in zip(self.operands, spec.signature):
            if kind is OperandKind.REGISTER:
                if not isinstance(operand, int) or not (0 <= operand < NUM_REGISTERS):
                    raise InvalidInstructionError(
                        f"{self.opcode}: bad register operand {operand!r}")
            elif kind is OperandKind.IMMEDIATE:
                if not isinstance(operand, int):
                    raise InvalidInstructionError(
                        f"{self.opcode}: bad immediate operand {operand!r}")
            else:
                if not isinstance(operand, str):
                    raise InvalidInstructionError(
                        f"{self.opcode}: bad {kind.value} operand {operand!r}")

    def registers_read(self) -> Tuple[int, ...]:
        """Registers whose values this instruction reads."""
        return tuple(self.operands[i] for i in self.spec.reads)

    def registers_written(self) -> Tuple[int, ...]:
        """Registers this instruction writes (explicit and implicit)."""
        explicit = tuple(self.operands[i] for i in self.spec.writes)
        return explicit + self.spec.implicit_writes

    def registers_used(self) -> Tuple[int, ...]:
        """All registers referenced by the instruction (deduplicated, ordered)."""
        seen = []
        for reg in self.registers_read() + self.registers_written():
            if reg not in seen:
                seen.append(reg)
        return tuple(seen)

    @property
    def category(self) -> Category:
        return self.spec.category

    def render(self) -> str:
        """Render the instruction back to assembly text."""
        parts = [self.opcode]
        for operand, kind in zip(self.operands, self.spec.signature):
            if kind is OperandKind.REGISTER:
                parts.append(f"${operand}")
            elif kind is OperandKind.IMMEDIATE:
                parts.append(f"#{operand}")
            elif kind is OperandKind.STRING:
                parts.append('"' + str(operand).replace('"', '\\"') + '"')
            else:
                parts.append(str(operand))
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


def make(opcode: str, *operands: Operand) -> Instruction:
    """Build and validate an :class:`Instruction`."""
    instruction = Instruction(opcode, tuple(operands))
    instruction.validate()
    return instruction


def is_control_transfer(instruction: Instruction) -> bool:
    """True for branches, jumps, calls and register jumps."""
    return instruction.category in (Category.BRANCH, Category.JUMP,
                                    Category.CALL, Category.JUMP_REGISTER)


def writes_memory(instruction: Instruction) -> bool:
    return instruction.category is Category.STORE


def reads_memory(instruction: Instruction) -> bool:
    return instruction.category is Category.LOAD
