"""Pluggable ISA frontend registry.

The paper's prototype translates the target architecture's assembly (MIPS in
the prototype) into SymPLFIED's own language precisely so the error-model
claims are not tied to one ISA.  This module is that seam made explicit: an
:class:`IsaFrontend` knows how to *translate* an ISA's assembly into a
SymPLFIED :class:`~repro.isa.program.Program` and how to *emit* a SymPLFIED
program back as that ISA's assembly.  Frontends self-register under a short
name (``"mips"``, ``"rv32im"``) in :data:`ISA_FRONTENDS`; everything above
this layer — the minic compiler, workloads, campaigns, the CLI ``--isa``
flag — looks frontends up by name via :func:`get_frontend`.

Every built-in frontend keeps translation **label-preserving and 1:1**: one
assembly instruction becomes exactly one SymPLFIED instruction, labels keep
their relative order and addresses.  That invariant is what keeps injection
sweeps address-meaningful across ISAs: retargeting a workload through
``emit`` + ``translate`` reproduces the identical instruction sequence, so a
fault plan computed for one ISA's build of a program is the same plan for
another's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .instructions import Instruction
from .program import Program


@dataclass(frozen=True)
class IsaAbi:
    """Calling-convention metadata for an ISA frontend.

    Register names are in the frontend's own spelling (``"$sp"`` for MIPS,
    ``"sp"`` for RISC-V); :attr:`IsaFrontend.registers` maps them onto
    SymPLFIED register numbers.
    """

    stack_pointer: str
    return_address: str
    return_value: str
    argument_registers: Tuple[str, ...] = ()
    caller_saved: Tuple[str, ...] = ()
    notes: str = ""


class IsaFrontend:
    """Base class / protocol for ISA frontends.

    Concrete frontends provide:

    ``name``
        the registry key (``"mips"``, ``"rv32im"``),
    ``registers``
        a mapping from the ISA's register names to SymPLFIED register
        numbers (0..31),
    ``abi``
        an :class:`IsaAbi` describing the calling convention,
    ``translate(source, name=...)``
        assembly text -> SymPLFIED :class:`Program` (label-preserving), and
    ``emit(program)``
        SymPLFIED :class:`Program` -> assembly text such that
        ``translate(emit(p))`` reproduces ``p`` exactly.
    """

    name: str = ""
    description: str = ""
    registers: Mapping[str, int] = {}
    abi: IsaAbi = IsaAbi(stack_pointer="", return_address="", return_value="")

    def translate(self, source: str, name: str = "program") -> Program:
        raise NotImplementedError

    def emit_instruction(self, instruction: Instruction) -> str:
        raise NotImplementedError

    def emit(self, program: Program) -> str:
        """Render *program* as this ISA's assembly, labels preserved.

        The layout mirrors :meth:`Program.render`: labels are printed on
        their own line immediately before the instruction they address, and
        labels that point one past the last instruction trail at the end.
        """
        labels_at: Dict[int, List[str]] = {}
        for label, address in program.labels.items():
            labels_at.setdefault(address, []).append(label)
        lines = []
        for address, instruction in enumerate(program.code):
            for label in sorted(labels_at.get(address, ())):
                lines.append(f"{label}:")
            lines.append("        " + self.emit_instruction(instruction))
        for label in sorted(labels_at.get(len(program.code), ())):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def retarget(self, program: Program, name: Optional[str] = None) -> Program:
        """Round-trip *program* through this ISA's assembly.

        For the built-in frontends this is structurally the identity on the
        instruction sequence and label table (the 1:1 invariant above); what
        changes is the provenance — ``source_lines`` become this ISA's
        assembly, so disassembly listings show the target ISA's spelling.
        """
        return self.translate(self.emit(program),
                              name=name if name is not None else program.name)


#: Registered frontends, keyed by :attr:`IsaFrontend.name`.
ISA_FRONTENDS: Dict[str, IsaFrontend] = {}


def register_frontend(frontend: IsaFrontend, replace: bool = False) -> IsaFrontend:
    """Register *frontend* under its ``name``; returns it for chaining."""
    if not frontend.name:
        raise ValueError("frontend must have a non-empty name")
    if frontend.name in ISA_FRONTENDS and not replace:
        raise ValueError(f"ISA frontend {frontend.name!r} is already registered;"
                         " pass replace=True to override")
    ISA_FRONTENDS[frontend.name] = frontend
    return frontend


def _ensure_builtin_frontends() -> None:
    # The built-in frontends live in repro.frontend, which imports repro.isa;
    # importing it lazily here (rather than at module level) keeps the
    # package import graph acyclic while still guaranteeing that the
    # registry is populated before any lookup.
    import repro.frontend  # noqa: F401


def get_frontend(name: str) -> IsaFrontend:
    """Look up a registered frontend, with a one-line error on unknowns."""
    _ensure_builtin_frontends()
    try:
        return ISA_FRONTENDS[name]
    except KeyError:
        raise ValueError(f"unknown ISA frontend {name!r};"
                         f" registered: {sorted(ISA_FRONTENDS)}") from None


def available_isas() -> Tuple[str, ...]:
    """Names of all registered frontends, sorted."""
    _ensure_builtin_frontends()
    return tuple(sorted(ISA_FRONTENDS))


def retarget_program(program: Program, isa: str,
                     name: Optional[str] = None) -> Program:
    """Convenience wrapper: ``get_frontend(isa).retarget(program, name)``."""
    return get_frontend(isa).retarget(program, name=name)
