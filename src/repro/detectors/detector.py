"""Detector specifications (paper Section 5.3).

A detector is an executable check embedded in the program through the
``check`` instruction.  Its specification is written *outside* the program as

.. code-block:: text

    det(ID, Register or Memory location, Comparison op, Arithmetic expression)

for example ``det(4, $(5), ==, ($3) + *(1000))``: detector 4 checks that
register ``$5`` equals the sum of register ``$3`` and memory word 1000.  The
same detector may be invoked from multiple ``check`` sites.  If the check
fails, an exception is thrown and the program halts (the detection action).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..constraints import ComparisonOp, Location
from .expression import Expression, ExpressionError, parse_expression


class DetectorError(ValueError):
    """Raised for malformed detector specifications."""


@dataclass(frozen=True)
class Detector:
    """A single detector specification."""

    identifier: int
    target: Location
    op: ComparisonOp
    expression: Expression
    description: str = ""

    def render(self) -> str:
        target = f"$({self.target.index})" if self.target.kind == Location.REGISTER \
            else f"*({self.target.index})"
        return (f"det({self.identifier}, {target}, {self.op.value}, "
                f"{self.expression.render()})")

    def __str__(self) -> str:
        return self.render()


_TARGET_RE = re.compile(r"^\s*(\$|\*)\(?\s*(\d+)\s*\)?\s*$")


def parse_target(text: str) -> Location:
    """Parse a detector target: ``$(n)`` (register) or ``*(addr)`` (memory)."""
    match = _TARGET_RE.match(text)
    if match is None:
        raise DetectorError(f"bad detector target {text!r}")
    kind, index = match.group(1), int(match.group(2))
    return Location.register(index) if kind == "$" else Location.memory(index)


_DET_RE = re.compile(
    r"^\s*det\s*\(\s*(?P<id>\d+)\s*,\s*(?P<target>[^,]+)\s*,"
    r"\s*(?P<op>==|=/=|!=|>=|<=|>|<)\s*,\s*(?P<expr>.+)\)\s*$")


def parse_detector(text: str) -> Detector:
    """Parse the textual ``det(...)`` form into a :class:`Detector`."""
    match = _DET_RE.match(text.strip())
    if match is None:
        raise DetectorError(f"cannot parse detector {text!r}")
    try:
        expression = parse_expression(match.group("expr"))
    except ExpressionError as exc:
        raise DetectorError(str(exc)) from exc
    return Detector(
        identifier=int(match.group("id")),
        target=parse_target(match.group("target")),
        op=ComparisonOp.from_symbol(match.group("op")),
        expression=expression,
    )


class DetectorSet:
    """The collection of detectors available to a program's ``check`` sites."""

    def __init__(self, detectors: Iterable[Detector] = ()) -> None:
        self._by_id: Dict[int, Detector] = {}
        for detector in detectors:
            self.add(detector)

    def add(self, detector: Detector) -> None:
        if detector.identifier in self._by_id:
            raise DetectorError(f"duplicate detector id {detector.identifier}")
        self._by_id[detector.identifier] = detector

    def get(self, identifier: int) -> Optional[Detector]:
        return self._by_id.get(identifier)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Detector]:
        return iter(self._by_id.values())

    def __contains__(self, identifier: int) -> bool:
        return identifier in self._by_id

    def identifiers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._by_id))

    @classmethod
    def parse(cls, text: str) -> "DetectorSet":
        """Parse a newline-separated list of ``det(...)`` specifications."""
        detectors = []
        for line in text.splitlines():
            stripped = line.split("--")[0].strip()
            if stripped:
                detectors.append(parse_detector(stripped))
        return cls(detectors)

    def render(self) -> str:
        return "\n".join(det.render() for det in self)


#: A detector set with no detectors (used for unprotected programs).
EMPTY_DETECTORS = DetectorSet()
