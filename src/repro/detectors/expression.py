"""Arithmetic expressions used by error detectors (paper Section 5.3).

The detector grammar is::

    Expr ::= Expr + Expr | Expr - Expr | Expr * Expr | Expr / Expr
           | (c) | $(RegName) | *(memory address)

Expressions are represented as a small immutable AST and can be parsed from
the textual form used in the paper, e.g. ``($3) + *(1000)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..constraints import Location
from ..isa.values import ERR, Value
from ..errors.propagation import NonDeterministicOperation, symbolic_binary


class ExpressionError(ValueError):
    """Raised for malformed detector expressions."""


class Expression:
    """Base class of detector expression nodes."""

    def evaluate(self, reader: "StateReader") -> Value:
        raise NotImplementedError

    def locations(self) -> Set[Location]:
        """Every register/memory location the expression reads."""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


class StateReader:
    """Minimal read-only view of a machine state used to evaluate expressions.

    Decouples the detector model from the machine model so that the two can
    be tested independently (mirroring the paper's claim that detector
    equations are independent of the machine equations).
    """

    def read_register(self, number: int) -> Value:  # pragma: no cover - interface
        raise NotImplementedError

    def read_memory(self, address: int) -> Value:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Expression):
    value: int

    def evaluate(self, reader: StateReader) -> Value:
        return self.value

    def locations(self) -> Set[Location]:
        return set()

    def render(self) -> str:
        return f"({self.value})"


@dataclass(frozen=True)
class RegisterRef(Expression):
    number: int

    def evaluate(self, reader: StateReader) -> Value:
        return reader.read_register(self.number)

    def locations(self) -> Set[Location]:
        return {Location.register(self.number)}

    def render(self) -> str:
        return f"$({self.number})"


@dataclass(frozen=True)
class MemoryRef(Expression):
    address: int

    def evaluate(self, reader: StateReader) -> Value:
        return reader.read_memory(self.address)

    def locations(self) -> Set[Location]:
        return {Location.memory(self.address)}

    def render(self) -> str:
        return f"*({self.address})"


_OPERATOR_NAMES = {"+": "add", "-": "sub", "*": "mult", "/": "div"}


@dataclass(frozen=True)
class BinaryOp(Expression):
    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _OPERATOR_NAMES:
            raise ExpressionError(f"unknown operator {self.operator!r}")

    def evaluate(self, reader: StateReader) -> Value:
        left = self.left.evaluate(reader)
        right = self.right.evaluate(reader)
        try:
            return symbolic_binary(_OPERATOR_NAMES[self.operator], left, right)
        except NonDeterministicOperation:
            # Division by a symbolic value inside a detector expression: the
            # detector cannot know the result, so it evaluates to err.
            return ERR
        except ZeroDivisionError:
            # Detectors are assumed error-free; a division by zero in the
            # expression makes the comparison vacuously symbolic.
            return ERR

    def locations(self) -> Set[Location]:
        return self.left.locations() | self.right.locations()

    def render(self) -> str:
        return f"{self.left.render()} {self.operator} {self.right.render()}"


def single_location(expression: Expression) -> Optional[Location]:
    """If the expression is a bare register/memory reference, its location."""
    if isinstance(expression, RegisterRef):
        return Location.register(expression.number)
    if isinstance(expression, MemoryRef):
        return Location.memory(expression.address)
    return None


# ---------------------------------------------------------------------- parser

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<register>\$\(\s*\d+\s*\)|\$\d+)   |
        (?P<memory>\*\(\s*\d+\s*\))       |
        (?P<number>-?\d+)                 |
        (?P<operator>[+\-*/])             |
        (?P<lparen>\()                    |
        (?P<rparen>\))
    )
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise ExpressionError(f"cannot tokenize expression at {text[position:]!r}")
        position = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                tokens.append((kind, value.strip()))
                break
    return tokens


class _Parser:
    """Recursive-descent parser with standard precedence (* / over + -)."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def parse(self) -> Expression:
        expression = self.parse_sum()
        if self.position != len(self.tokens):
            raise ExpressionError(f"unexpected token {self.peek()!r}")
        return expression

    def parse_sum(self) -> Expression:
        left = self.parse_product()
        while self.peek() and self.peek()[0] == "operator" and self.peek()[1] in "+-":
            operator = self.advance()[1]
            right = self.parse_product()
            left = BinaryOp(operator, left, right)
        return left

    def parse_product(self) -> Expression:
        left = self.parse_atom()
        while self.peek() and self.peek()[0] == "operator" and self.peek()[1] in "*/":
            operator = self.advance()[1]
            right = self.parse_atom()
            left = BinaryOp(operator, left, right)
        return left

    def parse_atom(self) -> Expression:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        kind, text = token
        if kind == "register":
            self.advance()
            digits = re.sub(r"[^\d]", "", text)
            return RegisterRef(int(digits))
        if kind == "memory":
            self.advance()
            digits = re.sub(r"[^\d]", "", text)
            return MemoryRef(int(digits))
        if kind == "number":
            self.advance()
            return Constant(int(text))
        if kind == "lparen":
            self.advance()
            inner = self.parse_sum()
            closing = self.peek()
            if closing is None or closing[0] != "rparen":
                raise ExpressionError("missing closing parenthesis")
            self.advance()
            return inner
        raise ExpressionError(f"unexpected token {text!r}")


def parse_expression(text: str) -> Expression:
    """Parse the paper's textual expression format into an AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty expression")
    return _Parser(tokens).parse()
