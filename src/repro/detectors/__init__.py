"""Detector model: specification format, expressions and execution semantics."""

from .expression import (BinaryOp, Constant, Expression, ExpressionError,
                         MemoryRef, RegisterRef, StateReader, parse_expression,
                         single_location)
from .detector import (Detector, DetectorError, DetectorSet, EMPTY_DETECTORS,
                       parse_detector, parse_target)
from .runtime import DetectorOutcome, MachineStateReader, execute_detector, read_location

__all__ = [
    "BinaryOp", "Constant", "Expression", "ExpressionError", "MemoryRef",
    "RegisterRef", "StateReader", "parse_expression", "single_location",
    "Detector", "DetectorError", "DetectorSet", "EMPTY_DETECTORS",
    "parse_detector", "parse_target",
    "DetectorOutcome", "MachineStateReader", "execute_detector", "read_location",
]
