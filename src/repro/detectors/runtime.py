"""Execution semantics of detectors under symbolic state (paper Section 5.3).

Executing a detector compares the value held in its target location with the
value of its arithmetic expression.  With concrete operands the comparison is
deterministic; if either side involves ``err`` the execution forks into a
*pass* case and a *fail* case exactly like ordinary program comparisons, and
the constraints for the checked location are updated in the ConstraintMap.
The fail case corresponds to the detector firing: an exception is thrown and
the program is halted.

Detectors themselves are assumed error-free (paper assumption); their
expression evaluation therefore uses the ordinary propagation rules but never
crashes the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..constraints import ConstraintMap, Location
from ..errors.comparison import resolve_comparison
from ..isa.values import Value, is_err
from .detector import Detector
from .expression import StateReader, single_location


@dataclass(frozen=True)
class DetectorOutcome:
    """One feasible result of executing a detector.

    ``detected`` is True when the check failed (the detector fires and the
    program is stopped); ``constraints`` is the updated constraint map for
    the corresponding branch.
    """

    detected: bool
    constraints: ConstraintMap
    forked: bool = False


class MachineStateReader(StateReader):
    """Adapter exposing a machine state to detector expressions.

    Reads of undefined memory return 0 rather than crashing: detectors are
    assumed not to fail, and an undefined address in a detector expression is
    a specification bug rather than a program error.
    """

    def __init__(self, state) -> None:
        self._state = state

    def read_register(self, number: int) -> Value:
        return self._state.read_register(number)

    def read_memory(self, address: int) -> Value:
        if self._state.is_defined_address(address):
            return self._state.read_memory(address)
        return 0


def read_location(state, location: Location) -> Value:
    """Read the value of a register or memory location from a machine state."""
    if location.kind == Location.REGISTER:
        return state.read_register(location.index)
    if location.kind == Location.MEMORY:
        if state.is_defined_address(location.index):
            return state.read_memory(location.index)
        return 0
    return state.pc


def execute_detector(detector: Detector, state,
                     constraints: Optional[ConstraintMap] = None,
                     ) -> List[DetectorOutcome]:
    """Execute *detector* against *state*, returning every feasible outcome.

    The detector's check is of the form ``target <op> expression``; the check
    *passes* when the comparison holds and *fails* (detection) otherwise.
    """
    constraint_map = constraints if constraints is not None else state.constraints
    reader = MachineStateReader(state)
    target_value = read_location(state, detector.target)
    expression_value = detector.expression.evaluate(reader)

    expression_location = single_location(detector.expression)
    target_location = detector.target

    outcomes = resolve_comparison(
        constraint_map,
        detector.op,
        target_value,
        expression_value,
        left_location=target_location if is_err(target_value) else None,
        right_location=expression_location if is_err(expression_value) else None,
    )

    results: List[DetectorOutcome] = []
    for outcome in outcomes:
        results.append(DetectorOutcome(
            detected=not outcome.result,
            constraints=outcome.constraints,
            forked=outcome.forked,
        ))
    return results
