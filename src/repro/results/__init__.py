"""The results warehouse: columnar campaign storage, streaming ingestion
and cross-campaign reports (see :mod:`repro.results.store`)."""

from __future__ import annotations

from .aggregates import OutcomeAggregates, SolutionOutcome, classify_result
from .recording import (RecordingStrategy, StoredCampaignResult,
                        StoredResultsView)
from .report import format_parity_report, format_report
from .store import (CampaignRecord, MemoryResultStore, ResultStore,
                    SqliteResultStore)

__all__ = [
    "CampaignRecord",
    "MemoryResultStore",
    "OutcomeAggregates",
    "RecordingStrategy",
    "ResultStore",
    "SolutionOutcome",
    "SqliteResultStore",
    "StoredCampaignResult",
    "StoredResultsView",
    "classify_result",
    "format_parity_report",
    "format_report",
]
