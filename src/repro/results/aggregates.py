"""Incremental outcome aggregates for streaming campaign ingestion.

The paper evaluates its campaigns as aggregate outcome counts over large
injection sweeps (Tables 2-4), which is exactly what a coordinator needs to
keep when it stops retaining every :class:`~repro.core.campaign.
InjectionResult` in memory: :class:`OutcomeAggregates` folds each arriving
result into running counters — one :meth:`fold` per injection, O(solutions)
each — and reproduces every aggregate the in-memory
:class:`~repro.core.campaign.CampaignResult` derives by scanning its full
result list (``describe()`` counters, the outcome-kind summary of
:func:`~repro.analysis.report.campaign_outcome_summary`).

Solutions are classified once, at ingestion, into :class:`SolutionOutcome`
records; the result store persists the same records into its indexed
``outcomes`` table, so the store's SQL aggregates, a full-scan re-fold and
the coordinator's incremental counters must all agree (the conformance
suite asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.campaign import CampaignResult, InjectionResult
from ..core.outcomes import OutcomeKind, classify
from ..machine.state import state_contains_err


@dataclass(frozen=True)
class SolutionOutcome:
    """One solution's classification, as recorded in the warehouse."""

    kind: str
    detector_id: Optional[int] = None
    exception: Optional[str] = None
    #: The corruption survives in the final state (register/memory/PC err
    #: census) without having reached the output — a silent latent error.
    latent: bool = False


def classify_result(result: InjectionResult,
                    golden_output: Optional[Sequence] = None,
                    ) -> List[SolutionOutcome]:
    """Classify every solution of one injection experiment."""
    outcomes: List[SolutionOutcome] = []
    for solution in result.solutions:
        outcome = classify(solution.state, golden_output)
        latent = (bool(state_contains_err(solution.state))
                  and not solution.state.output_contains_err())
        outcomes.append(SolutionOutcome(kind=outcome.kind.value,
                                        detector_id=outcome.detector_id,
                                        exception=outcome.exception,
                                        latent=latent))
    return outcomes


def _zero_counts() -> Dict[str, int]:
    return {kind.value: 0 for kind in OutcomeKind}


@dataclass
class OutcomeAggregates:
    """Running aggregate of a campaign, maintained one injection at a time."""

    injections_run: int = 0
    injections_activated: int = 0
    injections_with_solutions: int = 0
    injections_completed: int = 0
    total_solutions: int = 0
    latent_solutions: int = 0
    outcome_counts: Dict[str, int] = field(default_factory=_zero_counts)

    # -------------------------------------------------------------- ingestion

    def fold(self, result: InjectionResult,
             outcomes: Sequence[SolutionOutcome]) -> None:
        """Fold one injection's result (and its classified solutions) in."""
        self.injections_run += 1
        if result.activated:
            self.injections_activated += 1
        if result.found_solutions:
            self.injections_with_solutions += 1
        if result.completed:
            self.injections_completed += 1
        self.total_solutions += len(result.solutions)
        for outcome in outcomes:
            self.outcome_counts[outcome.kind] = \
                self.outcome_counts.get(outcome.kind, 0) + 1
            if outcome.latent:
                self.latent_solutions += 1

    @classmethod
    def from_campaign_result(cls, campaign_result: CampaignResult,
                             golden_output: Optional[Sequence] = None,
                             ) -> "OutcomeAggregates":
        """Fold a full (in-memory or store-backed) campaign result."""
        aggregates = cls()
        for result in campaign_result.results:
            aggregates.fold(result, classify_result(result, golden_output))
        return aggregates

    # ---------------------------------------------------------------- queries

    @property
    def all_completed(self) -> bool:
        return self.injections_completed == self.injections_run

    @property
    def activation_rate(self) -> float:
        return (self.injections_activated / self.injections_run
                if self.injections_run else 0.0)

    @property
    def solution_coverage(self) -> float:
        """Fraction of injections with at least one undetected-error witness."""
        return (self.injections_with_solutions / self.injections_run
                if self.injections_run else 0.0)

    @property
    def latent_rate(self) -> float:
        """Latent (silent, census-only) solutions per reported solution."""
        return (self.latent_solutions / self.total_solutions
                if self.total_solutions else 0.0)

    def outcome_summary(self) -> Dict[str, int]:
        """Zero-filled per-kind counts, matching
        :func:`~repro.analysis.report.campaign_outcome_summary`."""
        summary = _zero_counts()
        summary.update(self.outcome_counts)
        return summary

    def describe(self) -> str:
        """The counter block of :meth:`CampaignResult.describe`."""
        return "\n".join([
            f"injections run             : {self.injections_run}",
            f"injections activated       : {self.injections_activated}",
            f"injections with solutions  : {self.injections_with_solutions}",
            f"total solutions            : {self.total_solutions}",
        ])

    # ------------------------------------------------------------ (de)serialise

    def as_dict(self) -> Dict[str, object]:
        return {
            "injections_run": self.injections_run,
            "injections_activated": self.injections_activated,
            "injections_with_solutions": self.injections_with_solutions,
            "injections_completed": self.injections_completed,
            "total_solutions": self.total_solutions,
            "latent_solutions": self.latent_solutions,
            "outcome_counts": {kind: count
                               for kind, count in self.outcome_counts.items()
                               if count},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OutcomeAggregates":
        counts = _zero_counts()
        counts.update(data.get("outcome_counts", {}))
        return cls(
            injections_run=int(data.get("injections_run", 0)),
            injections_activated=int(data.get("injections_activated", 0)),
            injections_with_solutions=int(
                data.get("injections_with_solutions", 0)),
            injections_completed=int(data.get("injections_completed", 0)),
            total_solutions=int(data.get("total_solutions", 0)),
            latent_solutions=int(data.get("latent_solutions", 0)),
            outcome_counts=counts,
        )
