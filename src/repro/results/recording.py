"""Streaming campaign ingestion into a :class:`~repro.results.store.ResultStore`.

:class:`RecordingStrategy` wraps any :class:`~repro.core.campaign.
ExecutionStrategy` (serial, pool, distributed, TCP, task-granularity,
checkpointing) and records the sweep into a results store.  Two modes:

* **streaming** (``retain=False``, the default): the wrapped backend runs
  with ``retain_results`` off, every arriving result is folded into
  incremental :class:`~repro.results.aggregates.OutcomeAggregates` and
  appended to the store via the result-sink hook, and the returned
  :class:`StoredCampaignResult` reads results lazily back out of the store
  — the coordinator never holds the sweep in memory, which is what unlocks
  sweeps far beyond the in-memory ceiling.
* **retained** (``retain=True``): the wrapped backend keeps its normal
  in-memory result list (required under ``--checkpoint``, whose journal
  zips pending and fresh results — and whose journal-resumed results never
  pass through the sink) and the store is populated from that list after
  the run.  Same warehouse rows, classic memory profile.

Seq assignment: results may arrive in completion order (pool and
distributed backends merge chunks as they finish) and — under task
granularity — as unpickled *copies* of the planned injections, so identity
maps do not work.  Rows are therefore keyed by submission index via
:meth:`~repro.errors.injector.Injection.label`; sweeps with duplicate
labels assign the duplicates' indices in arrival order (they are
interchangeable for every aggregate).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence

from ..core.campaign import (CampaignResult, ExecutionStrategy,
                             InjectionResult, ProgressCallback,
                             SymbolicCampaign)
from ..core.queries import SearchQuery
from ..errors.injector import Injection
from .aggregates import OutcomeAggregates, classify_result
from .store import ResultStore


class StoredResultsView(Sequence):
    """Lazy, submission-ordered view of one campaign's stored results.

    Quacks like the ``results`` list of an in-memory
    :class:`~repro.core.campaign.CampaignResult`: ``len``, indexing and
    iteration all work, but rows are unpickled from the store on demand and
    never cached — iterating twice reads the store twice.
    """

    def __init__(self, store: ResultStore, campaign_id: int) -> None:
        self.store = store
        self.campaign_id = campaign_id

    def __len__(self) -> int:
        return self.store.count(self.campaign_id)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self.store.get(self.campaign_id, index)

    def __iter__(self) -> Iterator[InjectionResult]:
        return self.store.iter_results(self.campaign_id)

    def __repr__(self) -> str:
        return (f"StoredResultsView(campaign_id={self.campaign_id}, "
                f"len={len(self)})")


class StoredCampaignResult(CampaignResult):
    """A campaign result whose results live in the warehouse, not in memory.

    Aggregate properties answer from the incrementally-folded
    :class:`OutcomeAggregates` in O(1); ``results`` is a lazy
    :class:`StoredResultsView`, so code that does scan it (witness
    printing, ``solutions()``) streams rows out of the store — and
    ``describe()`` output stays byte-identical to the in-memory result of
    the same sweep.
    """

    def __init__(self, query_description: str, store: ResultStore,
                 campaign_id: int, aggregates: OutcomeAggregates) -> None:
        super().__init__(query_description=query_description)
        self.store = store
        self.campaign_id = campaign_id
        self.aggregates = aggregates
        self.results = StoredResultsView(store, campaign_id)

    @property
    def injections_run(self) -> int:
        return self.aggregates.injections_run

    @property
    def injections_activated(self) -> int:
        return self.aggregates.injections_activated

    @property
    def injections_with_solutions(self) -> int:
        return self.aggregates.injections_with_solutions

    @property
    def total_solutions(self) -> int:
        return self.aggregates.total_solutions

    @property
    def all_completed(self) -> bool:
        return self.aggregates.all_completed


class RecordingStrategy(ExecutionStrategy):
    """Record a wrapped strategy's sweep into a results store."""

    name = "recording"

    def __init__(self, inner: ExecutionStrategy, store: ResultStore,
                 meta: Optional[Dict[str, object]] = None,
                 golden_output: Optional[Sequence] = None,
                 retain: bool = False) -> None:
        self.inner = inner
        self.store = store
        self.meta = dict(meta or {})
        self.golden_output = golden_output
        self.retain = retain
        self.aggregates = OutcomeAggregates()
        #: Campaign id of the last run (None before any run).
        self.campaign_id: Optional[int] = None

    def __getattr__(self, attribute):
        # Diagnostics (cache_statistics, requeued_tasks, skipped, ...) pass
        # through to the wrapped backend.
        return getattr(self.inner, attribute)

    def _sequence_map(self, injections: Sequence[Injection]
                      ) -> Dict[str, Deque[int]]:
        by_label: Dict[str, Deque[int]] = {}
        for seq, injection in enumerate(injections):
            by_label.setdefault(injection.label(), deque()).append(seq)
        return by_label

    def run(self, campaign: SymbolicCampaign,
            injections: Sequence[Injection], query: SearchQuery,
            progress: Optional[ProgressCallback] = None,
            ) -> List[InjectionResult]:
        injections = list(injections)
        self.aggregates = OutcomeAggregates()
        self.meta.setdefault("backend", self.inner.name)
        self.meta.setdefault("query", query.description)
        self.campaign_id = self.store.begin_campaign(self.meta)
        started = time.monotonic()

        previous_sink = self.inner.result_sink
        if self.retain:
            # Classic memory profile: ingest from the returned list (the
            # only complete view under --checkpoint, where journal-resumed
            # results never pass through the sink).
            if self.result_sink is not None:
                self.inner.result_sink = self.result_sink
            try:
                results = self.inner.run(campaign, injections, query,
                                         progress=progress)
            finally:
                self.inner.result_sink = previous_sink
            for seq, result in enumerate(results):
                outcomes = classify_result(result, self.golden_output)
                self.aggregates.fold(result, outcomes)
                self.store.append(self.campaign_id, seq, result, outcomes)
        else:
            seq_map = self._sequence_map(injections)
            campaign_id = self.campaign_id

            def ingest(injection: Injection, result: InjectionResult) -> None:
                outcomes = classify_result(result, self.golden_output)
                self.aggregates.fold(result, outcomes)
                seq = seq_map[injection.label()].popleft()
                self.store.append(campaign_id, seq, result, outcomes)
                if previous_sink is not None:
                    previous_sink(injection, result)
                self.emit_result(injection, result)

            self.inner.result_sink = ingest
            self.inner.retain_results = False
            try:
                results = self.inner.run(campaign, injections, query,
                                         progress=progress)
            finally:
                self.inner.result_sink = previous_sink

        self.store.finish_campaign(self.campaign_id,
                                   time.monotonic() - started)
        return results

    def make_campaign_result(self, query: SearchQuery,
                             results: List[InjectionResult]) -> CampaignResult:
        if self.retain:
            return super().make_campaign_result(query, results)
        assert self.campaign_id is not None, "make_campaign_result before run"
        return StoredCampaignResult(query_description=query.description,
                                    store=self.store,
                                    campaign_id=self.campaign_id,
                                    aggregates=self.aggregates)
