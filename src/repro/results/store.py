"""The results warehouse: columnar campaign storage with streaming ingestion.

Campaign output used to live only in in-memory
:class:`~repro.core.campaign.CampaignResult` lists merged at the
coordinator, which caps sweeps far below the paper's "millions of
injections" scale.  A :class:`ResultStore` is the durable replacement: the
coordinator appends each :class:`~repro.core.campaign.InjectionResult` as
it arrives (see :class:`~repro.results.recording.RecordingStrategy`),
inserts are batched, and the columnar schema — campaign metadata, one
``injections`` row per experiment, one ``outcomes`` row per classified
solution with an index on ``(campaign_id, kind)`` — answers the
cross-campaign queries of ``repro report`` without unpickling a single
result blob.

Two backends implement the same contract (the conformance suite in
``tests/test_result_store.py`` is its executable form, in the style of the
broker suite):

* :class:`SqliteResultStore` — the production path: one sqlite file holds
  any number of campaigns; WAL where the filesystem supports it; multiple
  coordinator processes may append concurrently (sqlite serialises the
  writers).  A ``sqlite -> parquet`` exporter would slot in as a third
  backend behind the same contract.
* :class:`MemoryResultStore` — the in-process backend for tests and
  ephemeral runs, with the same batch/flush visibility semantics.

Durability contract: rows become visible to readers (and, for sqlite,
survive a crash) exactly when they are flushed — either explicitly, when a
batch fills, or at :meth:`~ResultStore.finish_campaign`.  A crash mid-batch
loses only the unflushed tail; reopening the store finds every flushed row
and a campaign row still marked unfinished.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..core.campaign import InjectionResult
from .aggregates import OutcomeAggregates, SolutionOutcome

#: Metadata keys promoted to their own (queryable) campaign columns.
_META_COLUMNS = ("workload", "program", "query", "fault_model", "backend")


@dataclass(frozen=True)
class CampaignRecord:
    """One campaign's row in the warehouse."""

    campaign_id: int
    created_at: float
    meta: Dict[str, object] = field(default_factory=dict)
    elapsed_seconds: Optional[float] = None
    finished: bool = False

    def describe(self) -> str:
        bits = [f"campaign {self.campaign_id}"]
        for key in _META_COLUMNS:
            value = self.meta.get(key)
            if value not in (None, ""):
                bits.append(f"{key}={value}")
        if not self.finished:
            bits.append("(unfinished)")
        return " ".join(bits)


@dataclass(frozen=True)
class _InjectionRow:
    """The columnar projection of one injection result (plus its pickle)."""

    seq: int
    label: str
    model: Optional[str]
    breakpoint_pc: int
    target: str
    activated: bool
    completed: bool
    solutions: int
    latent: int
    result: InjectionResult


def _project(seq: int, result: InjectionResult,
             outcomes: Sequence[SolutionOutcome]) -> _InjectionRow:
    injection = result.injection
    return _InjectionRow(
        seq=seq,
        label=injection.label(),
        model=getattr(injection, "model", None),
        breakpoint_pc=injection.breakpoint_pc,
        target=repr(injection.target),
        activated=result.activated,
        completed=result.completed,
        solutions=len(result.solutions),
        latent=sum(1 for outcome in outcomes if outcome.latent),
        result=result,
    )


class ResultStore:
    """Contract every results-warehouse backend implements.

    Writers: :meth:`begin_campaign` -> many :meth:`append` -> optional
    :meth:`flush` -> :meth:`finish_campaign`.  Appends buffer into batches
    of *batch_size* rows; an unflushed row is invisible to every reader.

    Readers: :meth:`campaigns`, :meth:`count`, :meth:`get`,
    :meth:`iter_results` (submission order, streaming), and the columnar
    aggregate queries :meth:`aggregates` / :meth:`outcome_distribution`
    which must equal a full-scan re-fold of the stored results.
    """

    def begin_campaign(self, meta: Dict[str, object]) -> int:
        """Register a campaign; the returned id keys every later call.

        The campaign row is durable immediately (not batched), so a crashed
        run is discoverable in the warehouse."""
        raise NotImplementedError

    def append(self, campaign_id: int, seq: int, result: InjectionResult,
               outcomes: Sequence[SolutionOutcome]) -> None:
        """Buffer one result at submission index *seq* (auto-flush on a
        full batch)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make every buffered row visible (and, if durable, durable)."""
        raise NotImplementedError

    def finish_campaign(self, campaign_id: int,
                        elapsed_seconds: float) -> None:
        """Flush and mark the campaign complete."""
        raise NotImplementedError

    def campaigns(self) -> List[CampaignRecord]:
        raise NotImplementedError

    def campaign(self, campaign_id: int) -> CampaignRecord:
        for record in self.campaigns():
            if record.campaign_id == campaign_id:
                return record
        raise KeyError(f"no campaign {campaign_id} in the results store")

    def count(self, campaign_id: int) -> int:
        raise NotImplementedError

    def get(self, campaign_id: int, seq: int) -> InjectionResult:
        raise NotImplementedError

    def iter_results(self, campaign_id: int) -> Iterator[InjectionResult]:
        """Stream results in submission order without materialising them."""
        raise NotImplementedError

    def aggregates(self, campaign_id: int) -> OutcomeAggregates:
        """Aggregates recomputed from the columnar data (no unpickling)."""
        raise NotImplementedError

    def outcome_distribution(self, campaign_id: int) -> Dict[str, int]:
        """Per-outcome-kind solution counts (indexed query)."""
        raise NotImplementedError

    def outcome_kinds_by_point(self, campaign_id: int
                               ) -> Dict[Tuple[int, str],
                                         Tuple[FrozenSet[str], bool]]:
        """Outcome kinds per injection point, for the parity report.

        Maps ``(breakpoint_pc, repr(target))`` to ``(kinds, completed)``:
        the set of outcome kinds any *activated* injection at that point
        recorded, and whether every search at the point ran to completion
        (an incomplete search may hide outcomes — the parity report's
        hang rule keys off this).  Multiple injections can share a point
        (e.g. one bit-flip campaign row per bit); their kinds union.
        Columnar only — joins ``injections`` with ``outcomes``, never
        unpickles a result blob.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# --------------------------------------------------------------------- sqlite

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at REAL NOT NULL,
    workload TEXT, program TEXT, query TEXT, fault_model TEXT, backend TEXT,
    meta TEXT NOT NULL,
    elapsed_seconds REAL,
    finished INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS injections (
    campaign_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    label TEXT NOT NULL,
    model TEXT,
    breakpoint_pc INTEGER NOT NULL,
    target TEXT NOT NULL,
    activated INTEGER NOT NULL,
    completed INTEGER NOT NULL,
    solutions INTEGER NOT NULL,
    latent INTEGER NOT NULL,
    result BLOB NOT NULL,
    PRIMARY KEY (campaign_id, seq)
);
CREATE TABLE IF NOT EXISTS outcomes (
    campaign_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    solution_index INTEGER NOT NULL,
    kind TEXT NOT NULL,
    detector_id INTEGER,
    exception TEXT,
    PRIMARY KEY (campaign_id, seq, solution_index)
);
CREATE INDEX IF NOT EXISTS idx_outcomes_kind ON outcomes (campaign_id, kind);
CREATE INDEX IF NOT EXISTS idx_injections_model
    ON injections (campaign_id, model);
"""


class SqliteResultStore(ResultStore):
    """The sqlite-backed warehouse (see module docstring)."""

    def __init__(self, path: str, batch_size: int = 256,
                 busy_timeout_seconds: float = 30.0) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.path = path
        self.batch_size = batch_size
        self._connection = sqlite3.connect(path, timeout=busy_timeout_seconds)
        try:
            self._connection.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:  # pragma: no cover - filesystem-specific
            pass  # e.g. network filesystems; the rollback journal still works
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        self._injection_rows: List[Tuple] = []
        self._outcome_rows: List[Tuple] = []

    # -------------------------------------------------------------- ingestion

    def begin_campaign(self, meta: Dict[str, object]) -> int:
        columns = [meta.get(key) for key in _META_COLUMNS]
        cursor = self._connection.execute(
            "INSERT INTO campaigns (created_at, workload, program, query, "
            "fault_model, backend, meta) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (time.time(), *columns, json.dumps(meta, default=str)))
        self._connection.commit()
        return int(cursor.lastrowid)

    def append(self, campaign_id: int, seq: int, result: InjectionResult,
               outcomes: Sequence[SolutionOutcome]) -> None:
        row = _project(seq, result, outcomes)
        self._injection_rows.append(
            (campaign_id, row.seq, row.label, row.model, row.breakpoint_pc,
             row.target, int(row.activated), int(row.completed),
             row.solutions, row.latent,
             pickle.dumps(result, protocol=4)))
        for index, outcome in enumerate(outcomes):
            self._outcome_rows.append(
                (campaign_id, seq, index, outcome.kind, outcome.detector_id,
                 outcome.exception))
        if len(self._injection_rows) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._injection_rows and not self._outcome_rows:
            return
        rows = len(self._injection_rows)
        with _obs.get().span("store.flush", rows=rows):
            self._connection.executemany(
                "INSERT OR REPLACE INTO injections (campaign_id, seq, label, "
                "model, breakpoint_pc, target, activated, completed, "
                "solutions, latent, result) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._injection_rows)
            self._connection.executemany(
                "INSERT OR REPLACE INTO outcomes (campaign_id, seq, "
                "solution_index, kind, detector_id, exception) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                self._outcome_rows)
            self._connection.commit()
        hub = _obs.get()
        if hub.enabled:
            hub.count("store.rows", rows)
        self._injection_rows = []
        self._outcome_rows = []

    def finish_campaign(self, campaign_id: int,
                        elapsed_seconds: float) -> None:
        self.flush()
        self._connection.execute(
            "UPDATE campaigns SET elapsed_seconds = ?, finished = 1 "
            "WHERE campaign_id = ?", (elapsed_seconds, campaign_id))
        self._connection.commit()

    # ---------------------------------------------------------------- queries

    def campaigns(self) -> List[CampaignRecord]:
        rows = self._connection.execute(
            "SELECT campaign_id, created_at, meta, elapsed_seconds, finished "
            "FROM campaigns ORDER BY campaign_id").fetchall()
        return [CampaignRecord(campaign_id=int(row[0]), created_at=row[1],
                               meta=json.loads(row[2]),
                               elapsed_seconds=row[3],
                               finished=bool(row[4]))
                for row in rows]

    def count(self, campaign_id: int) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM injections WHERE campaign_id = ?",
            (campaign_id,)).fetchone()
        return int(row[0])

    def get(self, campaign_id: int, seq: int) -> InjectionResult:
        row = self._connection.execute(
            "SELECT result FROM injections WHERE campaign_id = ? AND seq = ?",
            (campaign_id, seq)).fetchone()
        if row is None:
            raise IndexError(
                f"campaign {campaign_id} has no result at seq {seq}")
        return pickle.loads(row[0])

    def iter_results(self, campaign_id: int) -> Iterator[InjectionResult]:
        cursor = self._connection.execute(
            "SELECT result FROM injections WHERE campaign_id = ? "
            "ORDER BY seq", (campaign_id,))
        while True:
            rows = cursor.fetchmany(64)
            if not rows:
                return
            for row in rows:
                yield pickle.loads(row[0])

    def aggregates(self, campaign_id: int) -> OutcomeAggregates:
        row = self._connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(activated), 0), "
            "COALESCE(SUM(solutions > 0), 0), COALESCE(SUM(completed), 0), "
            "COALESCE(SUM(solutions), 0), COALESCE(SUM(latent), 0) "
            "FROM injections WHERE campaign_id = ?", (campaign_id,)).fetchone()
        aggregates = OutcomeAggregates(
            injections_run=int(row[0]),
            injections_activated=int(row[1]),
            injections_with_solutions=int(row[2]),
            injections_completed=int(row[3]),
            total_solutions=int(row[4]),
            latent_solutions=int(row[5]))
        aggregates.outcome_counts.update(self.outcome_distribution(campaign_id))
        return aggregates

    def outcome_distribution(self, campaign_id: int) -> Dict[str, int]:
        rows = self._connection.execute(
            "SELECT kind, COUNT(*) FROM outcomes WHERE campaign_id = ? "
            "GROUP BY kind", (campaign_id,)).fetchall()
        return {row[0]: int(row[1]) for row in rows}

    def outcome_kinds_by_point(self, campaign_id: int
                               ) -> Dict[Tuple[int, str],
                                         Tuple[FrozenSet[str], bool]]:
        kinds: Dict[Tuple[int, str], set] = {}
        complete: Dict[Tuple[int, str], bool] = {}
        rows = self._connection.execute(
            "SELECT i.breakpoint_pc, i.target, i.completed, o.kind "
            "FROM injections i LEFT JOIN outcomes o "
            "ON o.campaign_id = i.campaign_id AND o.seq = i.seq "
            "WHERE i.campaign_id = ? AND i.activated = 1",
            (campaign_id,)).fetchall()
        for breakpoint_pc, target, completed, kind in rows:
            point = (int(breakpoint_pc), target)
            bucket = kinds.setdefault(point, set())
            if kind is not None:
                bucket.add(kind)
            complete[point] = complete.get(point, True) and bool(completed)
        return {point: (frozenset(bucket), complete[point])
                for point, bucket in kinds.items()}

    def close(self) -> None:
        self.flush()
        self._connection.close()


# --------------------------------------------------------------------- memory

class MemoryResultStore(ResultStore):
    """In-process warehouse with the same batch/flush visibility semantics.

    The backend for tests and ephemeral runs: rows live in dictionaries
    (so it *does* retain the sweep — the streaming-RSS win belongs to the
    sqlite backend), buffered appends become visible only on flush, and a
    lock makes concurrent writers safe within one process.
    """

    def __init__(self, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._lock = threading.RLock()
        self._next_campaign_id = 1
        self._campaigns: Dict[int, CampaignRecord] = {}
        self._rows: Dict[int, Dict[int, _InjectionRow]] = {}
        self._outcomes: Dict[int, Dict[int, List[SolutionOutcome]]] = {}
        self._buffer: List[Tuple[int, _InjectionRow,
                                 List[SolutionOutcome]]] = []

    def begin_campaign(self, meta: Dict[str, object]) -> int:
        with self._lock:
            campaign_id = self._next_campaign_id
            self._next_campaign_id += 1
            self._campaigns[campaign_id] = CampaignRecord(
                campaign_id=campaign_id, created_at=time.time(),
                meta=dict(meta))
            self._rows[campaign_id] = {}
            self._outcomes[campaign_id] = {}
            return campaign_id

    def append(self, campaign_id: int, seq: int, result: InjectionResult,
               outcomes: Sequence[SolutionOutcome]) -> None:
        with self._lock:
            self._buffer.append((campaign_id, _project(seq, result, outcomes),
                                 list(outcomes)))
            if len(self._buffer) >= self.batch_size:
                self.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._buffer:
                return
            rows = len(self._buffer)
            with _obs.get().span("store.flush", rows=rows):
                for campaign_id, row, outcomes in self._buffer:
                    self._rows[campaign_id][row.seq] = row
                    self._outcomes[campaign_id][row.seq] = outcomes
                self._buffer = []
            hub = _obs.get()
            if hub.enabled:
                hub.count("store.rows", rows)

    def finish_campaign(self, campaign_id: int,
                        elapsed_seconds: float) -> None:
        with self._lock:
            self.flush()
            record = self._campaigns[campaign_id]
            self._campaigns[campaign_id] = CampaignRecord(
                campaign_id=record.campaign_id, created_at=record.created_at,
                meta=record.meta, elapsed_seconds=elapsed_seconds,
                finished=True)

    def campaigns(self) -> List[CampaignRecord]:
        with self._lock:
            return [self._campaigns[campaign_id]
                    for campaign_id in sorted(self._campaigns)]

    def count(self, campaign_id: int) -> int:
        with self._lock:
            return len(self._rows.get(campaign_id, {}))

    def get(self, campaign_id: int, seq: int) -> InjectionResult:
        with self._lock:
            try:
                return self._rows[campaign_id][seq].result
            except KeyError:
                raise IndexError(f"campaign {campaign_id} has no result at "
                                 f"seq {seq}") from None

    def iter_results(self, campaign_id: int) -> Iterator[InjectionResult]:
        with self._lock:
            rows = self._rows.get(campaign_id, {})
            ordered = [rows[seq] for seq in sorted(rows)]
        for row in ordered:
            yield row.result

    def aggregates(self, campaign_id: int) -> OutcomeAggregates:
        with self._lock:
            rows = list(self._rows.get(campaign_id, {}).values())
            aggregates = OutcomeAggregates(
                injections_run=len(rows),
                injections_activated=sum(1 for r in rows if r.activated),
                injections_with_solutions=sum(1 for r in rows
                                              if r.solutions > 0),
                injections_completed=sum(1 for r in rows if r.completed),
                total_solutions=sum(r.solutions for r in rows),
                latent_solutions=sum(r.latent for r in rows))
            aggregates.outcome_counts.update(
                self.outcome_distribution(campaign_id))
            return aggregates

    def outcome_distribution(self, campaign_id: int) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for outcomes in self._outcomes.get(campaign_id, {}).values():
                for outcome in outcomes:
                    counts[outcome.kind] = counts.get(outcome.kind, 0) + 1
            return counts

    def outcome_kinds_by_point(self, campaign_id: int
                               ) -> Dict[Tuple[int, str],
                                         Tuple[FrozenSet[str], bool]]:
        with self._lock:
            kinds: Dict[Tuple[int, str], set] = {}
            complete: Dict[Tuple[int, str], bool] = {}
            outcomes = self._outcomes.get(campaign_id, {})
            for seq, row in self._rows.get(campaign_id, {}).items():
                if not row.activated:
                    continue
                point = (row.breakpoint_pc, row.target)
                bucket = kinds.setdefault(point, set())
                bucket.update(outcome.kind
                              for outcome in outcomes.get(seq, ()))
                complete[point] = complete.get(point, True) and row.completed
            return {point: (frozenset(bucket), complete[point])
                    for point, bucket in kinds.items()}

    def close(self) -> None:
        self.flush()
