"""Unified workload driver (``repro bench`` / ``benchmarks/run_workloads.py``).

One standardized entry point over the factorial/tcas/replace campaign
matrix, in the mould of the Continuous-Memory-Profiler exemplar's
``run_workload.sh``:

* **trajectory mode** (default): run a pinned matrix of campaigns — each
  entry in a fresh subprocess so wall clock and peak RSS are per-entry —
  and emit a schema-versioned ``BENCH_<sha>.json`` trajectory point
  (wall-clock, injections/sec, peak RSS, cache hit rates, outcome
  aggregates).  CI commits one point per merge to
  ``benchmarks/data/trajectory/`` and ``benchmarks/check_bench_trajectory.
  py`` gates regressions against the last committed point.
* **equivalence mode** (``--expect-identical``): run the same campaign
  through several backends (pool, distributed, TCP broker variants,
  ``--results`` store-backed view, worker-kill recovery) and diff the
  normalized ``repro analyze`` outputs against the serial baseline — the
  single entry point that replaced the ad-hoc diff pipelines in the
  ``smoke-fault-matrix`` and ``smoke-network`` CI jobs.

The matrix entries pin every input (sample seed, caps, backend) so two
runs of the same tree measure the same work; only machine speed moves the
numbers.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

#: Bump when the BENCH json layout changes incompatibly.
SCHEMA_VERSION = 1

_NORMALIZE_DROP_CONTAINS = ("elapsed seconds",)
_NORMALIZE_DROP_PREFIXES = ("workers", "backend")


def _entry(entry_id: str, workload: str, fault_model: Optional[str],
           query: str, **options) -> Dict[str, object]:
    entry: Dict[str, object] = {"id": entry_id, "workload": workload,
                                "fault_model": fault_model, "query": query,
                                "backend": "serial"}
    entry.update(options)
    return entry


def _interp_entry(entry_id: str, workload: str, engine: str, dispatch: str,
                  repeats: int) -> Dict[str, object]:
    """An interpreter-throughput entry: repeated golden runs, no campaign.

    *engine* is ``concrete`` (``run_concrete`` loop) or ``symbolic``
    (``Executor.step`` loop); *dispatch* is ``decoded`` (the pre-decoded
    dispatch tables) or ``legacy`` (the original string-dispatch path).
    The decoded/legacy pairs make the hot-path speedup a first-class
    trajectory metric instead of a one-off measurement.
    """
    return {"id": entry_id, "mode": "interp", "workload": workload,
            "engine": engine, "dispatch": dispatch, "repeats": repeats}


#: Pinned campaign matrices.  ``ci`` is the per-PR trajectory matrix —
#: small enough for a CI job, wide enough to cover every workload, every
#: fault model, and the streaming ``--results`` path (whose 1x/10x pair is
#: the measured peak-RSS-stays-flat check).
MATRICES: Dict[str, List[Dict[str, object]]] = {
    "smoke": [
        _entry("factorial-register-errout-12", "factorial", "register",
               "err-output", max_injections=12),
    ],
    "ci": [
        _entry("factorial-register-errout", "factorial", "register",
               "err-output", sample=6, seed=7, max_states=5000),
        _entry("factorial-control-errout", "factorial", "control",
               "err-output", sample=6, seed=7, max_states=5000),
        _entry("factorial-operand-errout", "factorial", "operand",
               "err-output", sample=6, seed=7, max_states=5000),
        _entry("tcas-memory-latent", "tcas", "memory", "latent-err",
               sample=6, seed=7, max_states=5000),
        _entry("replace-register-errout", "replace", "register",
               "err-output", sample=4, seed=7, max_states=4000),
        _entry("replace-results-stream-1x", "replace", "register",
               "err-output", max_injections=4, max_states=2500,
               results=True),
        _entry("replace-results-stream-10x", "replace", "register",
               "err-output", max_injections=40, max_states=2500,
               results=True),
        _interp_entry("interp-concrete-decoded", "replace", "concrete",
                      "decoded", repeats=40),
        _interp_entry("interp-concrete-legacy", "replace", "concrete",
                      "legacy", repeats=40),
        _interp_entry("interp-symbolic-decoded", "replace", "symbolic",
                      "decoded", repeats=4),
        _interp_entry("interp-symbolic-legacy", "replace", "symbolic",
                      "legacy", repeats=4),
    ],
}
MATRICES["full"] = MATRICES["ci"] + [
    _entry("factorial-register-errout-pool", "factorial", "register",
           "err-output", sample=6, seed=7, max_states=5000,
           backend="pool", workers=2),
    _entry("tcas-memory-latent-pool", "tcas", "memory", "latent-err",
           sample=6, seed=7, max_states=5000, backend="pool", workers=2),
]


def resolve_sha(explicit: Optional[str] = None) -> str:
    """The commit identity stamped into the BENCH filename and payload."""
    if explicit:
        return explicit[:12]
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env[:12]
    try:
        out = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "local"


# ----------------------------------------------------------- entry execution

def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def execute_interp_entry(entry: Dict[str, object]) -> Dict[str, object]:
    """Run one interpreter-throughput entry and return its record.

    Times *repeats* golden runs of the workload — one warm-up run first, so
    one-time decode/specialisation cost stays out of the measured window —
    and reports instructions/second.  ``engine == "concrete"`` drives the
    ``run_concrete``/``run_concrete_legacy`` loop; ``engine == "symbolic"``
    steps an :class:`~repro.machine.executor.Executor` (with
    ``legacy_dispatch`` selected by the entry) through the fault-free path.
    """
    from ..machine.executor import (ExecutionConfig, Executor, run_concrete,
                                    run_concrete_legacy)
    from ..programs import load_workload

    workload = load_workload(str(entry["workload"]))
    engine = str(entry.get("engine", "concrete"))
    dispatch = str(entry.get("dispatch", "decoded"))
    repeats = int(entry.get("repeats") or 10)
    max_steps = workload.recommended_max_steps

    if engine == "concrete":
        run_fn = run_concrete_legacy if dispatch == "legacy" else run_concrete

        def run_once() -> int:
            state = workload.initial_state()
            run_fn(workload.program, state, workload.detectors, max_steps)
            return state.steps
    elif engine == "symbolic":
        executor = Executor(
            workload.program, workload.detectors,
            ExecutionConfig(max_steps=max_steps,
                            legacy_dispatch=(dispatch == "legacy")))

        def run_once() -> int:
            state = workload.initial_state()
            while state.is_running:
                successors = executor.step(state)
                if len(successors) != 1:
                    raise RuntimeError(
                        f"golden run forked into {len(successors)} states")
                state = successors[0]
            return state.steps
    else:
        raise ValueError(f"interp entry engine must be concrete or "
                         f"symbolic, got {engine!r}")

    run_once()  # warm-up: decode + superblock compile before the clock
    instructions = 0
    started = time.perf_counter()
    for _ in range(repeats):
        instructions += run_once()
    wall_clock = time.perf_counter() - started
    return {
        "id": entry["id"],
        "mode": "interp",
        "workload": entry["workload"],
        "engine": engine,
        "dispatch": dispatch,
        "repeats": repeats,
        "instructions": instructions,
        "wall_clock_seconds": wall_clock,
        "instructions_per_second": (instructions / wall_clock
                                    if wall_clock > 0 else 0.0),
        "max_rss_kb": _peak_rss_kb(),
    }


def execute_entry(entry: Dict[str, object]) -> Dict[str, object]:
    """Run one matrix entry in-process and return its benchmark record.

    Meant to run inside a fresh subprocess (see :func:`run_entry`) so that
    ``ru_maxrss`` — a high-water mark — measures this entry alone.
    """
    if entry.get("mode") == "interp":
        return execute_interp_entry(entry)
    from ..parallel.spec import CacheSpec, QuerySpec
    from ..programs import load_workload

    workload = load_workload(str(entry["workload"]),
                             isa=entry.get("isa") or None)
    campaign, query = workload.campaign(
        kind=str(entry["query"]),
        fault_model=entry.get("fault_model"),
        max_states_per_injection=int(entry.get("max_states") or 20_000))
    golden = workload.golden_output()
    injections = campaign.plan_injections(
        sample=entry.get("sample"), seed=entry.get("seed"))
    if entry.get("max_injections"):
        injections = injections[:int(entry["max_injections"])]

    backend = str(entry.get("backend", "serial"))
    workers = int(entry.get("workers", 1))
    if backend == "serial":
        from ..core.campaign import SerialExecutionStrategy
        cache = CacheSpec().build()
        strategy = SerialExecutionStrategy(result_cache=cache)
        cache_statistics = lambda: cache.statistics  # noqa: E731
    elif backend == "pool":
        from ..parallel import ParallelConfig, ParallelExecutionStrategy
        printed = [item for item in golden if isinstance(item, int)]
        query_spec = QuerySpec.predefined(
            str(entry["query"]), golden_output=golden,
            expected_value=printed[-1] if printed else None)
        inner = ParallelExecutionStrategy(
            query_spec, ParallelConfig(workers=workers))
        strategy = inner
        cache_statistics = lambda: inner.cache_statistics  # noqa: E731
    else:
        raise ValueError(f"bench entry backend must be serial or pool, "
                         f"got {backend!r}")

    store = None
    store_path = None
    if entry.get("results"):
        from .recording import RecordingStrategy
        from .store import SqliteResultStore
        store_path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"),
                                  "results.sqlite")
        store = SqliteResultStore(store_path)
        strategy = RecordingStrategy(
            strategy, store, golden_output=golden,
            meta={"workload": workload.name, "bench_entry": entry["id"]})

    started = time.perf_counter()
    result = campaign.run(query, injections=injections, strategy=strategy)
    wall_clock = time.perf_counter() - started

    if store is not None:
        aggregates = strategy.aggregates
    else:
        from .aggregates import OutcomeAggregates
        aggregates = OutcomeAggregates.from_campaign_result(result, golden)
    stats = cache_statistics()
    record: Dict[str, object] = {
        "id": entry["id"],
        "workload": entry["workload"],
        "fault_model": entry.get("fault_model"),
        "query": entry["query"],
        "backend": backend,
        "workers": workers,
        "results_store": bool(entry.get("results")),
        "injections": len(injections),
        "wall_clock_seconds": wall_clock,
        "injections_per_second": (len(injections) / wall_clock
                                  if wall_clock > 0 else 0.0),
        "max_rss_kb": _peak_rss_kb(),
        "cache": (None if stats is None else {
            "lookups": stats.lookups,
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
        }),
        "aggregates": aggregates.as_dict(),
    }
    if store is not None:
        store.close()
    return record


def run_entry(entry: Dict[str, object],
              timeout: float = 900.0) -> Dict[str, object]:
    """Run one entry in a fresh subprocess and return its record."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.results.bench",
         "--run-entry", json.dumps(entry)],
        capture_output=True, text=True, timeout=timeout)
    if completed.returncode != 0:
        raise RuntimeError(
            f"bench entry {entry['id']} failed "
            f"(exit {completed.returncode}):\n{completed.stderr}")
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_matrix(matrix: str, sha: str,
               only: Optional[Sequence[str]] = None,
               timeout: float = 900.0) -> Dict[str, object]:
    """Run a pinned matrix, one subprocess per entry; return the BENCH doc."""
    entries = MATRICES[matrix]
    if only:
        unknown = set(only) - {str(entry["id"]) for entry in entries}
        if unknown:
            raise SystemExit(f"unknown bench entry ids: {sorted(unknown)}")
        entries = [entry for entry in entries if entry["id"] in set(only)]
    records = []
    for entry in entries:
        print(f"bench: {entry['id']} ...", flush=True)
        record = run_entry(entry, timeout=timeout)
        if record.get("mode") == "interp":
            print(f"bench: {entry['id']}: "
                  f"{record['instructions']} instructions in "
                  f"{record['wall_clock_seconds']:.2f}s "
                  f"({record['instructions_per_second']:,.0f} instr/s, "
                  f"{record['engine']}/{record['dispatch']})", flush=True)
        else:
            print(f"bench: {entry['id']}: "
                  f"{record.get('injections')} injections in "
                  f"{record['wall_clock_seconds']:.2f}s "
                  f"({record.get('injections_per_second', 0.0):.2f}/s, "
                  f"rss {record.get('max_rss_kb')} kB)", flush=True)
        records.append(record)
    return {
        "schema_version": SCHEMA_VERSION,
        "sha": sha,
        "matrix": matrix,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "entries": records,
    }


# ------------------------------------------------------- equivalence checks

def normalize_output(text: str) -> str:
    """Strip timing/backend-identity lines — the same normalization the CI
    smoke jobs used (``grep -v "elapsed seconds" -e "^workers" -e
    "^backend"``); everything left must be byte-identical across backends."""
    kept = []
    for line in text.splitlines():
        if any(token in line for token in _NORMALIZE_DROP_CONTAINS):
            continue
        if line.startswith(_NORMALIZE_DROP_PREFIXES):
            continue
        kept.append(line)
    return "\n".join(kept) + "\n"


class _TcpBroker:
    """A ``repro broker`` subprocess bound to a free port."""

    def __init__(self) -> None:
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "broker", "--listen",
             "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        assert self.process.stdout is not None
        line = self.process.stdout.readline()
        if "broker listening on " not in line:
            self.stop()
            raise RuntimeError(f"broker failed to start: {line!r}")
        self.url = line.split("broker listening on ", 1)[1].strip()

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait()


def _spawn_worker(queue: str, lease_seconds: Optional[float] = None,
                  ) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro", "worker", "--queue", queue,
               "--max-idle", "120"]
    if lease_seconds is not None:
        command += ["--lease-seconds", str(lease_seconds)]
    return subprocess.Popen(command, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _stop_workers(workers: Sequence[subprocess.Popen]) -> None:
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
    for worker in workers:
        try:
            worker.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            worker.kill()
            worker.wait()


def _sweep_argv(args: argparse.Namespace) -> List[str]:
    argv = [sys.executable, "-m", "repro", "analyze",
            "--workload", args.workload, "--query", args.query]
    if args.fault_model:
        argv += ["--fault-model", args.fault_model]
    if getattr(args, "burst_k", None) is not None:
        argv += ["--burst-k", str(args.burst_k)]
    if getattr(args, "isa", None):
        argv += ["--isa", args.isa]
    if args.sample is not None:
        argv += ["--sample", str(args.sample)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.max_injections is not None:
        argv += ["--max-injections", str(args.max_injections)]
    if args.max_states is not None:
        argv += ["--max-states", str(args.max_states)]
    return argv


def _run_analyze(argv: List[str], timeout: float,
                 env: Optional[Dict[str, str]] = None) -> str:
    completed = subprocess.run(argv, capture_output=True, text=True,
                               timeout=timeout, env=env)
    if completed.returncode != 0:
        raise RuntimeError(f"analyze failed (exit {completed.returncode}): "
                           f"{' '.join(argv)}\n{completed.stderr}")
    return completed.stdout


def _run_variant(variant: str, args: argparse.Namespace, scratch: str,
                 timeout: float) -> str:
    """Run one backend variant of the sweep and return its raw stdout."""
    base = _sweep_argv(args)
    if variant == "serial":
        return _run_analyze(base, timeout)
    if variant == "peephole":
        # Serial sweep with the peephole pass enabled: the campaign output
        # must stay byte-identical before the pass may be defaulted on
        # (see repro.lang.peephole).
        from ..lang.peephole import PEEPHOLE_ENV_VAR
        env = dict(os.environ)
        env[PEEPHOLE_ENV_VAR] = "1"
        return _run_analyze(base, timeout, env=env)
    if variant == "pool":
        return _run_analyze(base + ["--backend", "pool", "--workers", "2"],
                            timeout)
    if variant == "distributed":
        return _run_analyze(
            base + ["--backend", "distributed", "--workers", "2"], timeout)
    if variant == "results":
        # Serial sweep streamed into a store: proves the store-backed lazy
        # CampaignResult prints byte-identically to the in-memory one.
        path = os.path.join(scratch, "results-variant.sqlite")
        if os.path.exists(path):
            os.unlink(path)
        return _run_analyze(base + ["--results", path], timeout)
    if variant in ("tcp", "tcp-task", "tcp-kill"):
        broker = _TcpBroker()
        workers: List[subprocess.Popen] = []
        killer = None
        try:
            extra = ["--backend", "distributed", "--workers", "0",
                     "--queue", broker.url]
            if variant == "tcp-task":
                extra += ["--granularity", "task"]
            lease = 3.0 if variant == "tcp-kill" else None
            if variant == "tcp-kill":
                extra += ["--lease-seconds", "3"]
            workers = [_spawn_worker(broker.url, lease_seconds=lease)
                       for _ in range(2)]
            if variant == "tcp-kill":
                # SIGKILL one worker mid-campaign; the expired lease must
                # requeue its claim onto the survivor.
                import threading
                victim = workers[0]
                killer = threading.Timer(2.0, victim.kill)
                killer.start()
            return _run_analyze(base + extra, timeout)
        finally:
            if killer is not None:
                killer.cancel()
            _stop_workers(workers)
            broker.stop()
    raise SystemExit(f"unknown --expect-identical backend variant "
                     f"{variant!r}")


def run_expect_identical(args: argparse.Namespace) -> int:
    """Backend-equivalence gate: every variant must match serial exactly."""
    variants = [name.strip() for name in args.backends.split(",")
                if name.strip()]
    scratch = tempfile.mkdtemp(prefix="repro-bench-eq-")
    isa_note = f" isa={args.isa}" if getattr(args, "isa", None) else ""
    print(f"expect-identical: workload={args.workload} "
          f"query={args.query} fault_model={args.fault_model}{isa_note} "
          f"variants={variants}", flush=True)
    baseline = normalize_output(
        _run_variant("serial", args, scratch, args.timeout))
    failures = []
    for variant in variants:
        started = time.perf_counter()
        output = normalize_output(
            _run_variant(variant, args, scratch, args.timeout))
        elapsed = time.perf_counter() - started
        if output == baseline:
            print(f"  {variant:<12} identical ({elapsed:.1f}s)", flush=True)
            continue
        failures.append(variant)
        print(f"  {variant:<12} DIFFERS from the serial baseline:",
              flush=True)
        diff = difflib.unified_diff(
            baseline.splitlines(keepends=True),
            output.splitlines(keepends=True),
            fromfile="serial", tofile=variant)
        sys.stdout.writelines(diff)
    if failures:
        print(f"FAIL: backends not identical to serial: {failures}",
              file=sys.stderr)
        return 1
    print("all backends identical to the serial baseline")
    return 0


# ------------------------------------------------------------------ the CLI

def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--matrix", default="ci", choices=sorted(MATRICES),
                        help="pinned campaign matrix to run (default: ci)")
    parser.add_argument("--only", nargs="*", default=None, metavar="ID",
                        help="run only these matrix entry ids")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="trajectory point path "
                             "(default: BENCH_<sha>.json)")
    parser.add_argument("--sha", default=None,
                        help="commit sha to stamp (default: $GITHUB_SHA or "
                             "git rev-parse)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-entry / per-variant subprocess timeout")
    parser.add_argument("--expect-identical", action="store_true",
                        help="equivalence mode: diff backend outputs "
                             "against the serial baseline instead of "
                             "benchmarking")
    parser.add_argument("--backends", default="pool,distributed",
                        help="comma-separated variants for "
                             "--expect-identical: pool, distributed, "
                             "results, peephole, tcp, tcp-task, tcp-kill")
    parser.add_argument("--workload", default="factorial",
                        help="workload for --expect-identical")
    parser.add_argument("--fault-model", default=None,
                        help="fault model for --expect-identical")
    parser.add_argument("--burst-k", type=int, default=None, metavar="K",
                        help="burst size for --expect-identical with "
                             "--fault-model burst (passed through to "
                             "'repro analyze --burst-k')")
    parser.add_argument("--isa", default=None, metavar="NAME",
                        help="ISA frontend for --expect-identical (retargets "
                             "the workload, e.g. mips or rv32im)")
    parser.add_argument("--query", default="err-output",
                        help="query for --expect-identical")
    parser.add_argument("--sample", type=int, default=None,
                        help="--sample for --expect-identical")
    parser.add_argument("--seed", type=int, default=None,
                        help="--seed for --expect-identical")
    parser.add_argument("--max-injections", type=int, default=None,
                        help="--max-injections for --expect-identical")
    parser.add_argument("--max-states", type=int, default=None,
                        help="--max-states for --expect-identical")
    parser.add_argument("--run-entry", default=None, help=argparse.SUPPRESS)


def run_bench(args: argparse.Namespace) -> int:
    if args.run_entry:
        # Internal child mode: one entry, record json on stdout.
        record = execute_entry(json.loads(args.run_entry))
        print(json.dumps(record))
        return 0
    if args.expect_identical:
        return run_expect_identical(args)
    sha = resolve_sha(args.sha)
    report = run_matrix(args.matrix, sha, only=args.only,
                        timeout=args.timeout)
    output = args.output or f"BENCH_{sha}.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"trajectory point written: {output} "
          f"({len(report['entries'])} entries)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_workloads",
        description="unified workload driver over the campaign matrix")
    add_bench_arguments(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
