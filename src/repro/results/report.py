"""Cross-campaign queries over the results warehouse (``repro report``).

Everything here reads the columnar tables only — campaign metadata,
injection counters and the indexed ``outcomes`` table — so reports over a
warehouse of millions of injections never unpickle a result blob.  The
per-campaign block reproduces the aggregate lines of ``repro analyze``
byte for byte (same counter formats, same ``solution outcome kinds:``
dict), which is what lets the equivalence tests compare a store-backed
report against an in-memory run directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.outcomes import OutcomeKind
from .store import CampaignRecord, ResultStore


def _nonzero_in_kind_order(counts: Dict[str, int]) -> Dict[str, int]:
    """Nonzero counts, in the canonical OutcomeKind order ``repro analyze``
    prints them in (unknown kinds, if any, trail in store order)."""
    ordered: Dict[str, int] = {}
    for kind in OutcomeKind:
        if counts.get(kind.value):
            ordered[kind.value] = counts[kind.value]
    for kind, count in counts.items():
        if count and kind not in ordered:
            ordered[kind] = count
    return ordered


def format_campaign_list(store: ResultStore) -> str:
    """One line per campaign: identity, size and wall clock."""
    records = store.campaigns()
    if not records:
        return "(no campaigns in the results store)"
    lines = []
    for record in records:
        count = store.count(record.campaign_id)
        elapsed = ("" if record.elapsed_seconds is None
                   else f", {record.elapsed_seconds:.3f}s")
        lines.append(f"{record.describe()} — {count} injections{elapsed}")
    return "\n".join(lines)


def format_campaign_report(store: ResultStore, campaign_id: int) -> str:
    """The full aggregate report for one campaign (no blobs touched)."""
    record = store.campaign(campaign_id)
    aggregates = store.aggregates(campaign_id)
    lines = [record.describe(), aggregates.describe()]
    lines.append(f"injections completed       : "
                 f"{aggregates.injections_completed}")
    lines.append(f"latent solutions           : "
                 f"{aggregates.latent_solutions} "
                 f"(rate {aggregates.latent_rate:.3f})")
    lines.append("solution outcome kinds: "
                 f"{_nonzero_in_kind_order(aggregates.outcome_counts)}")
    return "\n".join(lines)


def format_outcome_distribution(store: ResultStore) -> str:
    """The Table-2-style outcome distribution, summed over every campaign."""
    totals: Dict[str, int] = {}
    total_solutions = 0
    for record in store.campaigns():
        for kind, count in store.outcome_distribution(
                record.campaign_id).items():
            totals[kind] = totals.get(kind, 0) + count
            total_solutions += count
    lines = ["outcome distribution (all campaigns):"]
    if not total_solutions:
        lines.append("  (no solutions recorded)")
        return "\n".join(lines)
    for kind, count in _nonzero_in_kind_order(totals).items():
        lines.append(f"  {kind:<12}: {count:>8} "
                     f"({count / total_solutions:.1%})")
    return "\n".join(lines)


def _group_by_fault_model(records: List[CampaignRecord]
                          ) -> Dict[str, List[CampaignRecord]]:
    groups: Dict[str, List[CampaignRecord]] = {}
    for record in records:
        model = str(record.meta.get("fault_model") or "(none)")
        groups.setdefault(model, []).append(record)
    return groups


def format_fault_model_coverage(store: ResultStore) -> str:
    """Per-fault-model solution coverage, with deltas against the best.

    Coverage is the fraction of injections with at least one
    undetected-error witness — the paper's per-error-class comparison —
    summed over every campaign that swept the model.
    """
    groups = _group_by_fault_model(store.campaigns())
    if not groups:
        return "per-fault-model coverage:\n  (no campaigns)"
    rows = []
    for model in sorted(groups):
        run = hit = latent = 0
        for record in groups[model]:
            aggregates = store.aggregates(record.campaign_id)
            run += aggregates.injections_run
            hit += aggregates.injections_with_solutions
            latent += aggregates.latent_solutions
        coverage = hit / run if run else 0.0
        rows.append((model, len(groups[model]), run, hit, latent, coverage))
    best = max(row[5] for row in rows)
    lines = ["per-fault-model coverage:"]
    for model, campaigns, run, hit, latent, coverage in rows:
        delta = coverage - best
        lines.append(
            f"  {model:<12}: {hit}/{run} injections with solutions "
            f"(coverage {coverage:.3f}, delta {delta:+.3f}) — "
            f"{campaigns} campaign(s), {latent} latent solution(s)")
    return "\n".join(lines)


def format_latent_rates(store: ResultStore) -> str:
    """Latent-error rate (silent corruption per solution) per campaign."""
    records = store.campaigns()
    lines = ["latent-error rates:"]
    if not records:
        lines.append("  (no campaigns)")
        return "\n".join(lines)
    for record in records:
        aggregates = store.aggregates(record.campaign_id)
        lines.append(
            f"  campaign {record.campaign_id}: "
            f"{aggregates.latent_solutions}/{aggregates.total_solutions} "
            f"latent (rate {aggregates.latent_rate:.3f})")
    return "\n".join(lines)


def _group_by_program(records: List[CampaignRecord]
                      ) -> Dict[str, List[CampaignRecord]]:
    groups: Dict[str, List[CampaignRecord]] = {}
    for record in records:
        program = str(record.meta.get("program")
                      or record.meta.get("workload") or "(unknown)")
        groups.setdefault(program, []).append(record)
    return groups


def format_parity_report(store: ResultStore) -> str:
    """The symbolic-vs-bit-flip parity table (``repro report --parity``).

    For every program that has both a ``bitflip`` campaign (the concrete
    Monte-Carlo leg) and at least one symbolic campaign in the warehouse,
    joins the two on injection point ``(breakpoint_pc, target)`` and checks
    that every outcome kind the bit flips produced is covered by the
    symbolic outcome set under the
    :data:`~repro.concrete.parity.SYMBOLIC_COVERS` abstraction (a printed
    ``err`` covers any concrete resolution; an incomplete symbolic search
    covers a concrete hang).  Columnar only — reads
    :meth:`~repro.results.store.ResultStore.outcome_kinds_by_point`,
    never a result blob.
    """
    from ..concrete.parity import covers

    lines: List[str] = []
    for program, records in sorted(
            _group_by_program(store.campaigns()).items()):
        bitflip = [r for r in records
                   if str(r.meta.get("fault_model")) == "bitflip"]
        symbolic = [r for r in records
                    if str(r.meta.get("fault_model")) != "bitflip"]
        if not bitflip or not symbolic:
            continue
        concrete_points: Dict[tuple, set] = {}
        for record in bitflip:
            for point, (kinds, _completed) in store.outcome_kinds_by_point(
                    record.campaign_id).items():
                concrete_points.setdefault(point, set()).update(kinds)
        symbolic_points: Dict[tuple, tuple] = {}
        for record in symbolic:
            for point, (kinds, completed) in store.outcome_kinds_by_point(
                    record.campaign_id).items():
                seen, complete = symbolic_points.get(point,
                                                     (frozenset(), True))
                symbolic_points[point] = (seen | kinds,
                                          complete and completed)
        lines.append(f"parity study for {program} "
                     f"({len(symbolic)} symbolic campaign(s) vs "
                     f"{len(bitflip)} bitflip campaign(s)):")
        covered_points = 0
        uncovered_kinds: set = set()
        for point in sorted(concrete_points):
            concrete_kinds = concrete_points[point]
            sym_kinds, sym_complete = symbolic_points.get(
                point, (frozenset(), True))
            if point not in symbolic_points:
                uncovered = sorted(concrete_kinds)
            else:
                uncovered = sorted(
                    kind for kind in concrete_kinds
                    if not covers(kind, sym_kinds, sym_complete))
            point_label = f"pc={point[0]} {point[1]}"
            sym_label = ",".join(sorted(sym_kinds)) or "-"
            if not sym_complete:
                sym_label += " (incomplete)"
            verdict = ("covered" if not uncovered
                       else "UNCOVERED: " + ",".join(uncovered))
            lines.append(f"  {point_label:<24} symbolic={sym_label:<32} "
                         f"bitflip={','.join(sorted(concrete_kinds)):<24} "
                         f"{verdict}")
            if uncovered:
                uncovered_kinds.update(uncovered)
            else:
                covered_points += 1
        summary = (f"  parity: symbolic covers {covered_points}/"
                   f"{len(concrete_points)} injection points")
        if concrete_points and covered_points == len(concrete_points):
            summary += " — all concrete outcome classes covered"
        elif concrete_points:
            summary += f" — UNCOVERED: {', '.join(sorted(uncovered_kinds))}"
        lines.append(summary)
    if not lines:
        return ("(no parity pairs in the results store — a parity report "
                "needs a bitflip campaign and a symbolic campaign over the "
                "same program)")
    return "\n".join(lines)


def format_report(store: ResultStore,
                  campaign_id: Optional[int] = None) -> str:
    """The ``repro report`` body: one campaign, or the whole warehouse."""
    if campaign_id is not None:
        return format_campaign_report(store, campaign_id)
    sections = [
        format_campaign_list(store),
        "",
        format_outcome_distribution(store),
        "",
        format_fault_model_coverage(store),
        "",
        format_latent_rates(store),
    ]
    return "\n".join(sections)
