"""Compiler facade: minic source text -> :class:`CompiledProgram`."""

from __future__ import annotations


from .codegen import CodeGenerator, CompiledProgram
from .parser import parse_source


def compile_source(source: str, name: str = "minic",
                   entry_function: str = "main") -> CompiledProgram:
    """Compile minic *source* into a SymPLFIED program plus its data segment.

    Raises :class:`~repro.lang.lexer.LexerError`,
    :class:`~repro.lang.parser.ParseError` or
    :class:`~repro.lang.codegen.CompileError` on invalid input.
    """
    unit = parse_source(source)
    generator = CodeGenerator(unit, name=name, entry_function=entry_function)
    compiled = generator.compile()
    compiled.source = source
    return compiled
