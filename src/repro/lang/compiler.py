"""Compiler facade: minic source text -> :class:`CompiledProgram`."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .codegen import CodeGenerator, CompiledProgram
from .parser import parse_source
from .peephole import peephole_compiled, peephole_enabled_by_env


def compile_source(source: str, name: str = "minic",
                   entry_function: str = "main",
                   peephole: Optional[bool] = None,
                   isa: Optional[str] = None) -> CompiledProgram:
    """Compile minic *source* into a SymPLFIED program plus its data segment.

    *peephole* selects the conservative post-codegen cleanup pass
    (:mod:`repro.lang.peephole`); ``None`` defers to the ``REPRO_PEEPHOLE``
    environment variable, which defaults to off — campaigns must stay
    byte-identical across the switch before it may be defaulted on.

    *isa* retargets the compiled program through a registered
    :class:`~repro.isa.registry.IsaFrontend` (``"mips"``, ``"rv32im"``, ...):
    the program is emitted as that ISA's assembly and translated back, so its
    provenance (source lines) is that ISA's while the instruction sequence,
    labels and function map stay identical — every minic workload compiles
    for every registered ISA.  Applied after the peephole pass.

    Raises :class:`~repro.lang.lexer.LexerError`,
    :class:`~repro.lang.parser.ParseError` or
    :class:`~repro.lang.codegen.CompileError` on invalid input, and
    :class:`ValueError` for an unknown *isa*.
    """
    unit = parse_source(source)
    generator = CodeGenerator(unit, name=name, entry_function=entry_function)
    compiled = generator.compile()
    compiled.source = source
    if peephole is None:
        peephole = peephole_enabled_by_env()
    if peephole:
        compiled, _stats = peephole_compiled(compiled)
    if isa is not None:
        from ..isa.registry import get_frontend

        frontend = get_frontend(isa)
        compiled = replace(compiled, program=frontend.retarget(compiled.program),
                           isa=frontend.name)
    return compiled
