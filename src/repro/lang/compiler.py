"""Compiler facade: minic source text -> :class:`CompiledProgram`."""

from __future__ import annotations

from typing import Optional

from .codegen import CodeGenerator, CompiledProgram
from .parser import parse_source
from .peephole import peephole_compiled, peephole_enabled_by_env


def compile_source(source: str, name: str = "minic",
                   entry_function: str = "main",
                   peephole: Optional[bool] = None) -> CompiledProgram:
    """Compile minic *source* into a SymPLFIED program plus its data segment.

    *peephole* selects the conservative post-codegen cleanup pass
    (:mod:`repro.lang.peephole`); ``None`` defers to the ``REPRO_PEEPHOLE``
    environment variable, which defaults to off — campaigns must stay
    byte-identical across the switch before it may be defaulted on.

    Raises :class:`~repro.lang.lexer.LexerError`,
    :class:`~repro.lang.parser.ParseError` or
    :class:`~repro.lang.codegen.CompileError` on invalid input.
    """
    unit = parse_source(source)
    generator = CodeGenerator(unit, name=name, entry_function=entry_function)
    compiled = generator.compile()
    compiled.source = source
    if peephole is None:
        peephole = peephole_enabled_by_env()
    if peephole:
        compiled, _stats = peephole_compiled(compiled)
    return compiled
