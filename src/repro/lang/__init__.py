"""minic: the small C-like language and compiler used to express workloads."""

from .lexer import LexerError, Token, tokenize
from .parser import ParseError, Parser, parse_source
from .codegen import (CompileError, CompiledProgram, CodeGenerator, EVAL_STACK_SLOTS,
                      FunctionInfo, GLOBAL_BASE, GlobalInfo, STACK_BASE)
from .compiler import compile_source
from .peephole import (PEEPHOLE_ENV_VAR, PeepholeStats, peephole_compiled,
                       peephole_enabled_by_env, peephole_program)
from . import nodes

__all__ = [
    "LexerError", "Token", "tokenize",
    "ParseError", "Parser", "parse_source",
    "CompileError", "CompiledProgram", "CodeGenerator", "EVAL_STACK_SLOTS",
    "FunctionInfo", "GLOBAL_BASE", "GlobalInfo", "STACK_BASE",
    "compile_source", "nodes",
    "PEEPHOLE_ENV_VAR", "PeepholeStats", "peephole_compiled",
    "peephole_enabled_by_env", "peephole_program",
]
