"""Conservative, order-preserving peephole pass over generated code.

Runs after :mod:`repro.lang.codegen` and before the program is handed to the
machine model.  Only transformations that are *observably identical* under
the machine semantics — including the step counter, which the campaign layer
uses for timeouts and cache keys — are candidates, and even those are
applied conservatively:

* ``mov $r, $r`` — a register moved onto itself — is removed,
* a ``beq`` / ``bne`` / ``jmp`` whose target is the directly following
  instruction is removed (taken and not-taken paths coincide),
* ``set*`` / branch pairs that could fuse into a single compare-and-branch
  are *counted* (``fusion_candidates``) but never rewritten: fusing would
  drop the comparison's register write, which is observable.

Removing an instruction renumbers every later code address, so the pass
remaps the label table, the per-address source lines and (for
:class:`~repro.lang.codegen.CompiledProgram`) the function regions.  The
pass iterates to a fixpoint — removing a jump-to-next can expose another.

The pass is OFF by default everywhere: removing instructions changes step
counts at injection breakpoints, so enabling it mid-flight would invalidate
recorded campaigns.  ``repro bench --expect-identical`` gates the
``peephole`` variant (compiled workloads must produce byte-identical
campaign output with the pass enabled) before it may be defaulted on — the
current code generator never emits a removable instruction for the shipped
workloads, and the gate keeps future codegen changes honest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Category, Instruction
from ..isa.program import Program

#: Environment variable consulted when a caller does not pick explicitly.
PEEPHOLE_ENV_VAR = "REPRO_PEEPHOLE"

#: Safety valve on fixpoint iteration (each pass removes at least one
#: instruction, so this bound is never reached in practice).
_MAX_PASSES = 32


@dataclass
class PeepholeStats:
    """What one :func:`peephole_program` run did (and could have done)."""

    removed_movs: int = 0
    removed_branches: int = 0
    fusion_candidates: int = 0
    passes: int = 0

    @property
    def removed(self) -> int:
        return self.removed_movs + self.removed_branches

    def describe(self) -> str:
        return (f"peephole: removed {self.removed_movs} self-movs, "
                f"{self.removed_branches} branches-to-next "
                f"({self.fusion_candidates} compare/branch fusion "
                f"candidates left intact) in {self.passes} pass(es)")


def peephole_enabled_by_env() -> bool:
    """The default on/off switch (:data:`PEEPHOLE_ENV_VAR`, default off)."""
    return os.environ.get(PEEPHOLE_ENV_VAR, "").strip().lower() \
        in ("1", "true", "on", "yes")


def _is_self_mov(instruction: Instruction) -> bool:
    return (instruction.opcode == "mov"
            and instruction.operands[0] == instruction.operands[1])


def _is_branch_to_next(instruction: Instruction, address: int,
                       labels: Dict[str, int]) -> bool:
    if instruction.opcode in ("beq", "bne"):
        return labels.get(instruction.operands[2]) == address + 1
    if instruction.opcode == "jmp":
        return labels.get(instruction.operands[0]) == address + 1
    return False


def _count_fusion_candidates(program: Program) -> int:
    """``set*`` directly feeding a ``beq``/``bne`` on the same register."""
    count = 0
    for address in range(len(program) - 1):
        first, second = program.code[address], program.code[address + 1]
        if first.category is not Category.COMPARE:
            continue
        if second.opcode not in ("beq", "bne"):
            continue
        if first.operands[0] == second.operands[0]:
            count += 1
    return count


def _remove_pass(program: Program, stats: PeepholeStats) -> Optional[Program]:
    """One sweep of removals; returns the remapped program or ``None``."""
    drop: List[bool] = []
    for address, instruction in enumerate(program.code):
        if _is_self_mov(instruction):
            drop.append(True)
            stats.removed_movs += 1
        elif _is_branch_to_next(instruction, address, program.labels):
            drop.append(True)
            stats.removed_branches += 1
        else:
            drop.append(False)
    if not any(drop):
        return None

    # new_address[old] = old minus the number of drops strictly before old:
    # a surviving address keeps its shifted position and a dropped address
    # maps onto its surviving successor (same formula).  One extra slot
    # covers labels attached to the end-of-code address.
    new_address: List[int] = []
    removed = 0
    for address in range(len(program) + 1):
        new_address.append(address - removed)
        if address < len(program) and drop[address]:
            removed += 1
    code = tuple(instruction for address, instruction in enumerate(program.code)
                 if not drop[address])
    labels = {name: new_address[address]
              for name, address in program.labels.items()}
    source_lines = {new_address[address]: text
                    for address, text in program.source_lines.items()
                    if not drop[address]}
    return Program(code=code, labels=labels, source_lines=source_lines,
                   name=program.name)


def peephole_program(program: Program) -> Tuple[Program, PeepholeStats]:
    """Apply the pass to *program* until nothing more can be removed."""
    stats = PeepholeStats()
    current = program
    for _ in range(_MAX_PASSES):
        stats.passes += 1
        result = _remove_pass(current, stats)
        if result is None:
            break
        current = result
    stats.fusion_candidates = _count_fusion_candidates(current)
    return current, stats


def peephole_compiled(compiled) -> Tuple[object, PeepholeStats]:
    """Apply the pass to a :class:`~repro.lang.codegen.CompiledProgram`.

    Function regions are remapped through the same address translation as
    the label table, so ``function_region`` / ``function_pcs`` stay correct.
    """
    program = compiled.program
    optimised, stats = peephole_program(program)
    if stats.removed == 0:
        return compiled, stats

    # Rebuild the old->new address map by replaying the surviving labels:
    # they are the only anchors shared between the two programs, and every
    # function boundary is labelled by the code generator.  For safety the
    # translation below recomputes the map directly instead.
    survivors: List[int] = []
    cursor = 0
    old_code = program.code
    new_code = optimised.code
    for address, instruction in enumerate(old_code):
        if cursor < len(new_code) and new_code[cursor] is instruction:
            survivors.append(cursor)
            cursor += 1
        else:
            survivors.append(cursor)  # dropped: maps to next survivor
    survivors.append(len(new_code))  # end-of-code address

    functions = {
        name: replace(info,
                      start_pc=survivors[info.start_pc]
                      if 0 <= info.start_pc < len(survivors) else info.start_pc,
                      end_pc=survivors[info.end_pc]
                      if 0 <= info.end_pc < len(survivors) else info.end_pc)
        for name, info in compiled.functions.items()
    }
    return replace(compiled, program=optimised, functions=functions), stats
