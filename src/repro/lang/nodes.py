"""Abstract syntax tree of the minic language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


# ------------------------------------------------------------------ expressions

class Expr:
    """Base class of expression nodes."""


@dataclass(frozen=True)
class NumberLiteral(Expr):
    value: int


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class ArrayIndex(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True)
class Call(Expr):
    name: str
    arguments: Tuple[Expr, ...]


@dataclass(frozen=True)
class Unary(Expr):
    operator: str            # "-" or "!"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    operator: str            # + - * / % < > <= >= == != && ||
    left: Expr
    right: Expr


# ------------------------------------------------------------------- statements

class Stmt:
    """Base class of statement nodes."""


@dataclass(frozen=True)
class LocalDecl(Stmt):
    name: str
    initializer: Optional[Expr]
    line: int = 0


@dataclass(frozen=True)
class Assign(Stmt):
    target: Expr              # Identifier or ArrayIndex
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: Tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr]
    line: int = 0


@dataclass(frozen=True)
class Break(Stmt):
    line: int = 0


@dataclass(frozen=True)
class Continue(Stmt):
    line: int = 0


@dataclass(frozen=True)
class Print(Stmt):
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class PrintString(Stmt):
    text: str
    line: int = 0


@dataclass(frozen=True)
class Read(Stmt):
    target: Expr              # Identifier or ArrayIndex
    line: int = 0


@dataclass(frozen=True)
class Check(Stmt):
    detector_id: int
    line: int = 0


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expression: Expr
    line: int = 0


# ------------------------------------------------------------------ declarations

@dataclass(frozen=True)
class GlobalVar:
    name: str
    size: int = 1                       # 1 for scalars, N for arrays
    initializer: Tuple[int, ...] = ()
    is_array: bool = False
    line: int = 0


@dataclass(frozen=True)
class ConstDef:
    name: str
    value: int
    line: int = 0


@dataclass(frozen=True)
class Function:
    name: str
    parameters: Tuple[str, ...]
    body: Tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class TranslationUnit:
    """A parsed minic source file."""

    constants: Tuple[ConstDef, ...]
    globals: Tuple[GlobalVar, ...]
    functions: Tuple[Function, ...]

    def function(self, name: str) -> Optional[Function]:
        for function in self.functions:
            if function.name == name:
                return function
        return None
