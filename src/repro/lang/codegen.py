"""Code generator: minic AST -> SymPLFIED assembly.

The generated code follows the conventions of a simple, unoptimising C
compiler for a RISC target, because that is what the paper's experiments
depend on (errors in the *runtime support added by the compiler*, such as the
return-address register, are exactly the ones SymPLFIED is designed to
reach):

* ``$29`` is the stack pointer, ``$31`` the return-address register (written
  by ``jal``), ``$2`` the return-value register and ``$8``-``$10`` scratch.
* Every function owns a stack frame: ``[saved $31][parameters][locals]
  [expression-evaluation slots]``.  The prologue allocates the frame and
  saves ``$31``; the epilogue restores ``$31`` from the frame and returns
  with ``jr $31``.
* Expressions are evaluated on the in-frame evaluation stack (a classic
  stack-machine lowering), so no value is ever live in a scratch register
  across a call.
* Globals live in a data segment at fixed absolute addresses and are
  accessed with ``$0``-based loads/stores; global arrays decay to their base
  address.
* ``&&`` and ``||`` are short-circuiting; ``if``/``while`` lower to labels
  and branches, and every ``then``/``else``/loop body gets a label of its own
  (these labels are also the landing sites considered by the control-error
  model's ``"labels"`` fork domain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import make
from ..isa.program import Program, ProgramBuilder
from . import nodes
from .nodes import (ArrayIndex, Assign, Binary, Break, Call, Check,
                    Continue, ExprStmt, Function, Identifier, If,
                    LocalDecl, NumberLiteral, Print, PrintString, Read,
                    Return, TranslationUnit, Unary, While)


class CompileError(ValueError):
    """Raised for semantic errors in minic programs."""


#: Register conventions used by the generated code.
SP = 29          # stack pointer
RA = 31          # return address (written by jal)
RV = 2           # return value
T0, T1, T2 = 8, 9, 10   # scratch registers

#: Memory layout.
GLOBAL_BASE = 1_000
STACK_BASE = 1_000_000

#: Depth of the per-frame expression evaluation stack.
EVAL_STACK_SLOTS = 24

_COMPARISON_OPCODES = {
    "==": "seteq", "!=": "setne", "<": "setlt", ">": "setgt",
    "<=": "setle", ">=": "setge",
}

_ARITHMETIC_OPCODES = {"+": "add", "-": "sub", "*": "mult", "/": "div", "%": "mod"}


@dataclass
class GlobalInfo:
    name: str
    address: int
    size: int
    is_array: bool


@dataclass
class FunctionInfo:
    name: str
    label: str
    parameters: Tuple[str, ...]
    locals: Tuple[str, ...]
    frame_size: int
    start_pc: int = -1
    end_pc: int = -1

    def slot_of(self, name: str) -> Optional[int]:
        """Frame slot (offset from SP) of a parameter or local, if any."""
        if name in self.parameters:
            return 1 + self.parameters.index(name)
        if name in self.locals:
            return 1 + len(self.parameters) + self.locals.index(name)
        return None

    @property
    def eval_base(self) -> int:
        return 1 + len(self.parameters) + len(self.locals)


@dataclass
class CompiledProgram:
    """The output of the minic compiler."""

    program: Program
    data_segment: Dict[int, int]
    globals: Dict[str, GlobalInfo]
    functions: Dict[str, FunctionInfo]
    constants: Dict[str, int]
    source: str = ""
    #: Name of the ISA frontend the program was retargeted through, if any
    #: (see :func:`repro.lang.compiler.compile_source`'s ``isa=``).
    isa: Optional[str] = None

    def global_address(self, name: str, index: int = 0) -> int:
        info = self.globals[name]
        return info.address + index

    def initial_memory(self) -> Dict[int, int]:
        """A fresh copy of the loader-initialised data segment."""
        return dict(self.data_segment)

    def function_region(self, name: str) -> Tuple[int, int]:
        """Half-open range of code addresses belonging to a function."""
        info = self.functions[name]
        return info.start_pc, info.end_pc

    def function_pcs(self, name: str) -> List[int]:
        start, end = self.function_region(name)
        return list(range(start, end))

    def peephole(self):
        """This program with :mod:`repro.lang.peephole` applied.

        Returns ``(compiled, stats)``; ``self`` is unchanged (the pass is
        purely functional and remaps labels, source lines and function
        regions together with the code).
        """
        from .peephole import peephole_compiled
        return peephole_compiled(self)


def _collect_locals(statements: Sequence[nodes.Stmt]) -> List[str]:
    names: List[str] = []

    def walk(stmts: Sequence[nodes.Stmt]) -> None:
        for statement in stmts:
            if isinstance(statement, LocalDecl):
                if statement.name in names:
                    raise CompileError(
                        f"duplicate local variable {statement.name!r}")
                names.append(statement.name)
            elif isinstance(statement, If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, While):
                walk(statement.body)

    walk(statements)
    return names


class CodeGenerator:
    """Compiles a parsed translation unit into a SymPLFIED program."""

    def __init__(self, unit: TranslationUnit, name: str = "minic",
                 entry_function: str = "main") -> None:
        self.unit = unit
        self.name = name
        self.entry_function = entry_function
        self.builder = ProgramBuilder(name=name)
        self.constants: Dict[str, int] = {}
        self.globals: Dict[str, GlobalInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.data_segment: Dict[int, int] = {}
        self._label_counter = 0
        # Per-function code-generation state.
        self._current: Optional[FunctionInfo] = None
        self._eval_depth = 0
        self._loop_stack: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------ tables

    def _build_tables(self) -> None:
        for const in self.unit.constants:
            if const.name in self.constants:
                raise CompileError(f"duplicate constant {const.name!r}")
            self.constants[const.name] = const.value

        address = GLOBAL_BASE
        for declaration in self.unit.globals:
            if declaration.name in self.globals or declaration.name in self.constants:
                raise CompileError(f"duplicate global {declaration.name!r}")
            info = GlobalInfo(name=declaration.name, address=address,
                              size=declaration.size, is_array=declaration.is_array)
            self.globals[declaration.name] = info
            values = list(declaration.initializer)
            for offset in range(declaration.size):
                value = values[offset] if offset < len(values) else 0
                self.data_segment[address + offset] = value
            address += declaration.size

        for function in self.unit.functions:
            if function.name in self.functions:
                raise CompileError(f"duplicate function {function.name!r}")
            locals_ = _collect_locals(function.body)
            for parameter in function.parameters:
                if parameter in locals_:
                    raise CompileError(
                        f"{function.name}: parameter {parameter!r} shadowed by a local")
            frame_size = 1 + len(function.parameters) + len(locals_) + EVAL_STACK_SLOTS
            self.functions[function.name] = FunctionInfo(
                name=function.name, label=f"fn_{function.name}",
                parameters=tuple(function.parameters), locals=tuple(locals_),
                frame_size=frame_size)

        if self.entry_function not in self.functions:
            raise CompileError(f"missing entry function {self.entry_function!r}")
        if self.functions[self.entry_function].parameters:
            raise CompileError(f"{self.entry_function}() must take no parameters")

    # ------------------------------------------------------------------- emit

    def _emit(self, opcode: str, *operands, source: Optional[str] = None) -> int:
        return self.builder.emit(make(opcode, *operands), source=source)

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        function = self._current.name if self._current else "global"
        return f"L_{function}_{hint}_{self._label_counter}"

    def _place(self, label: str) -> None:
        self.builder.label(label)

    # --------------------------------------------------------------- eval stack

    def _eval_slot(self, depth: int) -> int:
        assert self._current is not None
        return self._current.eval_base + depth

    def _push(self, register: int) -> None:
        if self._eval_depth >= EVAL_STACK_SLOTS:
            raise CompileError(
                f"{self._current.name}: expression too deep "
                f"(more than {EVAL_STACK_SLOTS} evaluation slots)")
        self._emit("sti", register, SP, self._eval_slot(self._eval_depth))
        self._eval_depth += 1

    def _pop(self, register: int) -> None:
        assert self._eval_depth > 0, "evaluation stack underflow (compiler bug)"
        self._eval_depth -= 1
        self._emit("ldi", register, SP, self._eval_slot(self._eval_depth))

    # ---------------------------------------------------------------- compile

    def compile(self) -> CompiledProgram:
        self._build_tables()
        self._emit_entry()
        for function in self.unit.functions:
            self._compile_function(function)
        program = self.builder.build()
        source = "\n".join(
            f"{name} = {value}" for name, value in sorted(self.constants.items()))
        return CompiledProgram(program=program, data_segment=dict(self.data_segment),
                               globals=dict(self.globals),
                               functions=dict(self.functions),
                               constants=dict(self.constants), source=source)

    def _emit_entry(self) -> None:
        """Program entry: set up the stack pointer, call main, halt."""
        self._emit("li", SP, STACK_BASE, source="entry: set up stack pointer")
        self._emit("jal", self.functions[self.entry_function].label,
                   source=f"entry: call {self.entry_function}()")
        self._emit("halt", source="entry: halt after main returns")

    def _compile_function(self, function: Function) -> None:
        info = self.functions[function.name]
        self._current = info
        self._eval_depth = 0
        self._loop_stack = []

        info.start_pc = self.builder.next_address
        self._place(info.label)
        # Prologue: allocate the frame, save the return address, zero locals.
        self._emit("subi", SP, SP, info.frame_size,
                   source=f"{function.name}: prologue (frame={info.frame_size})")
        self._emit("sti", RA, SP, 0, source=f"{function.name}: save return address")
        for index in range(len(info.locals)):
            slot = 1 + len(info.parameters) + index
            self._emit("sti", 0, SP, slot,
                       source=f"{function.name}: zero local {info.locals[index]!r}")

        for statement in function.body:
            self._compile_statement(statement)

        # Implicit ``return 0`` for functions that fall off the end.
        self._emit("li", RV, 0, source=f"{function.name}: implicit return 0")
        self._emit_epilogue(function.name)
        info.end_pc = self.builder.next_address
        self._current = None

    def _emit_epilogue(self, function_name: str) -> None:
        info = self.functions[function_name]
        self._emit("ldi", RA, SP, 0, source=f"{function_name}: restore return address")
        self._emit("addi", SP, SP, info.frame_size,
                   source=f"{function_name}: pop frame")
        self._emit("jr", RA, source=f"{function_name}: return")

    # -------------------------------------------------------------- statements

    def _compile_statement(self, statement: nodes.Stmt) -> None:
        if isinstance(statement, LocalDecl):
            if statement.initializer is not None:
                self._compile_expression(statement.initializer)
                self._pop(T0)
                self._store_variable(statement.name, T0)
            return
        if isinstance(statement, Assign):
            self._compile_assignment(statement)
            return
        if isinstance(statement, If):
            self._compile_if(statement)
            return
        if isinstance(statement, While):
            self._compile_while(statement)
            return
        if isinstance(statement, Return):
            if statement.value is not None:
                self._compile_expression(statement.value)
                self._pop(RV)
            else:
                self._emit("li", RV, 0)
            self._emit_epilogue(self._current.name)
            return
        if isinstance(statement, Break):
            if not self._loop_stack:
                raise CompileError("break outside of a loop")
            self._emit("jmp", self._loop_stack[-1][1])
            return
        if isinstance(statement, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside of a loop")
            self._emit("jmp", self._loop_stack[-1][0])
            return
        if isinstance(statement, Print):
            self._compile_expression(statement.value)
            self._pop(T0)
            self._emit("print", T0)
            return
        if isinstance(statement, PrintString):
            self._emit("prints", statement.text)
            return
        if isinstance(statement, Read):
            self._compile_read(statement)
            return
        if isinstance(statement, Check):
            self._emit("check", statement.detector_id)
            return
        if isinstance(statement, ExprStmt):
            self._compile_expression(statement.expression)
            self._pop(T0)  # discard the value
            return
        raise CompileError(f"unsupported statement {type(statement).__name__}")

    def _compile_assignment(self, statement: Assign) -> None:
        target = statement.target
        if isinstance(target, Identifier):
            self._compile_expression(statement.value)
            self._pop(T0)
            self._store_variable(target.name, T0)
            return
        if isinstance(target, ArrayIndex):
            self._compile_expression(target.base)
            self._compile_expression(target.index)
            self._compile_expression(statement.value)
            self._pop(T2)   # value
            self._pop(T1)   # index
            self._pop(T0)   # base address
            self._emit("add", T0, T0, T1)
            self._emit("sti", T2, T0, 0)
            return
        raise CompileError("invalid assignment target")

    def _compile_read(self, statement: Read) -> None:
        target = statement.target
        if isinstance(target, Identifier):
            self._emit("read", T0)
            self._store_variable(target.name, T0)
            return
        # read into an array element
        self._compile_expression(target.base)
        self._compile_expression(target.index)
        self._pop(T1)
        self._pop(T0)
        self._emit("add", T0, T0, T1)
        self._emit("read", T1)
        self._emit("sti", T1, T0, 0)

    def _compile_if(self, statement: If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        then_label = self._label("then")
        self._compile_expression(statement.condition)
        self._pop(T0)
        self._emit("beq", T0, 0, else_label if statement.else_body else end_label)
        self._place(then_label)
        for inner in statement.then_body:
            self._compile_statement(inner)
        if statement.else_body:
            self._emit("jmp", end_label)
            self._place(else_label)
            for inner in statement.else_body:
                self._compile_statement(inner)
        self._place(end_label)
        # Anchor the labels even when a branch is empty (a label may not dangle
        # past the last instruction if nothing follows; emit a nop fallback).
        if self.builder.has_label(end_label) or self.builder.has_label(then_label) \
                or self.builder.has_label(else_label):
            self._emit("nop", source="if join point")

    def _compile_while(self, statement: While) -> None:
        head_label = self._label("loop")
        body_label = self._label("loopbody")
        end_label = self._label("loopend")
        self._place(head_label)
        # The head label must be anchored to the condition's first instruction.
        self._compile_expression(statement.condition)
        self._pop(T0)
        self._emit("beq", T0, 0, end_label)
        self._place(body_label)
        self._loop_stack.append((head_label, end_label))
        for inner in statement.body:
            self._compile_statement(inner)
        self._loop_stack.pop()
        self._emit("jmp", head_label)
        self._place(end_label)
        if self.builder.has_label(end_label) or self.builder.has_label(body_label):
            self._emit("nop", source="loop exit join point")

    # ------------------------------------------------------------- expressions

    def _compile_expression(self, expression: nodes.Expr) -> None:
        """Generate code leaving the expression's value on the evaluation stack."""
        if isinstance(expression, NumberLiteral):
            self._emit("li", T0, expression.value)
            self._push(T0)
            return
        if isinstance(expression, Identifier):
            self._load_identifier(expression.name)
            return
        if isinstance(expression, ArrayIndex):
            self._compile_expression(expression.base)
            self._compile_expression(expression.index)
            self._pop(T1)
            self._pop(T0)
            self._emit("add", T0, T0, T1)
            self._emit("ldi", T0, T0, 0)
            self._push(T0)
            return
        if isinstance(expression, Unary):
            self._compile_expression(expression.operand)
            self._pop(T0)
            if expression.operator == "-":
                self._emit("sub", T0, 0, T0)
            elif expression.operator == "!":
                self._emit("seteqi", T0, T0, 0)
            else:
                raise CompileError(f"unknown unary operator {expression.operator!r}")
            self._push(T0)
            return
        if isinstance(expression, Binary):
            self._compile_binary(expression)
            return
        if isinstance(expression, Call):
            self._compile_call(expression)
            return
        raise CompileError(f"unsupported expression {type(expression).__name__}")

    def _compile_binary(self, expression: Binary) -> None:
        operator = expression.operator
        if operator in ("&&", "||"):
            self._compile_short_circuit(expression)
            return
        self._compile_expression(expression.left)
        self._compile_expression(expression.right)
        self._pop(T1)
        self._pop(T0)
        if operator in _ARITHMETIC_OPCODES:
            self._emit(_ARITHMETIC_OPCODES[operator], T0, T0, T1)
        elif operator in _COMPARISON_OPCODES:
            self._emit(_COMPARISON_OPCODES[operator], T0, T0, T1)
        else:
            raise CompileError(f"unknown binary operator {operator!r}")
        self._push(T0)

    def _compile_short_circuit(self, expression: Binary) -> None:
        skip_label = self._label("sc_skip")
        end_label = self._label("sc_end")
        self._compile_expression(expression.left)
        self._pop(T0)
        if expression.operator == "&&":
            self._emit("beq", T0, 0, skip_label)
        else:  # "||"
            self._emit("bne", T0, 0, skip_label)
        self._compile_expression(expression.right)
        self._pop(T0)
        self._emit("setnei", T0, T0, 0)
        self._emit("jmp", end_label)
        self._place(skip_label)
        self._emit("li", T0, 0 if expression.operator == "&&" else 1)
        self._place(end_label)
        self._push(T0)

    def _compile_call(self, expression: Call) -> None:
        callee = self.functions.get(expression.name)
        if callee is None:
            raise CompileError(f"call to undefined function {expression.name!r}")
        if len(expression.arguments) != len(callee.parameters):
            raise CompileError(
                f"{expression.name}() expects {len(callee.parameters)} arguments, "
                f"got {len(expression.arguments)}")
        base_depth = self._eval_depth
        for argument in expression.arguments:
            self._compile_expression(argument)
        # Copy the evaluated arguments into the callee's parameter slots
        # (located just below the current stack pointer, inside the frame the
        # callee is about to allocate).
        for index in range(len(expression.arguments)):
            self._emit("ldi", T0, SP, self._eval_slot(base_depth + index))
            self._emit("sti", T0, SP, 1 + index - callee.frame_size)
        self._eval_depth = base_depth
        self._emit("jal", callee.label)
        self._push(RV)

    # ---------------------------------------------------------------- variables

    def _load_identifier(self, name: str) -> None:
        if name in self.constants:
            self._emit("li", T0, self.constants[name])
            self._push(T0)
            return
        slot = self._current.slot_of(name) if self._current else None
        if slot is not None:
            self._emit("ldi", T0, SP, slot)
            self._push(T0)
            return
        info = self.globals.get(name)
        if info is not None:
            if info.is_array:
                self._emit("li", T0, info.address)   # arrays decay to addresses
            else:
                self._emit("ldi", T0, 0, info.address)
            self._push(T0)
            return
        raise CompileError(f"undefined identifier {name!r}")

    def _store_variable(self, name: str, register: int) -> None:
        if name in self.constants:
            raise CompileError(f"cannot assign to constant {name!r}")
        slot = self._current.slot_of(name) if self._current else None
        if slot is not None:
            self._emit("sti", register, SP, slot)
            return
        info = self.globals.get(name)
        if info is not None:
            if info.is_array:
                raise CompileError(f"cannot assign to array {name!r} as a whole")
            self._emit("sti", register, 0, info.address)
            return
        raise CompileError(f"undefined identifier {name!r}")
