"""Recursive-descent parser for minic.

Grammar (informal)::

    unit        := (const | global | function)*
    const       := "const" IDENT "=" ["-"] NUMBER ";"
    global      := "int" IDENT ("[" NUMBER "]")? ("=" init)? ";"
    init        := expr | "{" NUMBER ("," NUMBER)* "}"
    function    := ("int" | "void") IDENT "(" params? ")" block
    params      := "int" IDENT ("," "int" IDENT)*
    block       := "{" stmt* "}"
    stmt        := "int" IDENT ("=" expr)? ";"
                 | "if" "(" expr ")" stmt-or-block ("else" stmt-or-block)?
                 | "while" "(" expr ")" stmt-or-block
                 | "return" expr? ";"
                 | "break" ";" | "continue" ";"
                 | "print" "(" expr ")" ";"
                 | "prints" "(" STRING ")" ";"
                 | "read" "(" lvalue ")" ";"
                 | "check" "(" NUMBER ")" ";"
                 | lvalue "=" expr ";"
                 | expr ";"
    expr        := or-expr
    or-expr     := and-expr ("||" and-expr)*
    and-expr    := cmp-expr ("&&" cmp-expr)*
    cmp-expr    := add-expr (("=="|"!="|"<"|">"|"<="|">=") add-expr)?
    add-expr    := mul-expr (("+"|"-") mul-expr)*
    mul-expr    := unary (("*"|"/"|"%") unary)*
    unary       := ("-"|"!") unary | postfix
    postfix     := primary ("[" expr "]")*
    primary     := NUMBER | IDENT | IDENT "(" args? ")" | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .lexer import Token, tokenize
from .nodes import (ArrayIndex, Assign, Binary, Break, Call, Check, ConstDef,
                    Continue, Expr, ExprStmt, Function, GlobalVar, Identifier,
                    If, LocalDecl, NumberLiteral, Print, PrintString, Read,
                    Return, Stmt, TranslationUnit, Unary, While)


class ParseError(ValueError):
    """Raised on syntactically invalid minic source."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------- primitives

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected!r}", self.peek())
        return self.advance()

    # ------------------------------------------------------------------- unit

    def parse_unit(self) -> TranslationUnit:
        constants: List[ConstDef] = []
        globals_: List[GlobalVar] = []
        functions: List[Function] = []
        while not self.check("eof"):
            if self.check("keyword", "const"):
                constants.append(self.parse_const())
            elif self.check("keyword", "int") or self.check("keyword", "void"):
                # Distinguish "int name (" (function) from "int name ..." (global).
                if self.peek(2).kind == "symbol" and self.peek(2).text == "(":
                    functions.append(self.parse_function())
                else:
                    globals_.append(self.parse_global())
            else:
                raise ParseError("expected a declaration", self.peek())
        return TranslationUnit(constants=tuple(constants), globals=tuple(globals_),
                               functions=tuple(functions))

    def parse_const(self) -> ConstDef:
        line = self.expect("keyword", "const").line
        name = self.expect("identifier").text
        self.expect("symbol", "=")
        negative = self.accept("symbol", "-") is not None
        value = int(self.expect("number").text)
        self.expect("symbol", ";")
        return ConstDef(name=name, value=-value if negative else value, line=line)

    def parse_global(self) -> GlobalVar:
        line = self.expect("keyword", "int").line
        name = self.expect("identifier").text
        size = 1
        is_array = False
        if self.accept("symbol", "["):
            size = int(self.expect("number").text)
            self.expect("symbol", "]")
            is_array = True
        initializer: Tuple[int, ...] = ()
        if self.accept("symbol", "="):
            if self.accept("symbol", "{"):
                values = [self.parse_signed_number()]
                while self.accept("symbol", ","):
                    values.append(self.parse_signed_number())
                self.expect("symbol", "}")
                initializer = tuple(values)
            else:
                initializer = (self.parse_signed_number(),)
        self.expect("symbol", ";")
        return GlobalVar(name=name, size=size, initializer=initializer,
                         is_array=is_array, line=line)

    def parse_signed_number(self) -> int:
        negative = self.accept("symbol", "-") is not None
        value = int(self.expect("number").text)
        return -value if negative else value

    def parse_function(self) -> Function:
        token = self.advance()  # "int" or "void"
        line = token.line
        name = self.expect("identifier").text
        self.expect("symbol", "(")
        parameters: List[str] = []
        if not self.check("symbol", ")"):
            while True:
                self.expect("keyword", "int")
                parameters.append(self.expect("identifier").text)
                if not self.accept("symbol", ","):
                    break
        self.expect("symbol", ")")
        body = self.parse_block()
        return Function(name=name, parameters=tuple(parameters), body=body, line=line)

    # -------------------------------------------------------------- statements

    def parse_block(self) -> Tuple[Stmt, ...]:
        self.expect("symbol", "{")
        statements: List[Stmt] = []
        while not self.check("symbol", "}"):
            statements.append(self.parse_statement())
        self.expect("symbol", "}")
        return tuple(statements)

    def parse_statement_or_block(self) -> Tuple[Stmt, ...]:
        if self.check("symbol", "{"):
            return self.parse_block()
        return (self.parse_statement(),)

    def parse_statement(self) -> Stmt:
        token = self.peek()

        if self.check("keyword", "int"):
            self.advance()
            name = self.expect("identifier").text
            initializer = None
            if self.accept("symbol", "="):
                initializer = self.parse_expression()
            self.expect("symbol", ";")
            return LocalDecl(name=name, initializer=initializer, line=token.line)

        if self.check("keyword", "if"):
            self.advance()
            self.expect("symbol", "(")
            condition = self.parse_expression()
            self.expect("symbol", ")")
            then_body = self.parse_statement_or_block()
            else_body: Tuple[Stmt, ...] = ()
            if self.accept("keyword", "else"):
                else_body = self.parse_statement_or_block()
            return If(condition=condition, then_body=then_body,
                      else_body=else_body, line=token.line)

        if self.check("keyword", "while"):
            self.advance()
            self.expect("symbol", "(")
            condition = self.parse_expression()
            self.expect("symbol", ")")
            body = self.parse_statement_or_block()
            return While(condition=condition, body=body, line=token.line)

        if self.check("keyword", "return"):
            self.advance()
            value = None
            if not self.check("symbol", ";"):
                value = self.parse_expression()
            self.expect("symbol", ";")
            return Return(value=value, line=token.line)

        if self.check("keyword", "break"):
            self.advance()
            self.expect("symbol", ";")
            return Break(line=token.line)

        if self.check("keyword", "continue"):
            self.advance()
            self.expect("symbol", ";")
            return Continue(line=token.line)

        if self.check("keyword", "print"):
            self.advance()
            self.expect("symbol", "(")
            value = self.parse_expression()
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            return Print(value=value, line=token.line)

        if self.check("keyword", "prints"):
            self.advance()
            self.expect("symbol", "(")
            text = self.expect("string").text
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            return PrintString(text=text, line=token.line)

        if self.check("keyword", "read"):
            self.advance()
            self.expect("symbol", "(")
            target = self.parse_expression()
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            if not isinstance(target, (Identifier, ArrayIndex)):
                raise ParseError("read() needs a variable or array element", token)
            return Read(target=target, line=token.line)

        if self.check("keyword", "check"):
            self.advance()
            self.expect("symbol", "(")
            detector_id = int(self.expect("number").text)
            self.expect("symbol", ")")
            self.expect("symbol", ";")
            return Check(detector_id=detector_id, line=token.line)

        # Assignment or expression statement.
        expression = self.parse_expression()
        if self.accept("symbol", "="):
            if not isinstance(expression, (Identifier, ArrayIndex)):
                raise ParseError("invalid assignment target", token)
            value = self.parse_expression()
            self.expect("symbol", ";")
            return Assign(target=expression, value=value, line=token.line)
        self.expect("symbol", ";")
        return ExprStmt(expression=expression, line=token.line)

    # ------------------------------------------------------------- expressions

    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check("symbol", "||"):
            self.advance()
            right = self.parse_and()
            left = Binary("||", left, right)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_comparison()
        while self.check("symbol", "&&"):
            self.advance()
            right = self.parse_comparison()
            left = Binary("&&", left, right)
        return left

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.peek().kind == "symbol" and self.peek().text in (
                "==", "!=", "<", ">", "<=", ">="):
            operator = self.advance().text
            right = self.parse_additive()
            return Binary(operator, left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().kind == "symbol" and self.peek().text in ("+", "-"):
            operator = self.advance().text
            right = self.parse_multiplicative()
            left = Binary(operator, left, right)
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.peek().kind == "symbol" and self.peek().text in ("*", "/", "%"):
            operator = self.advance().text
            right = self.parse_unary()
            left = Binary(operator, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.peek().kind == "symbol" and self.peek().text in ("-", "!"):
            operator = self.advance().text
            operand = self.parse_unary()
            return Unary(operator, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expression = self.parse_primary()
        while self.check("symbol", "["):
            self.advance()
            index = self.parse_expression()
            self.expect("symbol", "]")
            expression = ArrayIndex(base=expression, index=index)
        return expression

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return NumberLiteral(int(token.text))
        if token.kind == "identifier":
            self.advance()
            if self.check("symbol", "("):
                self.advance()
                arguments: List[Expr] = []
                if not self.check("symbol", ")"):
                    arguments.append(self.parse_expression())
                    while self.accept("symbol", ","):
                        arguments.append(self.parse_expression())
                self.expect("symbol", ")")
                return Call(name=token.text, arguments=tuple(arguments))
            return Identifier(token.text)
        if self.check("symbol", "("):
            self.advance()
            expression = self.parse_expression()
            self.expect("symbol", ")")
            return expression
        raise ParseError("expected an expression", token)


def parse_source(source: str) -> TranslationUnit:
    """Parse minic *source* into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
