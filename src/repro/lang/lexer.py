"""Lexer for *minic*, the small C-like language used to write workloads.

The paper's workloads (tcas, replace) are C programs compiled to MIPS and
then translated into SymPLFIED's assembly language.  Offline we have no C
compiler targeting MIPS, so the repository ships *minic*: a small, C-like
language (integers only, global arrays, functions, ``if``/``while``,
short-circuit ``&&``/``||``) whose compiler targets the SymPLFIED ISA
directly, producing the same kind of code a simple C compiler would —
a call stack in memory, a return-address register, compiler-generated labels
and branches.  That is the property the paper's experiments rely on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class LexerError(ValueError):
    """Raised on malformed minic source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


#: Token types produced by the lexer.
KEYWORDS = frozenset({
    "int", "void", "if", "else", "while", "return", "const",
    "print", "prints", "read", "check", "break", "continue",
})

SYMBOLS = (
    "&&", "||", "==", "!=", "<=", ">=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str      # "keyword" | "identifier" | "number" | "string" | "symbol" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+")
_STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
_CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)'")


def _unescape(body: str) -> str:
    return (body.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
            .replace("\\0", "\0"))


def tokenize(source: str) -> List[Token]:
    """Tokenize minic *source* into a list of tokens (ending with ``eof``)."""
    tokens: List[Token] = []
    line = 1
    position = 0
    length = len(source)

    while position < length:
        char = source[position]

        if char == "\n":
            line += 1
            position += 1
            continue
        if char.isspace():
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position)
            if end == -1:
                raise LexerError("unterminated block comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue

        if char == '"':
            match = _STRING_RE.match(source, position)
            if match is None:
                raise LexerError("unterminated string literal", line)
            tokens.append(Token("string", _unescape(match.group(0)[1:-1]), line))
            position = match.end()
            continue

        if char == "'":
            match = _CHAR_RE.match(source, position)
            if match is None:
                raise LexerError("bad character literal", line)
            body = _unescape(match.group(0)[1:-1])
            tokens.append(Token("number", str(ord(body)), line))
            position = match.end()
            continue

        if char.isdigit():
            match = _NUMBER_RE.match(source, position)
            tokens.append(Token("number", match.group(0), line))
            position = match.end()
            continue

        if char.isalpha() or char == "_":
            match = _IDENTIFIER_RE.match(source, position)
            text = match.group(0)
            kind = "keyword" if text in KEYWORDS else "identifier"
            tokens.append(Token(kind, text, line))
            position = match.end()
            continue

        for symbol in SYMBOLS:
            if source.startswith(symbol, position):
                tokens.append(Token("symbol", symbol, line))
                position += len(symbol)
                break
        else:
            raise LexerError(f"unexpected character {char!r}", line)

    tokens.append(Token("eof", "", line))
    return tokens
