"""Error classes of the SymPLFIED fault model (paper Section 3.3, Table 1).

The fault model covers transient errors in

* the register file and main memory (modelled by replacing the contents of
  the location with ``err``; no distinction between single- and multi-bit
  flips),
* computation, categorised by where the fault originates in the pipeline
  (Table 1): instruction decoder, address/data bus, functional unit and the
  instruction-fetch mechanism, and
* control flow (an erroneous PC).

Each :class:`ErrorClass` enumerates concrete :class:`~repro.errors.injector.
Injection` experiments for a given program, following the paper's activation
optimisation (inject immediately before the instruction that uses the
corrupted location).  Errors in processor control logic (register renaming
and the like) are outside the fault model, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..constraints import Location
from ..isa.instructions import Category
from ..isa.program import Program
from .injector import Injection, registers_used_at


class ErrorClass:
    """Base class: a named category of transient hardware errors."""

    name: str = "abstract"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        """Enumerate the injections of this class for *program*.

        *pcs* optionally restricts the sweep to a subset of code addresses
        (used to decompose the campaign into independent search tasks).
        """
        raise NotImplementedError

    def _addresses(self, program: Program,
                   pcs: Optional[Sequence[int]]) -> Sequence[int]:
        return range(len(program)) if pcs is None else pcs


@dataclass
class RegisterFileError(ErrorClass):
    """Transient error in a register (the class evaluated in Section 6).

    ``policy`` selects which registers are injected at each instruction; the
    paper injects the registers *used* by the instruction so the fault is
    guaranteed to be activated.
    """

    policy: str = "used"
    name: str = "register"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            for register in registers_used_at(program, pc, self.policy):
                injections.append(Injection(
                    breakpoint_pc=pc, target=Location.register(register),
                    description=f"register-file error in ${register}"))
        return injections


@dataclass
class MemoryError(ErrorClass):
    """Transient error in a main-memory / cache word.

    Injected into the word addressed by each load instruction (so the error
    is activated by the load), mirroring the bus-error rows of Table 1.
    """

    addresses: Optional[Sequence[int]] = None
    name: str = "memory"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            instruction = program.fetch(pc)
            if instruction is None or instruction.category is not Category.LOAD:
                continue
            if self.addresses is None:
                # The load address is only known dynamically; corrupt the
                # loaded destination register instead, which is equivalent to
                # an error on the memory/cache bus feeding that load.
                target = Location.register(instruction.operands[0])
                injections.append(Injection(
                    breakpoint_pc=pc + 1, target=target,
                    description="memory word feeding this load (via bus)"))
            else:
                for address in self.addresses:
                    injections.append(Injection(
                        breakpoint_pc=pc, target=Location.memory(address),
                        description=f"memory word {address}"))
        return injections


@dataclass
class BusError(ErrorClass):
    """Address/data bus error: corrupts the source registers of an instruction
    (Table 1, "Data read from memory, cache or register file is corrupted")."""

    name: str = "bus"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            for register in registers_used_at(program, pc, "reads"):
                injections.append(Injection(
                    breakpoint_pc=pc, target=Location.register(register),
                    description="register data bus error"))
        return injections


@dataclass
class FunctionalUnitError(ErrorClass):
    """Functional-unit output corrupted: err in the destination register or
    memory word written by the instruction (Table 1)."""

    name: str = "functional-unit"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            instruction = program.fetch(pc)
            if instruction is None:
                continue
            written = instruction.registers_written()
            if not written:
                continue
            # The corrupted output is visible right after the instruction.
            for register in written:
                if register == 0:
                    continue
                injections.append(Injection(
                    breakpoint_pc=pc + 1, target=Location.register(register),
                    description="functional unit output error"))
        return injections


@dataclass
class DecodeError(ErrorClass):
    """Instruction-decoder error (Table 1).

    A decode error converts one valid instruction into another.  Table 1
    models its three sub-cases through ``err`` in the original and/or new
    destination: we enumerate ``err`` in the instruction's destination (the
    original target no longer receives its value) and, for instructions with
    no destination, ``err`` in the registers the instruction reads (a freshly
    introduced wrong target).
    """

    name: str = "decode"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            instruction = program.fetch(pc)
            if instruction is None:
                continue
            written = [r for r in instruction.registers_written() if r != 0]
            if written:
                for register in written:
                    injections.append(Injection(
                        breakpoint_pc=pc + 1, target=Location.register(register),
                        description="decode error: original/new target corrupted"))
            else:
                for register in registers_used_at(program, pc, "reads"):
                    injections.append(Injection(
                        breakpoint_pc=pc, target=Location.register(register),
                        description="decode error: wrong target introduced"))
        return injections


@dataclass
class FetchError(ErrorClass):
    """Instruction-fetch error: the PC is corrupted (Table 1, last row).

    The symbolic executor resolves a corrupted PC by forking to arbitrary but
    valid code locations, or raising an illegal-instruction exception.
    """

    name: str = "fetch"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        return [Injection(breakpoint_pc=pc, target=Location.pc(),
                          description="instruction fetch error (corrupted PC)")
                for pc in self._addresses(program, pcs)]


@dataclass
class ControlFlowError(ErrorClass):
    """Errors in branch/jump targets: PC corrupted at control-transfer points."""

    name: str = "control-flow"

    def enumerate(self, program: Program,
                  pcs: Optional[Sequence[int]] = None) -> List[Injection]:
        injections: List[Injection] = []
        for pc in self._addresses(program, pcs):
            instruction = program.fetch(pc)
            if instruction is None:
                continue
            if instruction.category in (Category.BRANCH, Category.JUMP,
                                        Category.CALL, Category.JUMP_REGISTER):
                injections.append(Injection(
                    breakpoint_pc=pc, target=Location.pc(),
                    description="corrupted branch/jump target"))
        return injections


#: The pre-defined error categories offered by the query generator
#: (Section 5, "Supporting Tools").
STANDARD_ERROR_CLASSES: Dict[str, ErrorClass] = {
    "register": RegisterFileError(),
    "memory": MemoryError(),
    "bus": BusError(),
    "functional-unit": FunctionalUnitError(),
    "decode": DecodeError(),
    "fetch": FetchError(),
    "control-flow": ControlFlowError(),
}


def error_class(name: str) -> ErrorClass:
    """Look up a pre-defined error class by name."""
    try:
        return STANDARD_ERROR_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown error class {name!r}; available: "
            f"{sorted(STANDARD_ERROR_CLASSES)}") from None
