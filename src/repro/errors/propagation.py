"""Error-propagation rules for arithmetic (paper Section 5.2).

The rules mirror the Maude equations of the error-propagation sub-model:

.. code-block:: text

    err + err = err      err + I = err      I + err = err
    err - err = err      err - I = err      I - err = err
    err * I   = if I == 0 then 0 else err
    I   * err = if I == 0 then 0 else err
    err / I   = if I == 0 then throw "div-zero" else err
    I   / err = if isEqual(err, 0) then throw "div-zero" else err
    err * err = if isEqual(err, 0) then 0 else err
    err / err = if isEqual(err, 0) then throw "div-zero" else err

Operations whose outcome depends on whether an ``err`` operand equals zero
are *non-deterministic* (they require forking the execution); such cases are
reported to the executor through :class:`NonDeterministicOperation` rather
than being resolved here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..isa.values import ERR, Value, is_err


@dataclass(frozen=True)
class NonDeterministicOperation(Exception):
    """Signals that an arithmetic operation needs a fork to be resolved.

    Attributes:
        reason: one of ``"divide_by_symbolic"`` (the divisor is ``err``) or
            ``"multiply_symbolic"`` (both factors are ``err``: the result is 0
            if the error value happens to be 0 and ``err`` otherwise).
        operand_index: index (0 = left, 1 = right) of the symbolic operand
            whose comparison with zero decides the outcome.
    """

    reason: str
    operand_index: int


def _concrete_div(left: int, right: int) -> int:
    """Signed integer division truncating toward zero (C semantics)."""
    quotient = abs(left) // abs(right)
    return -quotient if (left < 0) != (right < 0) else quotient


def _concrete_mod(left: int, right: int) -> int:
    """C-style remainder consistent with :func:`_concrete_div`."""
    return left - _concrete_div(left, right) * right


_CONCRETE_OPS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mult": lambda a, b: a * b,
    "div": _concrete_div,
    "mod": _concrete_mod,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: a << b,
    "srl": lambda a, b: a >> b,
}

#: Mapping from immediate-form opcodes to the underlying binary operator.
IMMEDIATE_ALIASES: Dict[str, str] = {
    "addi": "add", "subi": "sub", "multi": "mult", "divi": "div",
    "modi": "mod", "ori": "or", "andi": "and", "xori": "xor",
    "slli": "sll", "srli": "srl",
}


def concrete_binary(op: str, left: int, right: int) -> int:
    """Apply a binary operator to two concrete integers."""
    return _CONCRETE_OPS[op](left, right)


def symbolic_binary(op: str, left: Value, right: Value) -> Value:
    """Apply a binary operator under the error-propagation rules.

    Returns the resulting value (an int or ``err``).  Raises
    :class:`NonDeterministicOperation` when the result cannot be determined
    without forking (division/modulo with a symbolic divisor, or
    multiplication of two symbolic values), and ``ZeroDivisionError`` for a
    concrete division by zero (the executor converts it into the machine's
    ``div-zero`` exception).
    """
    operator = IMMEDIATE_ALIASES.get(op, op)
    left_err = is_err(left)
    right_err = is_err(right)

    if not left_err and not right_err:
        if operator in ("div", "mod") and right == 0:
            raise ZeroDivisionError
        return concrete_binary(operator, left, right)

    if operator == "mult":
        if left_err and right_err:
            raise NonDeterministicOperation("multiply_symbolic", 1)
        concrete = right if left_err else left
        return 0 if concrete == 0 else ERR

    if operator in ("div", "mod"):
        if right_err:
            raise NonDeterministicOperation("divide_by_symbolic", 1)
        # left is err, right concrete
        if right == 0:
            raise ZeroDivisionError
        return ERR

    if operator in ("and", "mult"):
        # ``x & 0 == 0`` regardless of the error value.
        concrete = right if left_err else left
        if not (left_err and right_err) and concrete == 0:
            return 0
        return ERR

    if operator in ("sll", "srl") and left_err is False and right_err:
        # Shifting by an unknown amount: result unknown unless the value is 0.
        return 0 if left == 0 else ERR

    return ERR


def unary_result(value: Value) -> Value:
    """Propagation for unary operations (negation, bitwise not)."""
    return ERR if is_err(value) else value
