"""Error model: the err symbol, propagation, comparisons, injection, error classes."""

from .propagation import (IMMEDIATE_ALIASES, NonDeterministicOperation,
                          concrete_binary, symbolic_binary, unary_result)
from .comparison import ComparisonOutcome, resolve_comparison
from .injector import (Injection, InjectionError, apply_corruption,
                       prepare_injected_state, register_injection_points,
                       registers_used_at)
from .models import (BusError, ControlFlowError, DecodeError, ErrorClass,
                     FetchError, FunctionalUnitError, MemoryError,
                     RegisterFileError, STANDARD_ERROR_CLASSES, error_class)

__all__ = [
    "IMMEDIATE_ALIASES", "NonDeterministicOperation", "concrete_binary",
    "symbolic_binary", "unary_result",
    "ComparisonOutcome", "resolve_comparison",
    "Injection", "InjectionError", "apply_corruption", "prepare_injected_state",
    "register_injection_points", "registers_used_at",
    "BusError", "ControlFlowError", "DecodeError", "ErrorClass", "FetchError",
    "FunctionalUnitError", "MemoryError", "RegisterFileError",
    "STANDARD_ERROR_CLASSES", "error_class",
]
