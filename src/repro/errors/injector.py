"""Error-injection sub-model (paper Section 5.2).

An injection experiment is described by an :class:`Injection`: a breakpoint
(the static code address, and which dynamic occurrence of it) plus the
location to corrupt.  The injector runs the program concretely up to the
breakpoint — which is where the paper places the injection so that the fault
is guaranteed to be *activated* by the very next instruction — and then
replaces the contents of the chosen register, memory word or the program
counter with the symbolic value ``err`` (or, for the concrete SimpleScalar
substitute, with a chosen concrete value).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..constraints import Location
from ..isa.instructions import ZERO_REGISTER
from ..isa.program import Program
from ..isa.values import ERR, Value

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoid an import cycle)
    from ..detectors import DetectorSet
    from ..machine.state import MachineState


@dataclass(frozen=True)
class Injection:
    """One fault-injection experiment: where and what to corrupt.

    Attributes:
        breakpoint_pc: static code address of the breakpoint; the corruption
            happens immediately *before* this instruction executes.
        target: the location to corrupt (register, memory word or PC).
        occurrence: which dynamic occurrence of the breakpoint triggers the
            injection (1 = the first time the instruction is reached).
        description: free-text note used in reports.
    """

    breakpoint_pc: int
    target: Location
    occurrence: int = 1
    description: str = ""

    def label(self) -> str:
        where = repr(self.target)
        return (f"pc={self.breakpoint_pc}#{self.occurrence} -> {where}"
                + (f" ({self.description})" if self.description else ""))


class InjectionError(RuntimeError):
    """Raised when an injection cannot be applied (e.g. breakpoint not reached)."""


def apply_corruption(state: MachineState, target: Location, value: Value) -> None:
    """Corrupt *target* in *state* with *value* (``ERR`` or a concrete int).

    Delegates to :func:`~repro.machine.executor.apply_fault`, the single
    CoW write path shared with the fault-model subsystem (:mod:`repro.
    faults`), so every corruption maintains the state's incremental
    fingerprints the same way.
    """
    from ..machine.executor import apply_fault

    apply_fault(state, target.kind, target.index, value)


def prepare_injected_state(program: Program,
                           injection: Injection,
                           initial: "MachineState",
                           value: Value = ERR,
                           detectors: Optional["DetectorSet"] = None,
                           max_prefix_steps: int = 200_000,
                           ) -> Optional["MachineState"]:
    """Run concretely to the injection breakpoint and apply the corruption.

    Returns the corrupted state positioned at the breakpoint (still running),
    or ``None`` when the breakpoint is never reached during the error-free
    execution (the fault would never be activated — the paper skips such
    experiments).

    Multi-error and read-modify-write specs are recognised structurally:
    an injection carrying ``components`` (a burst) or a ``bit`` (a concrete
    bit flip) is applied through
    :func:`~repro.machine.executor.apply_fault_set`, which writes every
    corruption of the experiment through the same CoW path; everything
    else writes *value* into the single target as before.
    """
    from ..detectors import EMPTY_DETECTORS
    from ..machine.executor import apply_fault_set, run_concrete_until

    state = initial.copy()
    run_concrete_until(program, state, injection.breakpoint_pc,
                       occurrence=injection.occurrence,
                       detectors=detectors if detectors is not None else EMPTY_DETECTORS,
                       max_steps=max_prefix_steps)
    if not state.is_running or state.pc != injection.breakpoint_pc:
        return None
    if (getattr(injection, "components", None)
            or getattr(injection, "bit", None) is not None):
        apply_fault_set(state, (injection,))
    else:
        apply_corruption(state, injection.target, value)
    return state


def registers_used_at(program: Program, pc: int, policy: str = "used") -> Tuple[int, ...]:
    """Registers eligible for injection at a given instruction.

    ``policy`` is one of ``"reads"`` (source registers only), ``"writes"``,
    ``"used"`` (sources and destinations — what the paper's SimpleScalar
    campaign injects) or ``"all"`` (every architectural register).
    """
    instruction = program.fetch(pc)
    if instruction is None:
        return ()
    if policy == "reads":
        registers = instruction.registers_read()
    elif policy == "writes":
        registers = instruction.registers_written()
    elif policy == "used":
        registers = instruction.registers_used()
    elif policy == "all":
        from ..isa.instructions import NUM_REGISTERS
        registers = tuple(range(NUM_REGISTERS))
    else:
        raise ValueError(f"unknown register policy {policy!r}")
    return tuple(r for r in registers if r != ZERO_REGISTER)


def register_injection_points(program: Program,
                              policy: str = "used",
                              pcs: Optional[Sequence[int]] = None,
                              ) -> List[Injection]:
    """Enumerate register-error injections following the paper's optimisation.

    .. deprecated:: plan sweeps through the pluggable fault subsystem instead
       (``repro.faults.FAULT_MODELS["register"]`` /
       :class:`~repro.faults.models.RegisterValueFault`), which produces the
       same plan and also covers memory/control/operand models.
    """
    warnings.warn(
        "register_injection_points() is deprecated; plan sweeps through "
        "repro.faults (fault_model=\"register\" / RegisterValueFault) instead",
        DeprecationWarning, stacklevel=2)
    return _register_injection_points(program, policy=policy, pcs=pcs)


def _register_injection_points(program: Program,
                               policy: str = "used",
                               pcs: Optional[Sequence[int]] = None,
                               ) -> List[Injection]:
    """Enumerate register-error injections following the paper's optimisation.

    For every static instruction (or the subset *pcs*), one injection per
    register used by that instruction, placed immediately before the
    instruction so that the fault is activated.
    """
    injections: List[Injection] = []
    addresses = range(len(program)) if pcs is None else pcs
    for pc in addresses:
        for register in registers_used_at(program, pc, policy):
            injections.append(Injection(
                breakpoint_pc=pc,
                target=Location.register(register),
                description=f"register ${register} at {program.source_line(pc)}"))
    return injections
