"""Non-deterministic comparison handling (paper Section 5.2).

Comparisons whose operands include the symbolic ``err`` value cannot be
resolved deterministically; the execution forks into a *true* case and a
*false* case.  Each case must remember the outcome so that later comparisons
over the same unmodified location resolve consistently — otherwise the search
reports false positives.  The memory is the
:class:`~repro.constraints.constraint_map.ConstraintMap`: the true branch
adds ``location <op> constant`` and the false branch adds the negated
constraint.  Branches whose accumulated constraints become unsatisfiable are
pruned (they correspond to no real execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..constraints import (ComparisonOp, Constraint, ConstraintMap, Location,
                           RelationalConstraint)
from ..isa.values import Value, is_err


@dataclass(frozen=True)
class ComparisonOutcome:
    """One feasible resolution of a (possibly symbolic) comparison."""

    result: bool
    constraints: ConstraintMap
    forked: bool = False

    def __iter__(self):
        # Allows ``for result, constraints in outcomes`` style unpacking.
        yield self.result
        yield self.constraints


def resolve_comparison(constraints: ConstraintMap,
                       op: ComparisonOp,
                       left: Value,
                       right: Value,
                       left_location: Optional[Location] = None,
                       right_location: Optional[Location] = None,
                       ) -> List[ComparisonOutcome]:
    """Resolve ``left <op> right`` under the current constraint map.

    Returns every feasible outcome.  Deterministic comparisons return exactly
    one outcome; symbolic comparisons return one or two depending on what the
    accumulated constraints already entail.
    """
    left_err = is_err(left)
    right_err = is_err(right)

    if not left_err and not right_err:
        return [ComparisonOutcome(op.evaluate(left, right), constraints)]

    if left_err and not right_err:
        return _resolve_one_sided(constraints, op, left_location, right)

    if right_err and not left_err:
        # ``c <op> err``  ==  ``err <flip(op)> c``
        return _resolve_one_sided(constraints, op.flip(), right_location, left)

    return _resolve_two_sided(constraints, op, left_location, right_location)


def _resolve_one_sided(constraints: ConstraintMap, op: ComparisonOp,
                       location: Optional[Location],
                       constant: int) -> List[ComparisonOutcome]:
    """A symbolic location compared against a concrete constant."""
    if location is None:
        # The err value is not attached to a trackable location (for example
        # an err produced by a computation): fork without remembering.
        return [ComparisonOutcome(True, constraints, forked=True),
                ComparisonOutcome(False, constraints, forked=True)]

    true_fact = Constraint(op, constant)
    false_fact = Constraint(op.negate(), constant)
    known = constraints.constraints_for(location)

    if known.entails(true_fact):
        return [ComparisonOutcome(True, constraints)]
    if known.entails(false_fact):
        return [ComparisonOutcome(False, constraints)]

    outcomes: List[ComparisonOutcome] = []
    true_map = constraints.with_constraint(location, true_fact)
    if true_map.satisfiable():
        outcomes.append(ComparisonOutcome(True, true_map, forked=True))
    false_map = constraints.with_constraint(location, false_fact)
    if false_map.satisfiable():
        outcomes.append(ComparisonOutcome(False, false_map, forked=True))
    if not outcomes:
        # Both directions contradict earlier facts; this path is infeasible.
        # Callers treat an empty list as "prune this state".
        return []
    return outcomes


def _resolve_two_sided(constraints: ConstraintMap, op: ComparisonOp,
                       left_location: Optional[Location],
                       right_location: Optional[Location],
                       ) -> List[ComparisonOutcome]:
    """Both operands are symbolic."""
    if left_location is None or right_location is None:
        return [ComparisonOutcome(True, constraints, forked=True),
                ComparisonOutcome(False, constraints, forked=True)]

    if left_location == right_location:
        # Same storage location compared with itself: fully deterministic.
        reflexive_true = op in (ComparisonOp.EQ, ComparisonOp.GE, ComparisonOp.LE)
        return [ComparisonOutcome(reflexive_true, constraints)]

    true_map = constraints.with_relational(
        RelationalConstraint(left_location, op, right_location))
    false_map = constraints.with_relational(
        RelationalConstraint(left_location, op.negate(), right_location))

    outcomes: List[ComparisonOutcome] = []
    if true_map.satisfiable():
        outcomes.append(ComparisonOutcome(True, true_map, forked=True))
    if false_map.satisfiable():
        outcomes.append(ComparisonOutcome(False, false_map, forked=True))
    return outcomes
