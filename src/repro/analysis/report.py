"""Reporting helpers used by the examples and the benchmark harness.

These functions turn campaign results into the same kinds of artefacts the
paper presents: the Table-2 outcome distribution, the Section 6.2/6.4 task
statistics, lists of undetected-error witnesses, and a side-by-side
comparison of the symbolic and concrete campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..concrete.faultinjection import ConcreteCampaignResult
from ..core.campaign import CampaignResult
from ..core.outcomes import OutcomeKind
from ..core.tasks import TaskCampaignReport
from ..core.traces import Witness
from ..errors.injector import Injection
from ..isa.values import is_err


def campaign_outcome_summary(campaign: CampaignResult,
                             golden_output: Optional[Sequence] = None
                             ) -> Dict[str, int]:
    """Count the solutions of a symbolic campaign by outcome kind."""
    counts: Dict[str, int] = {kind.value: 0 for kind in OutcomeKind}
    for _injection, outcome in campaign.outcomes(golden_output):
        counts[outcome.kind.value] += 1
    return counts


def solutions_with_final_value(campaign: CampaignResult,
                               value: int) -> List[Tuple[Injection, object]]:
    """Solutions whose final printed integer equals *value* (e.g. tcas's 2)."""
    matching = []
    for injection, solution in campaign.solutions():
        printed = solution.state.printed_integers()
        if printed and not is_err(printed[-1]) and printed[-1] == value:
            matching.append((injection, solution))
    return matching


def format_witnesses(witnesses: Sequence[Witness], limit: int = 5) -> str:
    """Render up to *limit* witnesses for human consumption."""
    if not witnesses:
        return "(no witnesses)"
    sections = []
    for witness in list(witnesses)[:limit]:
        sections.append(witness.render())
        sections.append("-" * 60)
    if len(witnesses) > limit:
        sections.append(f"... and {len(witnesses) - limit} more witnesses")
    return "\n".join(sections)


@dataclass
class SymbolicVsConcreteComparison:
    """The Section 6.2/6.3 headline comparison for one target outcome.

    For tcas the target outcome is "the program prints 2 while the correct
    answer is 1": SymPLFIED finds it symbolically, the concrete campaign of
    comparable effort does not.
    """

    target_description: str
    symbolic_found: int
    concrete_found: int
    symbolic_injections: int
    concrete_experiments: int

    def describe(self) -> str:
        return "\n".join([
            f"target outcome              : {self.target_description}",
            f"symbolic campaign           : {self.symbolic_found} scenario(s) "
            f"found over {self.symbolic_injections} symbolic injections",
            f"concrete campaign           : {self.concrete_found} scenario(s) "
            f"found over {self.concrete_experiments} concrete experiments",
        ])

    @property
    def reproduces_paper_shape(self) -> bool:
        """The paper's qualitative claim: symbolic finds it, concrete does not."""
        return self.symbolic_found > 0 and self.concrete_found == 0


def compare_symbolic_concrete(symbolic: CampaignResult,
                              concrete: ConcreteCampaignResult,
                              target_value: int,
                              target_description: str = "",
                              ) -> SymbolicVsConcreteComparison:
    """Build the symbolic-vs-concrete comparison for a target printed value."""
    symbolic_hits = len(solutions_with_final_value(symbolic, target_value))
    concrete_hits = len(concrete.experiments_with_label(str(target_value)))
    return SymbolicVsConcreteComparison(
        target_description=target_description
        or f"program prints {target_value} without crashing",
        symbolic_found=symbolic_hits,
        concrete_found=concrete_hits,
        symbolic_injections=symbolic.injections_run,
        concrete_experiments=concrete.total_faults,
    )


def format_task_report(report: TaskCampaignReport, title: str = "") -> str:
    """Render a task-decomposed campaign the way Sections 6.2/6.4 do."""
    header = [title] if title else []
    return "\n".join(header + [report.describe()])


def model_inventory() -> Dict[str, int]:
    """Counts analogous to the paper's "35 modules / 54 rules / 384 equations".

    The paper reports the size of its Maude specification; the analogous
    quantities here are the number of Python modules in the package, the
    number of instruction opcodes (deterministic "equations") and the number
    of distinct non-deterministic resolution points ("rewrite rules").
    """
    import pkgutil

    import repro
    from ..isa.instructions import INSTRUCTION_SET

    modules = 0
    for _finder, _name, _ispkg in pkgutil.walk_packages(repro.__path__,
                                                        prefix="repro."):
        modules += 1
    nondeterministic_points = 6  # comparison fork, div-by-err, mult err*err,
    #                              load via err pointer, store via err pointer,
    #                              control transfer with err target/PC
    return {
        "python_modules": modules,
        "instruction_opcodes": len(INSTRUCTION_SET),
        "nondeterministic_rules": nondeterministic_points,
    }
