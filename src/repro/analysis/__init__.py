"""Reporting and comparison utilities for campaigns and benchmarks."""

from .report import (SymbolicVsConcreteComparison, campaign_outcome_summary,
                     compare_symbolic_concrete, format_task_report,
                     format_witnesses, model_inventory,
                     solutions_with_final_value)

__all__ = [
    "SymbolicVsConcreteComparison", "campaign_outcome_summary",
    "compare_symbolic_concrete", "format_task_report", "format_witnesses",
    "model_inventory", "solutions_with_final_value",
]
