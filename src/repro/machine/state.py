"""The machine state abstraction (paper Section 5.1).

The machine state is the ``soup`` of mutable processor structures carried
from instruction to instruction: the program counter, the register file, the
memory, and the input and output streams.  The symbolic extension adds the
:class:`~repro.constraints.constraint_map.ConstraintMap` (Section 5.2), a
step counter used by the watchdog bound, and a status describing whether the
state is still running or how it terminated.

Representation.  The symbolic search forks one successor per feasible error
resolution, so :meth:`MachineState.copy` is the hottest operation in the
whole stack.  The register file and the memory are therefore stored
copy-on-write: an immutable *base* snapshot shared between all forks of a
lineage, plus a small private *dirty overlay* holding only the locations
written since the base was taken.  Copying a state copies the overlays
(O(written locations)); when an overlay grows past a threshold it is
*flattened* — folded into a fresh base — so the per-fork cost stays bounded.
Bases are never mutated in place, which is what makes sharing them safe.

Deduplication.  The bounded model checker dedups states by
:meth:`MachineState.fingerprint`.  Instead of materialising an O(state)
tuple per successor, the state maintains two rolling hashes — a commutative
XOR hash over (location, value) pairs updated inside
:meth:`write_register` / :meth:`write_memory`, and a polynomial hash over
the output stream updated in :meth:`append_output` — so a fingerprint is
O(1) to combine.  The returned :class:`Fingerprint` hashes on the combined
value and falls back to a full structural comparison on hash collision, so
dedup decisions are exactly those of a by-content comparison.

Mutation discipline.  All register and memory writes MUST go through
:meth:`write_register` / :meth:`write_memory` (and output appends through
:meth:`append_output`); the overlay, the rolling hashes and the err census
are maintained there.  No module outside this file touches the underlying
storage — ``state.registers`` and ``state.memory`` expose read-only views.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..constraints import ConstraintMap, Location
from ..isa.instructions import NUM_REGISTERS, ZERO_REGISTER
from ..isa.values import ERR, Value, format_value, is_err


class Status(Enum):
    """Lifecycle of a machine state."""

    RUNNING = "running"
    HALTED = "halted"          # normal termination through ``halt``
    EXCEPTION = "exception"    # crash: illegal address/instruction, throw, ...
    DETECTED = "detected"      # a detector fired and stopped the program
    TIMEOUT = "timeout"        # watchdog bound exceeded (hang)

    def is_terminal(self) -> bool:
        return self is not Status.RUNNING


OutputItem = Union[int, str, type(ERR)]


@dataclass
class TraceEntry:
    """One step of an execution trace (used for witnesses in reports)."""

    pc: Value
    text: str

    def __str__(self) -> str:
        return f"[{format_value(self.pc)}] {self.text}"


# Overlay sizes past which copy()/fingerprint() fold the overlay into a new
# base.  Register overlays are bounded by NUM_REGISTERS anyway; the memory
# threshold balances per-fork overlay-copy cost against amortised flatten
# cost (one O(base) fold per _MEMORY_FLATTEN_LIMIT distinct writes).
_REGISTER_FLATTEN_LIMIT = 8
_MEMORY_FLATTEN_LIMIT = 64

#: Sentinel distinguishing "address not defined" from any stored value.
_ABSENT = object()

_HASH_MASK = (1 << 64) - 1


def _register_mix(number: int, value: Value) -> int:
    """Hash contribution of one register cell to the location hash."""
    return hash((0, number, value))


def _memory_mix(address: int, value: Value) -> int:
    """Hash contribution of one memory word to the location hash."""
    return hash((1, address, value))


def _merge_registers(base: Tuple[Value, ...],
                     overlay: Dict[int, Value]) -> Tuple[Value, ...]:
    """The register file described by *base* patched with *overlay*."""
    if not overlay:
        return base
    return tuple(overlay[i] if i in overlay else base[i]
                 for i in range(len(base)))


def _merge_memory(base: Dict[int, Value],
                  overlay: Dict[int, Value]) -> Dict[int, Value]:
    """A private flat copy of the memory described by *base* + *overlay*."""
    merged = dict(base)
    if overlay:
        merged.update(overlay)
    return merged


class CowRegisters:
    """Copy-on-write register file: immutable base tuple + dirty overlay.

    The base is shared (by reference) between every fork of a lineage and is
    never mutated; writes land in the private overlay.  The view is
    read-only — mutation goes through :meth:`MachineState.write_register`.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, values: Sequence[Value]) -> None:
        self._base: Tuple[Value, ...] = tuple(values)
        self._overlay: Dict[int, Value] = {}

    def read(self, number: int) -> Value:
        # Stored values are ints or ERR, never None, so .get() doubles as a
        # membership test without a second lookup.
        value = self._overlay.get(number)
        return self._base[number] if value is None else value

    def set(self, number: int, value: Value) -> Value:
        """Write one register, returning the previous value."""
        old = self._overlay.get(number)
        if old is None:
            old = self._base[number]
        self._overlay[number] = value
        return old

    def copy(self) -> "CowRegisters":
        if len(self._overlay) > _REGISTER_FLATTEN_LIMIT:
            self._flatten()
        clone = CowRegisters.__new__(CowRegisters)
        clone._base = self._base
        clone._overlay = dict(self._overlay)
        return clone

    def _flatten(self) -> None:
        """Fold the overlay into a fresh base (the old base is untouched)."""
        self._base = _merge_registers(self._base, self._overlay)
        self._overlay = {}

    def as_tuple(self) -> Tuple[Value, ...]:
        return _merge_registers(self._base, self._overlay)

    # Read-only sequence protocol (register 0 is NOT special-cased here;
    # use MachineState.read_register for architectural semantics).
    def __getitem__(self, number: int) -> Value:
        return self.read(number)

    def __len__(self) -> int:
        return len(self._base)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.as_tuple())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CowRegisters):
            return self.as_tuple() == other.as_tuple()
        return NotImplemented

    def __repr__(self) -> str:
        return f"CowRegisters({list(self.as_tuple())!r})"


class CowMemory:
    """Copy-on-write sparse memory: immutable base dict + dirty overlay.

    Exposes the read-only half of the dict protocol; writes go through
    :meth:`MachineState.write_memory`, which maintains the fingerprint and
    err bookkeeping.
    """

    __slots__ = ("_base", "_overlay", "_size")

    def __init__(self, values: Optional[Dict[int, Value]] = None) -> None:
        self._base: Dict[int, Value] = dict(values) if values else {}
        self._overlay: Dict[int, Value] = {}
        self._size: int = len(self._base)

    def read(self, address: int) -> Value:
        value = self._overlay.get(address)
        if value is not None:
            return value
        return self._base[address]  # raises KeyError for undefined addresses

    def set(self, address: int, value: Value) -> Value:
        """Write one word, returning the previous value (or ``_ABSENT``)."""
        old = self._overlay.get(address)
        if old is None:
            old = self._base.get(address, _ABSENT)
            if old is _ABSENT:
                self._size += 1
        self._overlay[address] = value
        return old

    def copy(self) -> "CowMemory":
        if len(self._overlay) > _MEMORY_FLATTEN_LIMIT:
            self._flatten()
        clone = CowMemory.__new__(CowMemory)
        clone._base = self._base
        clone._overlay = dict(self._overlay)
        clone._size = self._size
        return clone

    def _flatten(self) -> None:
        """Fold the overlay into a fresh base (the old base is untouched)."""
        self._base = _merge_memory(self._base, self._overlay)
        self._overlay = {}

    def to_dict(self) -> Dict[int, Value]:
        """A flattened, private copy of the full address -> value mapping."""
        return _merge_memory(self._base, self._overlay)

    # Read-only mapping protocol.
    def __getitem__(self, address: int) -> Value:
        return self.read(address)

    def get(self, address: int, default=None):
        value = self._overlay.get(address)
        if value is not None:
            return value
        return self._base.get(address, default)

    def __contains__(self, address: int) -> bool:
        return address in self._overlay or address in self._base

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def keys(self):
        if not self._overlay:
            return self._base.keys()
        return self._base.keys() | self._overlay.keys()

    def __iter__(self) -> Iterator[int]:
        return iter(self.keys())

    def items(self) -> Iterator[Tuple[int, Value]]:
        overlay = self._overlay
        yield from overlay.items()
        for address, value in self._base.items():
            if address not in overlay:
                yield address, value

    def values(self) -> Iterator[Value]:
        for _address, value in self.items():
            yield value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CowMemory):
            return self.to_dict() == other.to_dict()
        return NotImplemented

    def __repr__(self) -> str:
        return f"CowMemory({self.to_dict()!r})"


class Fingerprint:
    """A hashable summary of a machine state used for deduplication.

    ``__hash__`` is the pre-combined rolling hash (O(1) to use); ``__eq__``
    compares the hash first and falls back to a full structural comparison,
    so a hash collision can never merge two genuinely different states.  The
    digest snapshots the state's CoW components at creation time — bases by
    reference (they are immutable), overlays by copy, the append-only output
    list by (reference, length) — so later in-place mutation of the state
    (e.g. the concretize handoff finishing it with the fast interpreter)
    cannot corrupt fingerprints already stored in a ``seen`` set.
    """

    __slots__ = ("_hash", "_pc", "_input_pos", "_status", "_exception",
                 "_constraints", "_output", "_out_len", "_regs_base",
                 "_regs_overlay", "_mem_base", "_mem_overlay", "_regs_flat",
                 "_mem_flat")

    def __init__(self, combined_hash: int, state: "MachineState") -> None:
        self._hash = combined_hash
        self._pc = state.pc
        self._input_pos = state.input_pos
        self._status = state.status
        self._exception = state.exception
        self._constraints = state.constraints
        self._output = state._output
        self._out_len = len(state._output)
        registers = state._registers
        memory = state._memory
        self._regs_base = registers._base
        self._regs_overlay = dict(registers._overlay)
        self._mem_base = memory._base
        self._mem_overlay = dict(memory._overlay)
        self._regs_flat: Optional[Tuple[Value, ...]] = None
        self._mem_flat: Optional[Dict[int, Value]] = None

    def _registers_flat(self) -> Tuple[Value, ...]:
        flat = self._regs_flat
        if flat is None:
            flat = _merge_registers(self._regs_base, self._regs_overlay)
            self._regs_flat = flat
        return flat

    def _memory_flat(self) -> Dict[int, Value]:
        flat = self._mem_flat
        if flat is None:
            flat = _merge_memory(self._mem_base, self._mem_overlay)
            self._mem_flat = flat
        return flat

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Fingerprint):
            return NotImplemented
        if self._hash != other._hash:
            return False
        # Hash match: verify structurally, cheapest comparisons first.
        if (self._status is not other._status
                or self._input_pos != other._input_pos
                or self._out_len != other._out_len
                or self._pc != other._pc
                or self._exception != other._exception):
            return False
        if (self._output is not other._output
                and self._output[:self._out_len] != other._output[:other._out_len]):
            return False
        if (self._constraints is not other._constraints
                and self._constraints != other._constraints):
            return False
        # Fast path for the common dedup hit: fingerprints from the same CoW
        # lineage share bases by reference, so equal overlays imply equal
        # stores without materialising the flattened views.  (Unequal
        # overlays do NOT imply unequal stores — an overlay write may repeat
        # the base value — so that case falls back to the full comparison.)
        if self._regs_base is other._regs_base \
                and self._regs_overlay == other._regs_overlay:
            registers_equal = True
        else:
            registers_equal = self._registers_flat() == other._registers_flat()
        if not registers_equal:
            return False
        if self._mem_base is other._mem_base \
                and self._mem_overlay == other._mem_overlay:
            return True
        return self._memory_flat() == other._memory_flat()

    def __repr__(self) -> str:
        return f"<Fingerprint {self._hash:#x} pc={format_value(self._pc)}>"


def _zero_registers_hash() -> int:
    """Location-hash of the all-zero register file (the common initial case)."""
    h = 0
    for number in range(NUM_REGISTERS):
        h ^= _register_mix(number, 0)
    return h


_ZERO_REGISTERS_HASH: Optional[int] = None


class MachineState:
    """A complete machine state.

    The class is mutable for performance (the concrete simulator executes
    millions of instructions), but the symbolic executor always works on
    copies produced by :meth:`copy`, so forked states never alias registers,
    memory or constraints.  Register/memory writes must go through
    :meth:`write_register` / :meth:`write_memory`: they keep the constraint
    map, the rolling fingerprint hashes and the err census consistent.
    """

    __slots__ = ("pc", "_registers", "_memory", "input", "input_pos",
                 "_output", "constraints", "steps", "status", "exception",
                 "detector_id", "trace", "forks", "_loc_hash", "_out_hash",
                 "_err_count")

    def __init__(self,
                 pc: Value = 0,
                 registers: Optional[List[Value]] = None,
                 memory: Optional[Dict[int, Value]] = None,
                 input_values: Sequence[int] = (),
                 output: Optional[List[OutputItem]] = None,
                 constraints: Optional[ConstraintMap] = None) -> None:
        global _ZERO_REGISTERS_HASH
        self.pc: Value = pc
        if registers is not None and len(registers) != NUM_REGISTERS:
            raise ValueError(f"register file must have {NUM_REGISTERS} entries")
        self._registers = CowRegisters(registers if registers is not None
                                       else (0,) * NUM_REGISTERS)
        self._memory = CowMemory(memory)
        self.input: Tuple[int, ...] = tuple(input_values)
        self.input_pos: int = 0
        self._output: List[OutputItem] = list(output) if output else []
        # `is not None`, not truthiness: len() of a ConstraintMap counts
        # tracked locations only, so a map holding nothing but relational
        # constraints (two injected errs compared by a branch — the burst
        # fault model produces these) is falsy and would be dropped here,
        # silently losing constraints across a pickle round-trip.
        self.constraints: ConstraintMap = (constraints if constraints is not None
                                           else ConstraintMap())
        self.steps: int = 0
        self.status: Status = Status.RUNNING
        self.exception: Optional[str] = None
        self.detector_id: Optional[int] = None
        self.trace: Optional[List[TraceEntry]] = None
        self.forks: int = 0
        # Seed the rolling hashes and the err census from the initial content.
        if registers is None:
            if _ZERO_REGISTERS_HASH is None:
                _ZERO_REGISTERS_HASH = _zero_registers_hash()
            loc_hash = _ZERO_REGISTERS_HASH
            err_count = 0
        else:
            loc_hash = 0
            err_count = 0
            for number, value in enumerate(self._registers._base):
                loc_hash ^= _register_mix(number, value)
                if is_err(value):
                    err_count += 1
        for address, value in self._memory._base.items():
            loc_hash ^= _memory_mix(address, value)
            if is_err(value):
                err_count += 1
        self._loc_hash: int = loc_hash
        self._err_count: int = err_count
        out_hash = 0
        for item in self._output:
            out_hash = (out_hash * 1000003 + hash(item)) & _HASH_MASK
        self._out_hash: int = out_hash

    # ----------------------------------------------------------- state views

    @property
    def registers(self) -> CowRegisters:
        """Read-only view of the register file (write via write_register)."""
        return self._registers

    @property
    def memory(self) -> CowMemory:
        """Read-only view of the memory (write via write_memory)."""
        return self._memory

    @property
    def output(self) -> List[OutputItem]:
        """The output stream; append only via :meth:`append_output`."""
        return self._output

    # ------------------------------------------------------------------ copies

    def copy(self) -> "MachineState":
        """An O(written-locations) fork: overlays copied, bases shared."""
        clone = MachineState.__new__(MachineState)
        clone.pc = self.pc
        clone._registers = self._registers.copy()
        clone._memory = self._memory.copy()
        clone.input = self.input
        clone.input_pos = self.input_pos
        clone._output = self._output.copy() if self._output else []
        clone.constraints = self.constraints  # immutable-by-convention
        clone.steps = self.steps
        clone.status = self.status
        clone.exception = self.exception
        clone.detector_id = self.detector_id
        # The trace is lazily created: forks of an untraced state (the
        # common case — record_trace off) share the None sentinel for free.
        clone.trace = list(self.trace) if self.trace else None
        clone.forks = self.forks
        clone._loc_hash = self._loc_hash
        clone._out_hash = self._out_hash
        clone._err_count = self._err_count
        return clone

    # ---------------------------------------------------------------- pickling

    def __getstate__(self):
        # Flatten the CoW structure: a pickled state is self-contained, so
        # worker-pool round-trips cannot alias bases across processes.
        return {
            "pc": self.pc,
            "registers": self._registers.as_tuple(),
            "memory": self._memory.to_dict(),
            "input": self.input,
            "input_pos": self.input_pos,
            "output": self._output,
            "constraints": self.constraints,
            "steps": self.steps,
            "status": self.status,
            "exception": self.exception,
            "detector_id": self.detector_id,
            "trace": self.trace,
            "forks": self.forks,
        }

    def __setstate__(self, payload) -> None:
        # Rebuild the rolling hashes from scratch: hash() of strings (ERR,
        # exception text, prints output) is salted per process, so the
        # incremental values do not transfer between processes.
        self.__init__(pc=payload["pc"],
                      registers=list(payload["registers"]),
                      memory=payload["memory"],
                      input_values=payload["input"],
                      output=payload["output"],
                      constraints=payload["constraints"])
        self.input_pos = payload["input_pos"]
        self.steps = payload["steps"]
        self.status = payload["status"]
        self.exception = payload["exception"]
        self.detector_id = payload["detector_id"]
        self.trace = payload["trace"]
        self.forks = payload["forks"]

    # --------------------------------------------------------------- registers

    def read_register(self, number: int) -> Value:
        """Read a register; register 0 is hard-wired to zero."""
        if number == ZERO_REGISTER:
            return 0
        return self._registers.read(number)

    def write_register(self, number: int, value: Value,
                       transfer_from: Optional[Location] = None) -> None:
        """Write a register and keep the constraint map consistent.

        Writes to register 0 are discarded.  Writing a concrete value clears
        any constraints previously attached to the register; writing ``err``
        leaves the destination unconstrained unless *transfer_from* names the
        location the value was copied from verbatim (``mov``/``ldi``), in
        which case its constraints are carried over.
        """
        if number == ZERO_REGISTER:
            return
        old = self._registers.set(number, value)
        # hash((0, number, v)) == _register_mix(number, v), inlined: this is
        # the hottest line of the write path.
        self._loc_hash ^= hash((0, number, old)) ^ hash((0, number, value))
        if is_err(old):
            if not is_err(value):
                self._err_count -= 1
        elif is_err(value):
            self._err_count += 1
        constraints = self.constraints
        if constraints.empty and transfer_from is None:
            return  # nothing to clear and nothing to carry over
        destination = Location.register(number)
        if is_err(value) and transfer_from is not None:
            self.constraints = constraints.without(destination) \
                                          .transfer(transfer_from, destination)
        else:
            self.constraints = constraints.without(destination)

    # ------------------------------------------------------------------ memory

    def is_defined_address(self, address: int) -> bool:
        return address in self._memory

    def read_memory(self, address: int) -> Value:
        return self._memory.read(address)

    def write_memory(self, address: int, value: Value,
                     transfer_from: Optional[Location] = None) -> None:
        """Write a memory word, mirroring :meth:`write_register` for constraints."""
        old = self._memory.set(address, value)
        if old is _ABSENT:
            self._loc_hash ^= hash((1, address, value))
            if is_err(value):
                self._err_count += 1
        else:
            self._loc_hash ^= hash((1, address, old)) ^ hash((1, address, value))
            if is_err(old):
                if not is_err(value):
                    self._err_count -= 1
            elif is_err(value):
                self._err_count += 1
        constraints = self.constraints
        if constraints.empty and transfer_from is None:
            return
        destination = Location.memory(address)
        if is_err(value) and transfer_from is not None:
            self.constraints = constraints.without(destination) \
                                          .transfer(transfer_from, destination)
        else:
            self.constraints = constraints.without(destination)

    # ------------------------------------------------------------------- input

    def has_input(self) -> bool:
        return self.input_pos < len(self.input)

    def next_input(self) -> int:
        value = self.input[self.input_pos]
        self.input_pos += 1
        return value

    # ------------------------------------------------------------------ output

    def append_output(self, item: OutputItem) -> None:
        self._output.append(item)
        self._out_hash = (self._out_hash * 1000003 + hash(item)) & _HASH_MASK

    def output_values(self) -> Tuple[OutputItem, ...]:
        return tuple(self._output)

    def printed_integers(self) -> Tuple[Value, ...]:
        """Only the numeric items printed by ``print`` (skipping ``prints`` text)."""
        return tuple(item for item in self._output
                     if is_err(item) or isinstance(item, int))

    def output_contains_err(self) -> bool:
        return any(is_err(item) for item in self._output)

    # -------------------------------------------------------------- termination

    def halt(self) -> None:
        self.status = Status.HALTED

    def throw(self, message: str) -> None:
        self.status = Status.EXCEPTION
        self.exception = message

    def detect(self, detector_id: int, message: str) -> None:
        self.status = Status.DETECTED
        self.detector_id = detector_id
        self.exception = message

    def time_out(self, message: str) -> None:
        self.status = Status.TIMEOUT
        self.exception = message

    @property
    def is_running(self) -> bool:
        return self.status is Status.RUNNING

    @property
    def crashed(self) -> bool:
        return self.status is Status.EXCEPTION

    @property
    def hung(self) -> bool:
        return self.status is Status.TIMEOUT

    @property
    def detected(self) -> bool:
        return self.status is Status.DETECTED

    # ------------------------------------------------------------------ tracing

    def record(self, text: str) -> None:
        self.add_trace_entry(TraceEntry(self.pc, text))

    def add_trace_entry(self, entry: TraceEntry) -> None:
        if self.trace is None:
            self.trace = []
        self.trace.append(entry)

    # ----------------------------------------------------------------- hashing

    def fingerprint(self) -> Fingerprint:
        """A hashable summary used by the model checker for state deduplication.

        Two states with an equal fingerprint have the same observable future
        behaviour, so only one of them needs to be explored further.  The
        combined hash is O(1) to produce (the per-location and output hashes
        are maintained incrementally by the write API); equality falls back
        to a structural comparison, so collisions cannot merge distinct
        states.
        """
        registers = self._registers
        memory = self._memory
        if len(registers._overlay) > _REGISTER_FLATTEN_LIMIT:
            registers._flatten()
        if len(memory._overlay) > _MEMORY_FLATTEN_LIMIT:
            memory._flatten()
        combined = hash((self.pc, self._loc_hash, self._out_hash,
                         len(self._output), self.input_pos, self.constraints,
                         self.status, self.exception))
        return Fingerprint(combined, self)

    # ------------------------------------------------------------------ display

    def describe(self) -> str:
        lines = [
            f"pc      = {format_value(self.pc)}",
            f"status  = {self.status.value}"
            + (f" ({self.exception})" if self.exception else ""),
            f"steps   = {self.steps}",
            "registers:",
        ]
        interesting = [(i, v) for i, v in enumerate(self._registers.as_tuple())
                       if is_err(v) or v != 0]
        lines.append("  " + "  ".join(f"${i}={format_value(v)}" for i, v in interesting)
                     if interesting else "  (all zero)")
        if self._memory:
            rendered = ", ".join(f"{addr}:{format_value(val)}"
                                 for addr, val in sorted(self._memory.items())[:24])
            suffix = " ..." if len(self._memory) > 24 else ""
            lines.append(f"memory  = {{{rendered}{suffix}}}")
        lines.append("output  = [" + ", ".join(
            repr(item) if isinstance(item, str) else format_value(item)
            for item in self._output) + "]")
        lines.append("constraints:")
        lines.append(self.constraints.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MachineState pc={format_value(self.pc)} status={self.status.value} "
                f"steps={self.steps} outputs={len(self._output)}>")


def state_contains_err(state: MachineState) -> bool:
    """True if the symbolic ``err`` value is present anywhere in the state.

    A state with no ``err`` left (every corrupted location was overwritten)
    behaves deterministically from now on, so the model checker can finish it
    with the fast concrete interpreter instead of step-by-step copies.  The
    census is maintained incrementally by the write API, so this is O(1).
    """
    return state._err_count > 0 or is_err(state.pc)


def recompute_incremental_state(state: MachineState) -> Tuple[int, int, int]:
    """Recompute (location hash, output hash, err count) from full content.

    Test oracle for the incremental bookkeeping: after any interleaving of
    writes, copies and flattens these must equal ``state._loc_hash``,
    ``state._out_hash`` and ``state._err_count``.
    """
    loc_hash = 0
    err_count = 0
    for number, value in enumerate(state._registers.as_tuple()):
        loc_hash ^= _register_mix(number, value)
        if is_err(value):
            err_count += 1
    for address, value in state._memory.to_dict().items():
        loc_hash ^= _memory_mix(address, value)
        if is_err(value):
            err_count += 1
    out_hash = 0
    for item in state._output:
        out_hash = (out_hash * 1000003 + hash(item)) & _HASH_MASK
    return loc_hash, out_hash, err_count


def initial_state(input_values: Sequence[int] = (),
                  memory: Optional[Dict[int, Value]] = None,
                  entry_point: int = 0) -> MachineState:
    """Build the initial machine state for running a program.

    *memory* provides the loader-initialised data segment (the paper assumes
    the loader initialises every location before its first use).
    """
    return MachineState(pc=entry_point, memory=memory, input_values=input_values)
