"""The machine state abstraction (paper Section 5.1).

The machine state is the ``soup`` of mutable processor structures carried
from instruction to instruction: the program counter, the register file, the
memory, and the input and output streams.  The symbolic extension adds the
:class:`~repro.constraints.constraint_map.ConstraintMap` (Section 5.2), a
step counter used by the watchdog bound, and a status describing whether the
state is still running or how it terminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..constraints import ConstraintMap, Location
from ..isa.instructions import NUM_REGISTERS, ZERO_REGISTER
from ..isa.values import ERR, Value, format_value, is_err


class Status(Enum):
    """Lifecycle of a machine state."""

    RUNNING = "running"
    HALTED = "halted"          # normal termination through ``halt``
    EXCEPTION = "exception"    # crash: illegal address/instruction, throw, ...
    DETECTED = "detected"      # a detector fired and stopped the program
    TIMEOUT = "timeout"        # watchdog bound exceeded (hang)

    def is_terminal(self) -> bool:
        return self is not Status.RUNNING


OutputItem = Union[int, str, type(ERR)]


@dataclass
class TraceEntry:
    """One step of an execution trace (used for witnesses in reports)."""

    pc: Value
    text: str

    def __str__(self) -> str:
        return f"[{format_value(self.pc)}] {self.text}"


class MachineState:
    """A complete machine state.

    The class is mutable for performance (the concrete simulator executes
    millions of instructions), but the symbolic executor always works on
    copies produced by :meth:`copy`, so forked states never alias registers,
    memory or constraints.
    """

    __slots__ = ("pc", "registers", "memory", "input", "input_pos", "output",
                 "constraints", "steps", "status", "exception", "detector_id",
                 "trace", "forks")

    def __init__(self,
                 pc: Value = 0,
                 registers: Optional[List[Value]] = None,
                 memory: Optional[Dict[int, Value]] = None,
                 input_values: Sequence[int] = (),
                 output: Optional[List[OutputItem]] = None,
                 constraints: Optional[ConstraintMap] = None) -> None:
        self.pc: Value = pc
        self.registers: List[Value] = list(registers) if registers is not None \
            else [0] * NUM_REGISTERS
        if len(self.registers) != NUM_REGISTERS:
            raise ValueError(f"register file must have {NUM_REGISTERS} entries")
        self.memory: Dict[int, Value] = dict(memory) if memory else {}
        self.input: Tuple[int, ...] = tuple(input_values)
        self.input_pos: int = 0
        self.output: List[OutputItem] = list(output) if output else []
        self.constraints: ConstraintMap = constraints or ConstraintMap()
        self.steps: int = 0
        self.status: Status = Status.RUNNING
        self.exception: Optional[str] = None
        self.detector_id: Optional[int] = None
        self.trace: List[TraceEntry] = []
        self.forks: int = 0

    # ------------------------------------------------------------------ copies

    def copy(self) -> "MachineState":
        """A deep-enough copy: registers, memory, output and trace are fresh."""
        clone = MachineState.__new__(MachineState)
        clone.pc = self.pc
        clone.registers = list(self.registers)
        clone.memory = dict(self.memory)
        clone.input = self.input
        clone.input_pos = self.input_pos
        clone.output = list(self.output)
        clone.constraints = self.constraints  # immutable-by-convention
        clone.steps = self.steps
        clone.status = self.status
        clone.exception = self.exception
        clone.detector_id = self.detector_id
        clone.trace = list(self.trace)
        clone.forks = self.forks
        return clone

    # --------------------------------------------------------------- registers

    def read_register(self, number: int) -> Value:
        """Read a register; register 0 is hard-wired to zero."""
        if number == ZERO_REGISTER:
            return 0
        return self.registers[number]

    def write_register(self, number: int, value: Value,
                       transfer_from: Optional[Location] = None) -> None:
        """Write a register and keep the constraint map consistent.

        Writes to register 0 are discarded.  Writing a concrete value clears
        any constraints previously attached to the register; writing ``err``
        leaves the destination unconstrained unless *transfer_from* names the
        location the value was copied from verbatim (``mov``/``ldi``), in
        which case its constraints are carried over.
        """
        if number == ZERO_REGISTER:
            return
        self.registers[number] = value
        destination = Location.register(number)
        if is_err(value):
            if transfer_from is not None:
                self.constraints = self.constraints.without(destination)
                self.constraints = self.constraints.transfer(transfer_from, destination)
            else:
                self.constraints = self.constraints.without(destination)
        else:
            self.constraints = self.constraints.without(destination)

    # ------------------------------------------------------------------ memory

    def is_defined_address(self, address: int) -> bool:
        return address in self.memory

    def read_memory(self, address: int) -> Value:
        return self.memory[address]

    def write_memory(self, address: int, value: Value,
                     transfer_from: Optional[Location] = None) -> None:
        """Write a memory word, mirroring :meth:`write_register` for constraints."""
        self.memory[address] = value
        destination = Location.memory(address)
        if is_err(value) and transfer_from is not None:
            self.constraints = self.constraints.without(destination)
            self.constraints = self.constraints.transfer(transfer_from, destination)
        else:
            self.constraints = self.constraints.without(destination)

    # ------------------------------------------------------------------- input

    def has_input(self) -> bool:
        return self.input_pos < len(self.input)

    def next_input(self) -> int:
        value = self.input[self.input_pos]
        self.input_pos += 1
        return value

    # ------------------------------------------------------------------ output

    def append_output(self, item: OutputItem) -> None:
        self.output.append(item)

    def output_values(self) -> Tuple[OutputItem, ...]:
        return tuple(self.output)

    def printed_integers(self) -> Tuple[Value, ...]:
        """Only the numeric items printed by ``print`` (skipping ``prints`` text)."""
        return tuple(item for item in self.output
                     if is_err(item) or isinstance(item, int))

    def output_contains_err(self) -> bool:
        return any(is_err(item) for item in self.output)

    # -------------------------------------------------------------- termination

    def halt(self) -> None:
        self.status = Status.HALTED

    def throw(self, message: str) -> None:
        self.status = Status.EXCEPTION
        self.exception = message

    def detect(self, detector_id: int, message: str) -> None:
        self.status = Status.DETECTED
        self.detector_id = detector_id
        self.exception = message

    def time_out(self, message: str) -> None:
        self.status = Status.TIMEOUT
        self.exception = message

    @property
    def is_running(self) -> bool:
        return self.status is Status.RUNNING

    @property
    def crashed(self) -> bool:
        return self.status is Status.EXCEPTION

    @property
    def hung(self) -> bool:
        return self.status is Status.TIMEOUT

    @property
    def detected(self) -> bool:
        return self.status is Status.DETECTED

    # ------------------------------------------------------------------ tracing

    def record(self, text: str) -> None:
        self.trace.append(TraceEntry(self.pc, text))

    # ----------------------------------------------------------------- hashing

    def fingerprint(self) -> Tuple:
        """A hashable summary used by the model checker for state deduplication.

        Two states with the same fingerprint have the same observable future
        behaviour, so only one of them needs to be explored further.
        """
        return (
            self.pc if not is_err(self.pc) else ERR,
            tuple(self.registers),
            tuple(sorted(self.memory.items())),
            self.input_pos,
            tuple(self.output),
            self.constraints,
            self.status,
            self.exception,
        )

    # ------------------------------------------------------------------ display

    def describe(self) -> str:
        lines = [
            f"pc      = {format_value(self.pc)}",
            f"status  = {self.status.value}"
            + (f" ({self.exception})" if self.exception else ""),
            f"steps   = {self.steps}",
            "registers:",
        ]
        interesting = [(i, v) for i, v in enumerate(self.registers)
                       if is_err(v) or v != 0]
        lines.append("  " + "  ".join(f"${i}={format_value(v)}" for i, v in interesting)
                     if interesting else "  (all zero)")
        if self.memory:
            rendered = ", ".join(f"{addr}:{format_value(val)}"
                                 for addr, val in sorted(self.memory.items())[:24])
            suffix = " ..." if len(self.memory) > 24 else ""
            lines.append(f"memory  = {{{rendered}{suffix}}}")
        lines.append("output  = [" + ", ".join(
            repr(item) if isinstance(item, str) else format_value(item)
            for item in self.output) + "]")
        lines.append("constraints:")
        lines.append(self.constraints.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MachineState pc={format_value(self.pc)} status={self.status.value} "
                f"steps={self.steps} outputs={len(self.output)}>")


def state_contains_err(state: MachineState) -> bool:
    """True if the symbolic ``err`` value is present anywhere in the state.

    A state with no ``err`` left (every corrupted location was overwritten)
    behaves deterministically from now on, so the model checker can finish it
    with the fast concrete interpreter instead of step-by-step copies.
    """
    if is_err(state.pc):
        return True
    for value in state.registers:
        if is_err(value):
            return True
    for value in state.memory.values():
        if is_err(value):
            return True
    return False


def initial_state(input_values: Sequence[int] = (),
                  memory: Optional[Dict[int, Value]] = None,
                  entry_point: int = 0) -> MachineState:
    """Build the initial machine state for running a program.

    *memory* provides the loader-initialised data segment (the paper assumes
    the loader initialises every location before its first use).
    """
    return MachineState(pc=entry_point, memory=memory, input_values=input_values)
