"""Execution semantics of the SymPLFIED machine.

Two interpreters live here:

* :class:`Executor` — the full symbolic semantics.  ``step`` maps one machine
  state to the *list* of its successor states: deterministic instructions
  yield exactly one successor, while instructions whose outcome depends on an
  ``err`` value (comparisons, branches, loads/stores through a corrupted
  pointer, jumps through a corrupted target, division by a corrupted value)
  yield one successor per feasible resolution, with the constraint map
  updated so that later comparisons over the same location stay consistent.
  This is the Python rendition of the paper's Maude equations (deterministic
  machine model) plus rewrite rules (non-deterministic error model).

* :func:`concrete_step` / :func:`run_concrete` — a lean, mutating
  interpreter for fully concrete states.  It implements the same machine
  semantics without any symbolic machinery and is used for the deterministic
  prefix before an injection point and by the SimpleScalar-substitute
  simulator in :mod:`repro.concrete`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints import ComparisonOp, Location
from ..detectors import DetectorSet, EMPTY_DETECTORS, execute_detector
from ..errors.comparison import resolve_comparison
from ..errors.propagation import (IMMEDIATE_ALIASES, NonDeterministicOperation,
                                  concrete_binary, symbolic_binary)
from ..isa.instructions import (Category, Instruction,
                                RETURN_ADDRESS_REGISTER, ZERO_REGISTER,
                                compare_base_opcode)
from ..isa.program import Program
from ..isa.values import ERR, Value, is_err
from .exceptions import (DIVIDE_BY_ZERO, ILLEGAL_ADDRESS, ILLEGAL_INSTRUCTION,
                         INPUT_EXHAUSTED, MachineModelError, TIMED_OUT,
                         detector_exception)
from .state import MachineState, TraceEntry


#: Comparison operator implemented by each comparison-setter opcode.
_COMPARE_OPS: Dict[str, ComparisonOp] = {
    "seteq": ComparisonOp.EQ, "setne": ComparisonOp.NE,
    "setgt": ComparisonOp.GT, "setlt": ComparisonOp.LT,
    "setge": ComparisonOp.GE, "setle": ComparisonOp.LE,
}


@dataclass
class ExecutionConfig:
    """Tunable parameters of the symbolic execution and error semantics.

    Attributes:
        max_steps: watchdog bound on executed instructions (paper Section 5.4);
            exceeding it marks the state as ``TIMEOUT`` (a hang).
        control_fork_domain: where an erroneous jump/branch target or PC may
            land — ``"labels"`` (label addresses only), ``"targets"``
            (statically plausible control-transfer targets), ``"all"`` (every
            valid code address, the paper's literal semantics) or
            ``"exception_only"`` (only the illegal-instruction outcome).
        max_control_forks: cap on the number of forked landing sites.
        memory_fork_domain: where an erroneous load/store address may point —
            ``"known"`` (currently defined memory words) or
            ``"exception_only"``.
        max_memory_forks: cap on the number of forked memory locations.
        prune_unsatisfiable: whether the constraint solver prunes infeasible
            branches (turning this off is the paper's implicit baseline and is
            exercised by the ablation benchmark).
        record_trace: whether to append a human-readable trace entry per step.
    """

    max_steps: int = 20_000
    control_fork_domain: str = "labels"
    max_control_forks: int = 128
    memory_fork_domain: str = "known"
    max_memory_forks: int = 16
    prune_unsatisfiable: bool = True
    record_trace: bool = False


class SymbolicValueEncountered(MachineModelError):
    """Raised by the concrete interpreter when it meets an ``err`` value."""


def apply_fault(state: MachineState, kind: str, index: int,
                value: Value) -> None:
    """Apply one fault-spec corruption to *state* through the CoW write API.

    The single write path every fault model funnels through: *kind* is a
    :class:`~repro.constraints.Location` kind (``"reg"``, ``"mem"`` or
    ``"pc"``), *value* is ``ERR`` or a concrete integer.  Register and
    memory corruptions go through ``write_register`` / ``write_memory`` so
    the state's incremental fingerprint and err census stay correct; a
    corrupted PC also drops any stale constraint recorded for it.  Writes
    to the hard-wired zero register are ignored (it cannot hold an error).
    """
    if kind == Location.REGISTER:
        if index == ZERO_REGISTER:
            return
        state.write_register(index, value)
    elif kind == Location.MEMORY:
        state.write_memory(index, value)
    elif kind == Location.PC:
        state.pc = value
        state.constraints = state.constraints.without(Location.pc())
    else:
        raise ValueError(f"unknown fault location kind {kind!r}")


class Executor:
    """Symbolic executor for one program (plus its detectors)."""

    def __init__(self, program: Program,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 config: Optional[ExecutionConfig] = None) -> None:
        self.program = program
        self.detectors = detectors
        self.config = config or ExecutionConfig()

    # ------------------------------------------------------------------- step

    def step(self, state: MachineState) -> List[MachineState]:
        """Execute one instruction, returning every feasible successor state."""
        if not state.is_running:
            raise MachineModelError("cannot step a terminated state")

        if state.steps >= self.config.max_steps:
            timed_out = state.copy()
            timed_out.time_out(TIMED_OUT)
            return [timed_out]

        if is_err(state.pc):
            return self._control_error_successors(state, note="fetch with corrupted PC")

        instruction = self.program.fetch(state.pc)
        if instruction is None:
            crashed = state.copy()
            crashed.throw(ILLEGAL_INSTRUCTION)
            return [crashed]

        handler = self._HANDLERS[instruction.category]
        successors = handler(self, state, instruction)

        if self.config.prune_unsatisfiable:
            successors = [s for s in successors if s.constraints.satisfiable()]
        for successor in successors:
            successor.steps = state.steps + 1
            if self.config.record_trace:
                successor.add_trace_entry(TraceEntry(state.pc, instruction.render()))
        return successors

    def run(self, state: MachineState,
            max_states: int = 1_000_000) -> List[MachineState]:
        """Exhaustively run *state* to termination, returning all final states.

        Convenience wrapper mostly used by tests and examples; the model
        checker in :mod:`repro.core.search` offers the full search interface.
        """
        frontier = [state]
        finals: List[MachineState] = []
        explored = 0
        while frontier:
            current = frontier.pop()
            for successor in self.step(current):
                explored += 1
                if explored > max_states:
                    raise MachineModelError("state budget exhausted in Executor.run")
                if successor.is_running:
                    frontier.append(successor)
                else:
                    finals.append(successor)
        return finals

    # ------------------------------------------------------------ base helpers

    def _base(self, state: MachineState) -> MachineState:
        return state.copy()

    def _advance(self, state: MachineState) -> MachineState:
        state.pc = state.pc + 1
        return state

    def _crash(self, state: MachineState, message: str) -> MachineState:
        crashed = state.copy()
        crashed.throw(message)
        return crashed

    def _register_value(self, state: MachineState, number: int
                        ) -> Tuple[Value, Optional[Location]]:
        value = state.read_register(number)
        location = Location.register(number) if is_err(value) else None
        return value, location

    # --------------------------------------------------------------- handlers

    def _execute_arithmetic(self, state: MachineState,
                            instruction: Instruction) -> List[MachineState]:
        rd, rs = instruction.operands[0], instruction.operands[1]
        left = state.read_register(rs)
        third = instruction.operands[2]
        if instruction.spec.signature[2].value == "reg":
            right = state.read_register(third)
            right_location = Location.register(third) if is_err(right) else None
        else:
            right = third
            right_location = None

        try:
            result = symbolic_binary(instruction.opcode, left, right)
        except ZeroDivisionError:
            return [self._crash(state, DIVIDE_BY_ZERO)]
        except NonDeterministicOperation as operation:
            return self._resolve_nondeterministic_arithmetic(
                state, instruction, left, right, right_location, operation)

        successor = self._base(state)
        successor.write_register(rd, result)
        return [self._advance(successor)]

    def _resolve_nondeterministic_arithmetic(
            self, state: MachineState, instruction: Instruction,
            left: Value, right: Value, right_location: Optional[Location],
            operation: NonDeterministicOperation) -> List[MachineState]:
        """Fork on whether the symbolic operand equals zero (Section 5.2 rules)."""
        rd = instruction.operands[0]
        operator = IMMEDIATE_ALIASES.get(instruction.opcode, instruction.opcode)
        outcomes = resolve_comparison(
            state.constraints, ComparisonOp.EQ, right, 0,
            left_location=right_location, right_location=None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.result:  # the symbolic operand is zero
                if operator in ("div", "mod"):
                    branch.throw(DIVIDE_BY_ZERO)
                    successors.append(branch)
                    continue
                branch.write_register(rd, 0)
            else:
                branch.write_register(rd, ERR)
            successors.append(self._advance(branch))
        return successors

    def _execute_compare(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        rd, rs = instruction.operands[0], instruction.operands[1]
        op = _COMPARE_OPS[compare_base_opcode(instruction.opcode)]
        left, left_location = self._register_value(state, rs)
        third = instruction.operands[2]
        if instruction.spec.signature[2].value == "reg":
            right, right_location = self._register_value(state, third)
        else:
            right, right_location = third, None

        outcomes = resolve_comparison(state.constraints, op, left, right,
                                      left_location, right_location)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            branch.write_register(rd, 1 if outcome.result else 0)
            if outcome.forked:
                branch.forks += 1
            successors.append(self._advance(branch))
        return successors

    def _execute_move(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        rd = instruction.operands[0]
        if instruction.opcode == "mov":
            rs = instruction.operands[1]
            value = state.read_register(rs)
            successor.write_register(
                rd, value,
                transfer_from=Location.register(rs) if is_err(value) else None)
        else:  # li
            successor.write_register(rd, instruction.operands[1])
        return [self._advance(successor)]

    def _execute_load(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        rt, rs, offset = instruction.operands
        base = state.read_register(rs)
        if is_err(base):
            return self._memory_error_loads(state, rt)
        address = base + offset
        if not state.is_defined_address(address):
            return [self._crash(state, ILLEGAL_ADDRESS)]
        value = state.read_memory(address)
        successor = self._base(state)
        successor.write_register(
            rt, value,
            transfer_from=Location.memory(address) if is_err(value) else None)
        return [self._advance(successor)]

    def _memory_error_loads(self, state: MachineState, rt: int) -> List[MachineState]:
        """Load through a corrupted pointer: arbitrary location or exception."""
        successors: List[MachineState] = [self._crash(state, ILLEGAL_ADDRESS)]
        if self.config.memory_fork_domain == "known":
            for address in self._memory_fork_addresses(state):
                branch = self._base(state)
                value = branch.read_memory(address)
                branch.write_register(
                    rt, value,
                    transfer_from=Location.memory(address) if is_err(value) else None)
                branch.forks += 1
                successors.append(self._advance(branch))
        return successors

    def _execute_store(self, state: MachineState,
                       instruction: Instruction) -> List[MachineState]:
        rt, rs, offset = instruction.operands
        value = state.read_register(rt)
        value_location = Location.register(rt) if is_err(value) else None
        base = state.read_register(rs)
        if is_err(base):
            return self._memory_error_stores(state, value, value_location)
        address = base + offset
        successor = self._base(state)
        successor.write_memory(address, value, transfer_from=value_location)
        return [self._advance(successor)]

    def _memory_error_stores(self, state: MachineState, value: Value,
                             value_location: Optional[Location]) -> List[MachineState]:
        """Store through a corrupted pointer: overwrite an arbitrary location
        or create a new value in memory (paper Section 5.2)."""
        successors: List[MachineState] = []
        fresh_address = max(state.memory) + 1 if state.memory else 0
        fresh = self._base(state)
        fresh.write_memory(fresh_address, value, transfer_from=value_location)
        fresh.forks += 1
        successors.append(self._advance(fresh))
        if self.config.memory_fork_domain == "known":
            for address in self._memory_fork_addresses(state):
                branch = self._base(state)
                branch.write_memory(address, value, transfer_from=value_location)
                branch.forks += 1
                successors.append(self._advance(branch))
        return successors

    def _memory_fork_addresses(self, state: MachineState) -> List[int]:
        addresses = sorted(state.memory)
        cap = self.config.max_memory_forks
        if len(addresses) <= cap:
            return addresses
        stride = max(1, len(addresses) // cap)
        return addresses[::stride][:cap]

    def _execute_branch(self, state: MachineState,
                        instruction: Instruction) -> List[MachineState]:
        rs, immediate, label = instruction.operands
        op = ComparisonOp.EQ if instruction.opcode == "beq" else ComparisonOp.NE
        value, location = self._register_value(state, rs)
        target = self.program.resolve(label)
        outcomes = resolve_comparison(state.constraints, op, value, immediate,
                                      location, None)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            branch.pc = target if outcome.result else branch.pc + 1
            successors.append(branch)
        return successors

    def _execute_jump(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        successor.pc = self.program.resolve(instruction.operands[0])
        return [successor]

    def _execute_call(self, state: MachineState,
                      instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        successor.write_register(RETURN_ADDRESS_REGISTER, state.pc + 1)
        successor.pc = self.program.resolve(instruction.operands[0])
        return [successor]

    def _execute_jump_register(self, state: MachineState,
                               instruction: Instruction) -> List[MachineState]:
        target = state.read_register(instruction.operands[0])
        if is_err(target):
            return self._control_error_successors(
                state, note=f"jr ${instruction.operands[0]} with corrupted target")
        if not self.program.is_valid_address(target):
            return [self._crash(state, ILLEGAL_INSTRUCTION)]
        successor = self._base(state)
        successor.pc = target
        return [successor]

    def _control_error_successors(self, state: MachineState,
                                  note: str = "") -> List[MachineState]:
        """Erroneous control transfer: arbitrary valid code location or crash."""
        successors: List[MachineState] = [self._crash(state, ILLEGAL_INSTRUCTION)]
        for target in self._control_fork_targets():
            branch = self._base(state)
            branch.pc = target
            branch.forks += 1
            successors.append(branch)
        return successors

    def _control_fork_targets(self) -> List[int]:
        domain = self.config.control_fork_domain
        if domain == "exception_only":
            targets: Sequence[int] = ()
        elif domain == "labels":
            targets = self.program.label_addresses()
        elif domain == "targets":
            targets = self.program.control_transfer_targets()
        elif domain == "all":
            targets = range(len(self.program))
        else:
            raise MachineModelError(f"unknown control fork domain {domain!r}")
        targets = list(targets)
        cap = self.config.max_control_forks
        if len(targets) <= cap:
            return targets
        stride = max(1, len(targets) // cap)
        return targets[::stride][:cap]

    def _execute_io_read(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        if not state.has_input():
            return [self._crash(state, INPUT_EXHAUSTED)]
        successor = self._base(state)
        value = successor.next_input()
        successor.write_register(instruction.operands[0], value)
        return [self._advance(successor)]

    def _execute_io_write(self, state: MachineState,
                          instruction: Instruction) -> List[MachineState]:
        successor = self._base(state)
        if instruction.opcode == "print":
            successor.append_output(state.read_register(instruction.operands[0]))
        else:  # prints
            successor.append_output(instruction.operands[0])
        return [self._advance(successor)]

    def _execute_check(self, state: MachineState,
                       instruction: Instruction) -> List[MachineState]:
        identifier = instruction.operands[0]
        detector = self.detectors.get(identifier)
        if detector is None:
            raise MachineModelError(
                f"check instruction references unknown detector {identifier}")
        outcomes = execute_detector(detector, state)
        successors: List[MachineState] = []
        for outcome in outcomes:
            branch = self._base(state)
            branch.constraints = outcome.constraints
            if outcome.forked:
                branch.forks += 1
            if outcome.detected:
                branch.detect(identifier, detector_exception(identifier))
            else:
                self._advance(branch)
            successors.append(branch)
        return successors

    def _execute_special(self, state: MachineState,
                         instruction: Instruction) -> List[MachineState]:
        if instruction.opcode == "halt":
            successor = self._base(state)
            successor.halt()
            return [successor]
        if instruction.opcode == "nop":
            return [self._advance(self._base(state))]
        if instruction.opcode == "throw":
            return [self._crash(state, instruction.operands[0])]
        raise MachineModelError(f"unhandled special opcode {instruction.opcode}")

    _HANDLERS = {
        Category.ARITHMETIC: _execute_arithmetic,
        Category.COMPARE: _execute_compare,
        Category.MOVE: _execute_move,
        Category.LOAD: _execute_load,
        Category.STORE: _execute_store,
        Category.BRANCH: _execute_branch,
        Category.JUMP: _execute_jump,
        Category.CALL: _execute_call,
        Category.JUMP_REGISTER: _execute_jump_register,
        Category.IO_READ: _execute_io_read,
        Category.IO_WRITE: _execute_io_write,
        Category.CHECK: _execute_check,
        Category.SPECIAL: _execute_special,
    }


# --------------------------------------------------------------------------
# Lean concrete interpreter (SimpleScalar-substitute building block).
# --------------------------------------------------------------------------

def concrete_step(program: Program, state: MachineState,
                  detectors: DetectorSet = EMPTY_DETECTORS) -> MachineState:
    """Execute one instruction on a fully concrete state, in place.

    Raises :class:`SymbolicValueEncountered` if an ``err`` value is met — the
    caller should fall back to the symbolic executor in that case.
    """
    pc = state.pc
    if is_err(pc):
        raise SymbolicValueEncountered("PC is err")
    instruction = program.fetch(pc)
    if instruction is None:
        state.throw(ILLEGAL_INSTRUCTION)
        return state

    opcode = instruction.opcode
    operands = instruction.operands
    category = instruction.category
    state.steps += 1

    def reg(number: int) -> int:
        value = state.read_register(number)
        if is_err(value):
            raise SymbolicValueEncountered(f"register ${number} is err")
        return value

    if category is Category.ARITHMETIC:
        rd, rs, third = operands
        left = reg(rs)
        right = reg(third) if instruction.spec.signature[2].value == "reg" else third
        operator = IMMEDIATE_ALIASES.get(opcode, opcode)
        if operator in ("div", "mod") and right == 0:
            state.throw(DIVIDE_BY_ZERO)
            return state
        state.write_register(rd, concrete_binary(operator, left, right))
        state.pc = pc + 1
    elif category is Category.COMPARE:
        rd, rs, third = operands
        op = _COMPARE_OPS[compare_base_opcode(opcode)]
        left = reg(rs)
        right = reg(third) if instruction.spec.signature[2].value == "reg" else third
        state.write_register(rd, 1 if op.evaluate(left, right) else 0)
        state.pc = pc + 1
    elif category is Category.MOVE:
        value = reg(operands[1]) if opcode == "mov" else operands[1]
        state.write_register(operands[0], value)
        state.pc = pc + 1
    elif category is Category.LOAD:
        rt, rs, offset = operands
        address = reg(rs) + offset
        if not state.is_defined_address(address):
            state.throw(ILLEGAL_ADDRESS)
            return state
        value = state.read_memory(address)
        if is_err(value):
            raise SymbolicValueEncountered(f"memory {address} is err")
        state.write_register(rt, value)
        state.pc = pc + 1
    elif category is Category.STORE:
        rt, rs, offset = operands
        state.write_memory(reg(rs) + offset, reg(rt))
        state.pc = pc + 1
    elif category is Category.BRANCH:
        rs, immediate, label = operands
        value = reg(rs)
        taken = (value == immediate) if opcode == "beq" else (value != immediate)
        state.pc = program.resolve(label) if taken else pc + 1
    elif category is Category.JUMP:
        state.pc = program.resolve(operands[0])
    elif category is Category.CALL:
        state.write_register(RETURN_ADDRESS_REGISTER, pc + 1)
        state.pc = program.resolve(operands[0])
    elif category is Category.JUMP_REGISTER:
        target = reg(operands[0])
        if not program.is_valid_address(target):
            state.throw(ILLEGAL_INSTRUCTION)
            return state
        state.pc = target
    elif category is Category.IO_READ:
        if not state.has_input():
            state.throw(INPUT_EXHAUSTED)
            return state
        state.write_register(operands[0], state.next_input())
        state.pc = pc + 1
    elif category is Category.IO_WRITE:
        if opcode == "print":
            state.append_output(reg(operands[0]))
        else:
            state.append_output(operands[0])
        state.pc = pc + 1
    elif category is Category.CHECK:
        detector = detectors.get(operands[0])
        if detector is None:
            raise MachineModelError(
                f"check instruction references unknown detector {operands[0]}")
        outcomes = execute_detector(detector, state)
        if len(outcomes) != 1:
            raise SymbolicValueEncountered("detector outcome is symbolic")
        if outcomes[0].detected:
            state.detect(operands[0], detector_exception(operands[0]))
        else:
            state.pc = pc + 1
    elif category is Category.SPECIAL:
        if opcode == "halt":
            state.halt()
        elif opcode == "nop":
            state.pc = pc + 1
        elif opcode == "throw":
            state.throw(operands[0])
        else:  # pragma: no cover - exhaustive
            raise MachineModelError(f"unhandled special opcode {opcode}")
    else:  # pragma: no cover - exhaustive
        raise MachineModelError(f"unhandled category {category}")
    return state


def run_concrete(program: Program, state: MachineState,
                 detectors: DetectorSet = EMPTY_DETECTORS,
                 max_steps: int = 200_000) -> MachineState:
    """Run a fully concrete state to termination (in place)."""
    while state.is_running:
        if state.steps >= max_steps:
            state.time_out(TIMED_OUT)
            break
        concrete_step(program, state, detectors)
    return state


def run_concrete_until(program: Program, state: MachineState,
                       stop_pc: int, occurrence: int = 1,
                       detectors: DetectorSet = EMPTY_DETECTORS,
                       max_steps: int = 200_000) -> MachineState:
    """Run concretely until the program counter reaches *stop_pc*.

    Used to position the machine at an injection breakpoint: execution stops
    *before* the instruction at ``stop_pc`` is executed for the
    *occurrence*-th time.  If the breakpoint is never reached the state is
    simply run to termination.
    """
    remaining = occurrence
    while state.is_running:
        if state.steps >= max_steps:
            state.time_out(TIMED_OUT)
            break
        if state.pc == stop_pc:
            remaining -= 1
            if remaining <= 0:
                break
        concrete_step(program, state, detectors)
    return state
